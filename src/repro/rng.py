"""Deterministic random-number plumbing shared by every subsystem.

Every stochastic component in this library (weight initializers, dataset
generators, device variability, read/write noise) draws from a
:class:`numpy.random.Generator` that is passed in explicitly or derived
from a seed.  Nothing reads global numpy state, so two runs with the same
seeds are bit-identical — a hard requirement for regression-testing the
lifetime simulations.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh nondeterministic generator), an ``int`` seed,
    or an existing generator (returned unchanged so callers can share
    streams).

    >>> g = ensure_rng(42)
    >>> h = ensure_rng(g)
    >>> g is h
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(entropy: int, key: str) -> np.random.Generator:
    """Generator derived purely from ``(entropy, key)``.

    Unlike :func:`spawn_rng`, this does not consume any parent stream
    state, so the result is independent of the order in which different
    keys are derived — required for experiment frameworks where running
    scenario B before scenario A must not change A's result.
    """
    salt = np.frombuffer(key.encode("utf-8"), dtype=np.uint8)
    seq = np.random.SeedSequence(entropy=int(entropy), spawn_key=tuple(int(x) for x in salt))
    return np.random.default_rng(seq)


def spawn_rng(rng: np.random.Generator, key: Optional[str] = None) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    When ``key`` is given, the child is additionally salted with a stable
    hash of the key so that differently named subsystems receive
    decorrelated streams even if they spawn in a different order.
    """
    seed_seq = np.random.SeedSequence(rng.integers(0, 2**63 - 1))
    if key is not None:
        salt = np.frombuffer(key.encode("utf-8"), dtype=np.uint8)
        seed_seq = np.random.SeedSequence(
            entropy=int(seed_seq.entropy), spawn_key=tuple(int(x) for x in salt)
        )
    return np.random.default_rng(seed_seq)
