"""Weight regularizers, including the paper's two-segment skewed penalty.

The DATE 2019 paper replaces standard L2 regularization (its Eq. (2)) with
a two-segment quadratic penalty around a per-layer reference weight
:math:`\\beta_i` (Eq. (8)–(10))::

    Cost  = C(W) + R1(W) + R2(W)
    R1(W) = sum_i lambda1 * ||W_i - beta_i||^2   for W_i <  beta_i
    R2(W) = sum_i lambda2 * ||W_i - beta_i||^2   for W_i >= beta_i

With ``lambda1 > lambda2`` the penalty is steep on the left of ``beta``
and shallow on the right, which *skews* the trained weight distribution:
its mass concentrates slightly above ``beta`` with a long but thin right
tail — exactly the shape of the paper's Fig. 6(a)/Fig. 9.  Small weights
map to small conductances (large resistances), reducing programming
current and therefore aging.

A regularizer exposes ``penalty(w)`` (scalar, already including its
coefficients) and ``gradient(w)`` (same shape as ``w``), applied per
parameter tensor by :class:`repro.nn.model.Sequential`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class Regularizer:
    """Base class for per-tensor weight regularizers."""

    def penalty(self, w: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, w: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NoRegularizer(Regularizer):
    """Zero penalty — plain cross-entropy training."""

    def penalty(self, w: np.ndarray) -> float:
        return 0.0

    def gradient(self, w: np.ndarray) -> np.ndarray:
        return np.zeros_like(w)


class L2Regularizer(Regularizer):
    """Classic ridge penalty ``lam * ||W||^2`` (paper Eq. (1)–(2))."""

    def __init__(self, lam: float = 1e-4) -> None:
        if lam < 0:
            raise ConfigurationError(f"lam must be >= 0, got {lam}")
        self.lam = float(lam)

    def penalty(self, w: np.ndarray) -> float:
        return float(self.lam * np.sum(w * w))

    def gradient(self, w: np.ndarray) -> np.ndarray:
        return 2.0 * self.lam * w

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"L2Regularizer(lam={self.lam})"


class SkewedL2Regularizer(Regularizer):
    """Two-segment skewed penalty around a reference weight ``beta``.

    Implements the paper's Eq. (9)–(10).  The reference weight is
    piecewise: weights left of ``beta`` pay ``lambda1 * (w - beta)^2``,
    weights right of ``beta`` pay ``lambda2 * (w - beta)^2``, and
    ``lambda1 > lambda2`` produces the desired right-skewed distribution
    concentrated at small values.

    Parameters
    ----------
    beta:
        Reference weight :math:`\\beta_i`.  The paper sets it to
        ``c * sigma`` where ``sigma`` is the standard deviation of the
        conventionally trained quasi-normal distribution; see
        :func:`beta_from_std` and
        :class:`repro.training.skewed.SkewedTrainingConfig`.
    lambda1:
        Penalty coefficient for weights **below** ``beta`` (the heavy
        side).
    lambda2:
        Penalty coefficient for weights **at or above** ``beta``.
    """

    def __init__(self, beta: float, lambda1: float, lambda2: float) -> None:
        if lambda1 < 0 or lambda2 < 0:
            raise ConfigurationError(
                f"penalties must be >= 0, got lambda1={lambda1}, lambda2={lambda2}"
            )
        if lambda1 < lambda2:
            raise ConfigurationError(
                "skewed regularizer expects lambda1 >= lambda2 "
                f"(heavy penalty on the left of beta); got {lambda1} < {lambda2}"
            )
        self.beta = float(beta)
        self.lambda1 = float(lambda1)
        self.lambda2 = float(lambda2)

    def _coeffs(self, w: np.ndarray) -> np.ndarray:
        return np.where(w < self.beta, self.lambda1, self.lambda2)

    def penalty(self, w: np.ndarray) -> float:
        d = w - self.beta
        return float(np.sum(self._coeffs(w) * d * d))

    def gradient(self, w: np.ndarray) -> np.ndarray:
        return 2.0 * self._coeffs(w) * (w - self.beta)

    def penalty_profile(self, w_values: np.ndarray) -> np.ndarray:
        """Pointwise penalty for each scalar in ``w_values``.

        Used by the Fig. 7 benchmark to plot the two dashed penalty
        curves against the trained weight distribution.
        """
        w_values = np.asarray(w_values, dtype=np.float64)
        d = w_values - self.beta
        return self._coeffs(w_values) * d * d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SkewedL2Regularizer(beta={self.beta}, "
            f"lambda1={self.lambda1}, lambda2={self.lambda2})"
        )


def beta_from_std(weights: np.ndarray, scale: float) -> float:
    """Paper's reference-weight rule: ``beta = scale * std(weights)``.

    Section V: *"the mean value of the quasi-normal distribution is close
    to zero so that the reference weights were set to the standard
    deviation sigma_i multiplied by a constant value."*
    """
    return float(scale * np.std(np.asarray(weights, dtype=np.float64)))
