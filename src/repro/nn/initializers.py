"""Weight initializers.

Each initializer is a small callable object: ``init(shape, rng)`` returns
a float64 array.  ``fan_in``/``fan_out`` follow the usual convention —
for a dense kernel of shape ``(in, out)`` they are ``in`` and ``out``;
for a conv kernel of shape ``(out_ch, in_ch, kh, kw)`` they are
``in_ch*kh*kw`` and ``out_ch*kh*kw``.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, ensure_rng


def compute_fans(shape: Sequence[int]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a kernel of ``shape``."""
    shape = tuple(int(s) for s in shape)
    if len(shape) < 1:
        raise ConfigurationError("initializer shape must have at least 1 dim")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    out_ch, in_ch = shape[0], shape[1]
    return in_ch * receptive, out_ch * receptive


class Initializer:
    """Base class: subclasses implement :meth:`__call__`."""

    def __call__(self, shape: Sequence[int], rng: SeedLike = None) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ZerosInit(Initializer):
    """All-zero init (used for biases)."""

    def __call__(self, shape: Sequence[int], rng: SeedLike = None) -> np.ndarray:
        return np.zeros(shape, dtype=np.float64)


class NormalInit(Initializer):
    """Gaussian init with fixed standard deviation."""

    def __init__(self, std: float = 0.01, mean: float = 0.0) -> None:
        if std < 0:
            raise ConfigurationError(f"std must be >= 0, got {std}")
        self.std = float(std)
        self.mean = float(mean)

    def __call__(self, shape: Sequence[int], rng: SeedLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        return rng.normal(self.mean, self.std, size=shape)


class UniformInit(Initializer):
    """Uniform init on ``[low, high)``."""

    def __init__(self, low: float = -0.05, high: float = 0.05) -> None:
        if high < low:
            raise ConfigurationError(f"need high >= low, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def __call__(self, shape: Sequence[int], rng: SeedLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        return rng.uniform(self.low, self.high, size=shape)


class _VarianceScaling(Initializer):
    """Shared machinery for Glorot/He/LeCun families."""

    #: ("fan_in" | "fan_out" | "fan_avg", gain, "normal" | "uniform")
    mode = "fan_avg"
    gain = 1.0
    distribution = "normal"

    def __call__(self, shape: Sequence[int], rng: SeedLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        fan_in, fan_out = compute_fans(shape)
        if self.mode == "fan_in":
            scale_fan = fan_in
        elif self.mode == "fan_out":
            scale_fan = fan_out
        else:
            scale_fan = (fan_in + fan_out) / 2.0
        variance = self.gain / max(1.0, scale_fan)
        if self.distribution == "uniform":
            limit = math.sqrt(3.0 * variance)
            return rng.uniform(-limit, limit, size=shape)
        return rng.normal(0.0, math.sqrt(variance), size=shape)


class GlorotNormal(_VarianceScaling):
    """Glorot/Xavier normal: ``std = sqrt(2/(fan_in+fan_out))``."""

    mode, gain, distribution = "fan_avg", 1.0, "normal"


class GlorotUniform(_VarianceScaling):
    """Glorot/Xavier uniform: ``limit = sqrt(6/(fan_in+fan_out))``."""

    mode, gain, distribution = "fan_avg", 1.0, "uniform"


class HeNormal(_VarianceScaling):
    """He normal (for ReLU): ``std = sqrt(2/fan_in)``."""

    mode, gain, distribution = "fan_in", 2.0, "normal"


class HeUniform(_VarianceScaling):
    """He uniform: ``limit = sqrt(6/fan_in)``."""

    mode, gain, distribution = "fan_in", 2.0, "uniform"


class LeCunNormal(_VarianceScaling):
    """LeCun normal (for tanh/selu): ``std = sqrt(1/fan_in)``."""

    mode, gain, distribution = "fan_in", 1.0, "normal"


_REGISTRY = {
    "zeros": ZerosInit,
    "normal": NormalInit,
    "uniform": UniformInit,
    "glorot_normal": GlorotNormal,
    "glorot_uniform": GlorotUniform,
    "he_normal": HeNormal,
    "he_uniform": HeUniform,
    "lecun_normal": LeCunNormal,
}


def get_initializer(name_or_init) -> Initializer:
    """Resolve a string name or pass through an :class:`Initializer`.

    >>> get_initializer("he_normal")
    HeNormal()
    """
    if isinstance(name_or_init, Initializer):
        return name_or_init
    try:
        return _REGISTRY[str(name_or_init).lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown initializer {name_or_init!r}; choose from {sorted(_REGISTRY)}"
        ) from None
