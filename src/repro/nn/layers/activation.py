"""Activation layer wrapping an elementwise activation function."""

from __future__ import annotations

from repro.core.backend import hxp

from repro.nn.activations import get_activation
from repro.nn.layers.base import Layer


class Activation(Layer):
    """Apply an elementwise activation, e.g. ``Activation("relu")``."""

    def __init__(self, fn) -> None:
        super().__init__()
        self.fn = get_activation(fn)
        self._x: hxp.ndarray | None = None
        self._y: hxp.ndarray | None = None

    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        self._x = x
        self._y = self.fn.forward(x)
        return self._y

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        assert self._x is not None and self._y is not None
        return self.fn.backward(self._x, self._y, grad)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Activation({self.fn.name!r})"
