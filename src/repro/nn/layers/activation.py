"""Activation layer wrapping an elementwise activation function."""

from __future__ import annotations

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.layers.base import Layer


class Activation(Layer):
    """Apply an elementwise activation, e.g. ``Activation("relu")``."""

    def __init__(self, fn) -> None:
        super().__init__()
        self.fn = get_activation(fn)
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        self._y = self.fn.forward(x)
        return self._y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None and self._y is not None
        return self.fn.backward(self._x, self._y, grad)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Activation({self.fn.name!r})"
