"""Inverted dropout."""

from __future__ import annotations

from repro.core.backend import hxp

from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.nn.layers.base import Layer


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``.

    Activations are scaled by ``1/keep`` at train time so inference needs
    no rescaling — important here because inference runs on the simulated
    crossbar, which must see the same effective weights as software.
    """

    def __init__(self, rate: float = 0.5, seed: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = ensure_rng(seed)
        self._mask: hxp.ndarray | None = None

    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dropout(rate={self.rate})"
