"""Layer base classes.

A :class:`Layer` transforms a batch array in :meth:`forward` and pushes
gradients back in :meth:`backward`.  Layers cache whatever they need for
the backward pass on ``self`` during ``forward``; the model guarantees
the calls alternate (forward then backward on the same batch).

A :class:`ParamLayer` additionally owns named parameter tensors (in
``self.params``) with matching gradient slots (``self.grads``) filled by
``backward``.  The model applies regularizers only to tensors whose name
is listed in ``self.regularized`` — weights, not biases, matching the
paper's cost function which penalizes the layer weight matrices
:math:`W_i`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.backend import hxp

from repro.rng import SeedLike, ensure_rng


class Layer:
    """Base class for all layers."""

    def __init__(self) -> None:
        self.built = False
        #: Shape of a single input sample (no batch dim), set by build().
        self.input_shape: Optional[Tuple[int, ...]] = None

    # -- construction --------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: SeedLike = None) -> Tuple[int, ...]:
        """Allocate parameters for ``input_shape`` and return the output shape.

        ``input_shape`` excludes the batch dimension.  Idempotent: a
        second call with the same shape is a no-op.
        """
        self.input_shape = tuple(int(s) for s in input_shape)
        self.built = True
        return self.output_shape()

    def output_shape(self) -> Tuple[int, ...]:
        """Shape of a single output sample; valid after :meth:`build`."""
        assert self.input_shape is not None, "layer not built"
        return self.input_shape

    # -- compute --------------------------------------------------------
    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        raise NotImplementedError

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        raise NotImplementedError

    # -- parameters ------------------------------------------------------
    @property
    def params(self) -> Dict[str, hxp.ndarray]:
        """Named parameter tensors (empty for parameter-free layers)."""
        return {}

    @property
    def grads(self) -> Dict[str, hxp.ndarray]:
        """Named gradient tensors matching :attr:`params`."""
        return {}

    @property
    def regularized(self) -> List[str]:
        """Names of parameters the model's regularizer applies to."""
        return []

    def num_params(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ParamLayer(Layer):
    """Layer with named parameters stored in dicts."""

    def __init__(self) -> None:
        super().__init__()
        self._params: Dict[str, hxp.ndarray] = {}
        self._grads: Dict[str, hxp.ndarray] = {}
        self._regularized: List[str] = []

    @property
    def params(self) -> Dict[str, hxp.ndarray]:
        return self._params

    @property
    def grads(self) -> Dict[str, hxp.ndarray]:
        return self._grads

    @property
    def regularized(self) -> List[str]:
        return self._regularized

    def add_param(
        self,
        name: str,
        shape: Tuple[int, ...],
        initializer,
        rng: SeedLike = None,
        regularize: bool = False,
    ) -> hxp.ndarray:
        """Allocate parameter ``name`` and its zero gradient slot."""
        rng = ensure_rng(rng)
        value = hxp.asarray(initializer(shape, rng), dtype=hxp.float64)
        self._params[name] = value
        self._grads[name] = hxp.zeros_like(value)
        if regularize and name not in self._regularized:
            self._regularized.append(name)
        return value

    def set_param(self, name: str, value: hxp.ndarray) -> None:
        """Replace parameter ``name`` in place (shape must match)."""
        current = self._params[name]
        value = hxp.asarray(value, dtype=hxp.float64)
        if value.shape != current.shape:
            raise ValueError(
                f"shape mismatch for param {name!r}: {value.shape} != {current.shape}"
            )
        current[...] = value
