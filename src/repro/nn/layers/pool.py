"""Spatial pooling layers (NCHW layout)."""

from __future__ import annotations

from typing import Tuple

from repro.core.backend import hxp

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers.base import Layer
from repro.rng import SeedLike


class _Pool2D(Layer):
    """Shared shape logic for max/avg pooling with square windows."""

    def __init__(self, pool_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        if pool_size < 1:
            raise ConfigurationError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        if self.stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {self.stride}")

    def build(self, input_shape: Tuple[int, ...], rng: SeedLike = None) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ShapeError(f"pooling expects (channels, h, w), got {input_shape}")
        c, h, w = input_shape
        if h < self.pool_size or w < self.pool_size:
            raise ShapeError(f"pool window {self.pool_size} larger than input {input_shape}")
        return super().build(input_shape, rng)

    def output_shape(self) -> Tuple[int, ...]:
        assert self.input_shape is not None
        c, h, w = self.input_shape
        oh = (h - self.pool_size) // self.stride + 1
        ow = (w - self.pool_size) // self.stride + 1
        return (c, oh, ow)

    def _windows(self, x: hxp.ndarray) -> hxp.ndarray:
        """View of ``x`` as (n, c, oh, ow, k, k) pooling windows."""
        n, c, h, w = x.shape
        k, s = self.pool_size, self.stride
        _, oh, ow = self.output_shape()
        strides = (
            x.strides[0],
            x.strides[1],
            x.strides[2] * s,
            x.strides[3] * s,
            x.strides[2],
            x.strides[3],
        )
        return hxp.lib.stride_tricks.as_strided(
            x, shape=(n, c, oh, ow, k, k), strides=strides, writeable=False
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(pool_size={self.pool_size}, stride={self.stride})"


class MaxPool2D(_Pool2D):
    """Max pooling; backward routes the gradient to each window argmax."""

    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        self._x_shape = x.shape
        windows = self._windows(x)
        n, c, oh, ow, k, _ = windows.shape
        flat = windows.reshape(n, c, oh, ow, k * k)
        self._argmax = flat.argmax(axis=-1)
        return flat.max(axis=-1)

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        n, c, h, w = self._x_shape
        k, s = self.pool_size, self.stride
        _, oh, ow = self.output_shape()
        dx = hxp.zeros(self._x_shape, dtype=grad.dtype)
        # Scatter each window's gradient to its argmax position.
        ni, ci, oi, oj = hxp.indices((n, c, oh, ow))
        di, dj = hxp.divmod(self._argmax, k)
        hxp.add.at(dx, (ni, ci, oi * s + di, oj * s + dj), grad)
        return dx


class AvgPool2D(_Pool2D):
    """Average pooling; backward spreads the gradient uniformly."""

    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        self._x_shape = x.shape
        windows = self._windows(x)
        return windows.mean(axis=(-1, -2))

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        n, c, h, w = self._x_shape
        k, s = self.pool_size, self.stride
        _, oh, ow = self.output_shape()
        dx = hxp.zeros(self._x_shape, dtype=grad.dtype)
        share = grad / (k * k)
        for di in range(k):
            for dj in range(k):
                dx[:, :, di : di + s * oh : s, dj : dj + s * ow : s] += share
        return dx
