"""Layer implementations for the numpy NN substrate."""

from repro.nn.layers.activation import Activation
from repro.nn.layers.base import Layer, ParamLayer
from repro.nn.layers.conv import Conv2D, col2im, im2col
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.norm import BatchNorm
from repro.nn.layers.pool import AvgPool2D, MaxPool2D
from repro.nn.layers.reshape import Flatten

__all__ = [
    "Activation",
    "AvgPool2D",
    "BatchNorm",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "MaxPool2D",
    "ParamLayer",
    "col2im",
    "im2col",
]
