"""Batch normalization."""

from __future__ import annotations

from typing import Tuple

from repro.core.backend import hxp

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.initializers import Initializer
from repro.nn.layers.base import ParamLayer
from repro.rng import SeedLike


class _Ones(Initializer):
    def __call__(self, shape, rng=None) -> hxp.ndarray:
        return hxp.ones(shape, dtype=hxp.float64)


class _Zeros(Initializer):
    def __call__(self, shape, rng=None) -> hxp.ndarray:
        return hxp.zeros(shape, dtype=hxp.float64)


class BatchNorm(ParamLayer):
    """Batch normalization over the feature axis.

    Supports both flat ``(batch, features)`` input (normalizing each
    feature) and NCHW images (normalizing each channel over batch and
    spatial dims).  Running statistics use exponential averaging with
    ``momentum`` and are used at inference time.
    """

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.running_mean: hxp.ndarray | None = None
        self.running_var: hxp.ndarray | None = None

    def build(self, input_shape: Tuple[int, ...], rng: SeedLike = None) -> Tuple[int, ...]:
        if len(input_shape) not in (1, 3):
            raise ShapeError(f"BatchNorm expects 1-D or 3-D samples, got {input_shape}")
        super().build(input_shape, rng)
        n_feat = input_shape[0]
        self.add_param("gamma", (n_feat,), _Ones(), rng)
        self.add_param("beta", (n_feat,), _Zeros(), rng)
        self.running_mean = hxp.zeros(n_feat, dtype=hxp.float64)
        self.running_var = hxp.ones(n_feat, dtype=hxp.float64)
        return self.output_shape()

    def _axes(self, x: hxp.ndarray):
        return (0,) if x.ndim == 2 else (0, 2, 3)

    def _reshape(self, v: hxp.ndarray, x: hxp.ndarray) -> hxp.ndarray:
        return v if x.ndim == 2 else v.reshape(1, -1, 1, 1)

    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        axes = self._axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            assert self.running_mean is not None and self.running_var is not None
            self.running_mean *= self.momentum
            self.running_mean += (1 - self.momentum) * mean
            self.running_var *= self.momentum
            self.running_var += (1 - self.momentum) * var
        else:
            assert self.running_mean is not None and self.running_var is not None
            mean, var = self.running_mean, self.running_var
        std = hxp.sqrt(var + self.eps)
        x_hat = (x - self._reshape(mean, x)) / self._reshape(std, x)
        self._cache = (x_hat, std, axes)
        return self._reshape(self._params["gamma"], x) * x_hat + self._reshape(
            self._params["beta"], x
        )

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        x_hat, std, axes = self._cache
        self._grads["gamma"][...] = hxp.sum(grad * x_hat, axis=axes)
        self._grads["beta"][...] = hxp.sum(grad, axis=axes)
        gamma = self._reshape(self._params["gamma"], grad)
        dx_hat = grad * gamma
        term1 = dx_hat
        term2 = self._reshape(dx_hat.mean(axis=axes), grad)
        term3 = x_hat * self._reshape(hxp.mean(dx_hat * x_hat, axis=axes), grad)
        return (term1 - term2 - term3) / self._reshape(std, grad)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchNorm(momentum={self.momentum}, eps={self.eps})"
