"""Fully-connected layer."""

from __future__ import annotations

from typing import Tuple

from repro.core.backend import gemm, hxp
from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.initializers import ZerosInit, get_initializer
from repro.nn.layers.base import ParamLayer
from repro.rng import SeedLike


class Dense(ParamLayer):
    """Affine map ``y = x @ W + b`` with ``W`` of shape ``(in, out)``.

    This is the layer whose weight matrix maps one-to-one onto a
    memristor crossbar (one column of devices per output neuron), so its
    ``W`` is what :mod:`repro.mapping` programs into hardware.
    """

    def __init__(
        self,
        units: int,
        use_bias: bool = True,
        kernel_init="glorot_uniform",
        bias_init=None,
    ) -> None:
        super().__init__()
        if units < 1:
            raise ConfigurationError(f"units must be >= 1, got {units}")
        self.units = int(units)
        self.use_bias = bool(use_bias)
        self.kernel_init = get_initializer(kernel_init)
        self.bias_init = get_initializer(bias_init) if bias_init is not None else ZerosInit()
        self._x: hxp.ndarray | None = None

    def build(self, input_shape: Tuple[int, ...], rng: SeedLike = None) -> Tuple[int, ...]:
        if len(input_shape) != 1:
            raise ShapeError(
                f"Dense expects flat input of shape (features,), got {input_shape}"
            )
        super().build(input_shape, rng)
        in_features = input_shape[0]
        self.add_param("W", (in_features, self.units), self.kernel_init, rng, regularize=True)
        if self.use_bias:
            self.add_param("b", (self.units,), self.bias_init, rng)
        return self.output_shape()

    def output_shape(self) -> Tuple[int, ...]:
        return (self.units,)

    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        self._x = x
        out = gemm(x, self._params["W"])
        if self.use_bias:
            out = out + self._params["b"]
        return out

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        assert self._x is not None, "backward called before forward"
        self._grads["W"][...] = gemm(self._x.T, grad)
        if self.use_bias:
            self._grads["b"][...] = grad.sum(axis=0)
        return gemm(grad, self._params["W"].T)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense(units={self.units}, use_bias={self.use_bias})"
