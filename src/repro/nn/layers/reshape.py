"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Tuple

from repro.core.backend import hxp

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Collapse every non-batch dimension into one feature axis."""

    def output_shape(self) -> Tuple[int, ...]:
        assert self.input_shape is not None
        return (int(hxp.prod(self.input_shape)),)

    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        return grad.reshape(self._x_shape)
