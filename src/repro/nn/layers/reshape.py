"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Collapse every non-batch dimension into one feature axis."""

    def output_shape(self) -> Tuple[int, ...]:
        assert self.input_shape is not None
        return (int(np.prod(self.input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._x_shape)
