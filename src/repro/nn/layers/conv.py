"""2-D convolution layer via im2col.

Data layout is NCHW: ``(batch, channels, height, width)``.  Kernels are
``(out_ch, in_ch, kh, kw)``.  im2col converts each convolution into one
GEMM, which is the fastest arrangement for numpy on a single core and is
also the arrangement that maps directly onto crossbar tiles: each kernel
becomes one column of the (unrolled) weight matrix, so conv layers are
mapped to hardware as ``(in_ch*kh*kw, out_ch)`` matrices.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.backend import gemm, hxp
from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.initializers import ZerosInit, get_initializer
from repro.nn.layers.base import ParamLayer
from repro.rng import SeedLike


def im2col(
    x: hxp.ndarray, kh: int, kw: int, stride: int = 1, padding: int = 0
) -> hxp.ndarray:
    """Unroll sliding windows of ``x`` (NCHW) into a 2-D matrix.

    Returns an array of shape ``(batch*oh*ow, c*kh*kw)`` where ``oh, ow``
    are the output spatial dims.
    """
    n, c, h, w = x.shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    if padding > 0:
        x = hxp.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = hxp.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)


def col2im(
    cols: hxp.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    padding: int = 0,
) -> hxp.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to NCHW."""
    n, c, h, w = x_shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    x_padded = hxp.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            x_padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


class Conv2D(ParamLayer):
    """2-D convolution with square stride and symmetric zero padding."""

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
        kernel_init="he_normal",
        bias_init=None,
    ) -> None:
        super().__init__()
        if filters < 1:
            raise ConfigurationError(f"filters must be >= 1, got {filters}")
        if kernel_size < 1:
            raise ConfigurationError(f"kernel_size must be >= 1, got {kernel_size}")
        if stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {stride}")
        if padding < 0:
            raise ConfigurationError(f"padding must be >= 0, got {padding}")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.use_bias = bool(use_bias)
        self.kernel_init = get_initializer(kernel_init)
        self.bias_init = get_initializer(bias_init) if bias_init is not None else ZerosInit()
        self._cols: hxp.ndarray | None = None
        self._x_shape: Tuple[int, int, int, int] | None = None

    def build(self, input_shape: Tuple[int, ...], rng: SeedLike = None) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ShapeError(f"Conv2D expects (channels, h, w) input, got {input_shape}")
        c, h, w = input_shape
        k = self.kernel_size
        if h + 2 * self.padding < k or w + 2 * self.padding < k:
            raise ShapeError(
                f"kernel {k}x{k} larger than padded input {input_shape} "
                f"with padding {self.padding}"
            )
        super().build(input_shape, rng)
        self.add_param("W", (self.filters, c, k, k), self.kernel_init, rng, regularize=True)
        if self.use_bias:
            self.add_param("b", (self.filters,), self.bias_init, rng)
        return self.output_shape()

    def output_shape(self) -> Tuple[int, ...]:
        assert self.input_shape is not None
        c, h, w = self.input_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        return (self.filters, oh, ow)

    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        n = x.shape[0]
        k = self.kernel_size
        self._x_shape = x.shape
        cols = im2col(x, k, k, self.stride, self.padding)
        self._cols = cols
        w_mat = self._params["W"].reshape(self.filters, -1)  # (out, c*k*k)
        out = gemm(cols, w_mat.T)
        if self.use_bias:
            out = out + self._params["b"]
        _, oh, ow = self.output_shape()
        return out.reshape(n, oh, ow, self.filters).transpose(0, 3, 1, 2)

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        assert self._cols is not None and self._x_shape is not None
        k = self.kernel_size
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, self.filters)
        self._grads["W"][...] = gemm(grad_mat.T, self._cols).reshape(self._params["W"].shape)
        if self.use_bias:
            self._grads["b"][...] = grad_mat.sum(axis=0)
        w_mat = self._params["W"].reshape(self.filters, -1)
        dcols = gemm(grad_mat, w_mat)
        return col2im(dcols, self._x_shape, k, k, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D(filters={self.filters}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding})"
        )
