"""Learning-rate schedules.

A schedule is a callable ``schedule(epoch) -> lr``; the model applies it
at the start of each epoch by assigning ``optimizer.lr``.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


class Schedule:
    """Base class: subclasses implement ``__call__(epoch)``."""

    def __call__(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(Schedule):
    """Fixed learning rate."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ConfigurationError(f"lr must be > 0, got {lr}")
        self.lr = float(lr)

    def __call__(self, epoch: int) -> float:
        return self.lr


class StepLR(Schedule):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1) -> None:
        if step_size < 1:
            raise ConfigurationError(f"step_size must be >= 1, got {step_size}")
        if not 0 < gamma <= 1:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        self.lr = float(lr)
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def __call__(self, epoch: int) -> float:
        return self.lr * self.gamma ** (epoch // self.step_size)


class ExponentialLR(Schedule):
    """Continuous exponential decay ``lr * gamma**epoch``."""

    def __init__(self, lr: float, gamma: float = 0.95) -> None:
        if not 0 < gamma <= 1:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        self.lr = float(lr)
        self.gamma = float(gamma)

    def __call__(self, epoch: int) -> float:
        return self.lr * self.gamma**epoch


class CosineLR(Schedule):
    """Cosine annealing from ``lr`` to ``min_lr`` over ``total_epochs``."""

    def __init__(self, lr: float, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs < 1:
            raise ConfigurationError(f"total_epochs must be >= 1, got {total_epochs}")
        if min_lr > lr:
            raise ConfigurationError(f"min_lr {min_lr} exceeds lr {lr}")
        self.lr = float(lr)
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def __call__(self, epoch: int) -> float:
        frac = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (1.0 + math.cos(math.pi * frac))
