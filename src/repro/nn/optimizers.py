"""First-order optimizers.

An optimizer holds per-parameter state keyed by ``id`` of the parameter
array (arrays are updated in place, so identity is stable for the life of
a model).  ``update(param, grad)`` applies one step; ``lr`` may be
mutated between steps by a schedule.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.exceptions import ConfigurationError


class Optimizer:
    """Base class with learning-rate storage and state bookkeeping."""

    def __init__(self, lr: float = 0.01) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be > 0, got {lr}")
        self.lr = float(lr)
        self._state: Dict[int, dict] = {}
        self.iterations = 0

    def state_for(self, param: np.ndarray) -> dict:
        """Per-parameter state dict (created on first access)."""
        return self._state.setdefault(id(param), {})

    def update(self, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    def begin_step(self) -> None:
        """Called once per optimization step, before parameter updates."""
        self.iterations += 1

    def reset(self) -> None:
        """Drop all accumulated state (e.g. between training phases)."""
        self._state.clear()
        self.iterations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(lr={self.lr})"


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def update(self, param: np.ndarray, grad: np.ndarray) -> None:
        param -= self.lr * grad


class Momentum(Optimizer):
    """SGD with (optionally Nesterov) momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.9, nesterov: bool = False) -> None:
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)

    def update(self, param: np.ndarray, grad: np.ndarray) -> None:
        state = self.state_for(param)
        v = state.get("velocity")
        if v is None:
            v = np.zeros_like(param)
            state["velocity"] = v
        v *= self.momentum
        v -= self.lr * grad
        if self.nesterov:
            param += self.momentum * v - self.lr * grad
        else:
            param += v


class RMSProp(Optimizer):
    """RMSProp with exponential moving average of squared gradients."""

    def __init__(self, lr: float = 0.001, rho: float = 0.9, eps: float = 1e-8) -> None:
        super().__init__(lr)
        if not 0.0 <= rho < 1.0:
            raise ConfigurationError(f"rho must be in [0, 1), got {rho}")
        self.rho = float(rho)
        self.eps = float(eps)

    def update(self, param: np.ndarray, grad: np.ndarray) -> None:
        state = self.state_for(param)
        sq = state.get("sq")
        if sq is None:
            sq = np.zeros_like(param)
            state["sq"] = sq
        sq *= self.rho
        sq += (1.0 - self.rho) * grad * grad
        param -= self.lr * grad / (np.sqrt(sq) + self.eps)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(
                f"betas must be in [0, 1), got beta1={beta1}, beta2={beta2}"
            )
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def update(self, param: np.ndarray, grad: np.ndarray) -> None:
        state = self.state_for(param)
        if "m" not in state:
            state["m"] = np.zeros_like(param)
            state["v"] = np.zeros_like(param)
        m, v = state["m"], state["v"]
        t = max(1, self.iterations)
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
