"""Elementwise activation functions with analytic derivatives.

Each activation is an object with ``forward(x)`` and ``backward(x, y,
grad)`` where ``x`` is the pre-activation input saved by the caller, ``y``
is the forward output, and ``grad`` is the upstream gradient.  Passing
both ``x`` and ``y`` lets each function use whichever is cheaper (sigmoid
and tanh differentiate through their outputs).
"""

from __future__ import annotations

from repro.core.backend import hxp

from repro.exceptions import ConfigurationError


class ActivationFunction:
    """Base class for elementwise activations."""

    name = "base"

    def forward(self, x: hxp.ndarray) -> hxp.ndarray:
        raise NotImplementedError

    def backward(self, x: hxp.ndarray, y: hxp.ndarray, grad: hxp.ndarray) -> hxp.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Identity(ActivationFunction):
    """Pass-through activation."""

    name = "identity"

    def forward(self, x: hxp.ndarray) -> hxp.ndarray:
        return x

    def backward(self, x: hxp.ndarray, y: hxp.ndarray, grad: hxp.ndarray) -> hxp.ndarray:
        return grad


class ReLU(ActivationFunction):
    """Rectified linear unit: ``max(0, x)``."""

    name = "relu"

    def forward(self, x: hxp.ndarray) -> hxp.ndarray:
        return hxp.maximum(x, 0.0)

    def backward(self, x: hxp.ndarray, y: hxp.ndarray, grad: hxp.ndarray) -> hxp.ndarray:
        return grad * (x > 0.0)


class LeakyReLU(ActivationFunction):
    """Leaky ReLU with negative-side slope ``alpha``."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01) -> None:
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, x: hxp.ndarray) -> hxp.ndarray:
        return hxp.where(x > 0.0, x, self.alpha * x)

    def backward(self, x: hxp.ndarray, y: hxp.ndarray, grad: hxp.ndarray) -> hxp.ndarray:
        return grad * hxp.where(x > 0.0, 1.0, self.alpha)


class Sigmoid(ActivationFunction):
    """Logistic sigmoid ``1/(1+exp(-x))`` (numerically stable)."""

    name = "sigmoid"

    def forward(self, x: hxp.ndarray) -> hxp.ndarray:
        out = hxp.empty_like(x, dtype=hxp.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + hxp.exp(-x[pos]))
        ex = hxp.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def backward(self, x: hxp.ndarray, y: hxp.ndarray, grad: hxp.ndarray) -> hxp.ndarray:
        return grad * y * (1.0 - y)


class Tanh(ActivationFunction):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: hxp.ndarray) -> hxp.ndarray:
        return hxp.tanh(x)

    def backward(self, x: hxp.ndarray, y: hxp.ndarray, grad: hxp.ndarray) -> hxp.ndarray:
        return grad * (1.0 - y * y)


class Softmax(ActivationFunction):
    """Row-wise softmax over the last axis.

    The full Jacobian is applied in :meth:`backward`; in practice the
    library fuses softmax with the cross-entropy loss
    (:class:`repro.nn.losses.SoftmaxCrossEntropy`) which is both faster
    and more stable, but a standalone softmax is provided for
    completeness (e.g. attention-style usage).
    """

    name = "softmax"

    def forward(self, x: hxp.ndarray) -> hxp.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        e = hxp.exp(shifted)
        return e / e.sum(axis=-1, keepdims=True)

    def backward(self, x: hxp.ndarray, y: hxp.ndarray, grad: hxp.ndarray) -> hxp.ndarray:
        dot = hxp.sum(grad * y, axis=-1, keepdims=True)
        return y * (grad - dot)


_REGISTRY = {
    "identity": Identity,
    "linear": Identity,
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softmax": Softmax,
}


def get_activation(name_or_fn) -> ActivationFunction:
    """Resolve a string name or pass through an :class:`ActivationFunction`."""
    if isinstance(name_or_fn, ActivationFunction):
        return name_or_fn
    try:
        return _REGISTRY[str(name_or_fn).lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown activation {name_or_fn!r}; choose from {sorted(_REGISTRY)}"
        ) from None
