"""Finite-difference gradient checking.

Used by the test suite to verify that every layer's analytic backward
pass matches a central-difference approximation — the standard way to
validate a hand-written backprop engine.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` w.r.t. array ``x``.

    ``f`` takes no arguments and reads ``x`` by reference; ``x`` is
    perturbed in place and restored.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise relative error between two gradient arrays."""
    denom = np.maximum(np.abs(a) + np.abs(b), 1e-8)
    return float(np.max(np.abs(a - b) / denom))


def check_gradients(
    model, x: np.ndarray, y: np.ndarray, eps: float = 1e-6
) -> Dict[Tuple[int, str], float]:
    """Compare analytic and numerical gradients for every parameter.

    Returns ``{(layer_index, param_name): max_relative_error}``.  The
    model's cost (data loss + regularization) is used, so this also
    validates the skewed-regularizer gradient.
    """
    cost = model.compute_gradients(x, y)
    assert np.isfinite(cost)
    analytic = {
        (i, name): layer.grads[name].copy()
        for i, layer in enumerate(model.layers)
        for name in layer.params
    }
    errors: Dict[Tuple[int, str], float] = {}
    for i, layer in enumerate(model.layers):
        for name, param in layer.params.items():

            def f() -> float:
                pred = model.forward(x, training=True)
                return model.loss.value(pred, y) + model.regularization_penalty()

            num = numerical_gradient(f, param, eps=eps)
            errors[(i, name)] = relative_error(analytic[(i, name)], num)
    return errors
