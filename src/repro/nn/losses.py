"""Loss functions.

A loss exposes ``value(pred, target)`` (mean over the batch) and
``gradient(pred, target)`` (gradient of the mean loss w.r.t. ``pred``).
Targets for classification losses are one-hot float arrays so the same
API serves both hard and soft labels.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

_EPS = 1e-12


def _check_same_shape(pred: np.ndarray, target: np.ndarray) -> None:
    if pred.shape != target.shape:
        raise ShapeError(f"pred shape {pred.shape} != target shape {target.shape}")


class Loss:
    """Base class for losses."""

    name = "loss"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + categorical cross-entropy.

    ``pred`` is the raw logits array ``(batch, classes)``; ``target`` is
    one-hot (or a soft distribution).  This is the loss the paper's
    Eq. (1) writes as the cross-entropy term :math:`C(W)`.
    """

    name = "softmax_cross_entropy"

    @staticmethod
    def probabilities(logits: np.ndarray) -> np.ndarray:
        """Row-wise softmax of ``logits`` (stable)."""
        shifted = logits - logits.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=-1, keepdims=True)

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        _check_same_shape(pred, target)
        p = self.probabilities(pred)
        return float(-np.sum(target * np.log(p + _EPS)) / pred.shape[0])

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        _check_same_shape(pred, target)
        p = self.probabilities(pred)
        return (p - target) / pred.shape[0]


class MeanSquaredError(Loss):
    """Mean squared error, averaged over batch *and* features."""

    name = "mse"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        _check_same_shape(pred, target)
        return float(np.mean((pred - target) ** 2))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        _check_same_shape(pred, target)
        return 2.0 * (pred - target) / pred.size


class HingeLoss(Loss):
    """Multi-class (Crammer–Singer) hinge loss on raw scores.

    For each sample with true class ``c``: ``mean_j max(0, margin +
    s_j - s_c)`` over ``j != c``.
    """

    name = "hinge"

    def __init__(self, margin: float = 1.0) -> None:
        self.margin = float(margin)

    def _margins(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        true_scores = np.sum(pred * target, axis=1, keepdims=True)
        margins = np.maximum(0.0, self.margin + pred - true_scores)
        return margins * (1.0 - target)  # zero-out the true class

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        _check_same_shape(pred, target)
        return float(np.sum(self._margins(pred, target)) / pred.shape[0])

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        _check_same_shape(pred, target)
        active = (self._margins(pred, target) > 0.0).astype(np.float64)
        grad = active.copy()
        grad -= target * active.sum(axis=1, keepdims=True)
        return grad / pred.shape[0]
