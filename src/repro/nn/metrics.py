"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def _labels(a: np.ndarray) -> np.ndarray:
    """Class indices from either one-hot rows or an index vector."""
    a = np.asarray(a)
    if a.ndim == 2:
        return a.argmax(axis=1)
    if a.ndim == 1:
        return a.astype(np.int64)
    raise ShapeError(f"expected 1-D labels or 2-D one-hot, got shape {a.shape}")


def accuracy(pred: np.ndarray, target: np.ndarray) -> float:
    """Fraction of samples whose argmax prediction matches the target."""
    p, t = _labels(pred), _labels(target)
    if p.shape != t.shape:
        raise ShapeError(f"pred labels {p.shape} != target labels {t.shape}")
    if p.size == 0:
        return 0.0
    return float(np.mean(p == t))


def top_k_accuracy(pred: np.ndarray, target: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose target is within the top-``k`` scores."""
    pred = np.asarray(pred)
    if pred.ndim != 2:
        raise ShapeError(f"top_k needs score matrix, got shape {pred.shape}")
    k = min(k, pred.shape[1])
    t = _labels(target)
    topk = np.argpartition(-pred, k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(topk == t[:, None], axis=1)))


def confusion_matrix(pred: np.ndarray, target: np.ndarray, n_classes: int) -> np.ndarray:
    """``(n_classes, n_classes)`` count matrix, rows = true class."""
    p, t = _labels(pred), _labels(target)
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(cm, (t, p), 1)
    return cm
