"""From-scratch neural-network training substrate.

The paper trains its networks with TensorFlow; this offline reproduction
implements the required subset of a deep-learning framework directly on
numpy: layers with explicit forward/backward passes, losses, optimizers,
weight initializers, learning-rate schedules and — the piece the paper
actually contributes — the **two-segment skewed regularizer** of
Eq. (8)–(10).

Public surface::

    from repro.nn import (
        Sequential, Dense, Conv2D, MaxPool2D, AvgPool2D, Flatten, Dropout,
        BatchNorm, Activation, ReLU, LeakyReLU, Tanh, Sigmoid,
        SoftmaxCrossEntropy, MeanSquaredError, HingeLoss,
        SGD, Momentum, Adam, RMSProp,
        L2Regularizer, SkewedL2Regularizer,
    )
"""

from repro.nn.activations import (
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)
from repro.nn.gradcheck import check_gradients, numerical_gradient
from repro.nn.initializers import (
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    LeCunNormal,
    NormalInit,
    UniformInit,
    ZerosInit,
    get_initializer,
)
from repro.nn.layers.activation import Activation
from repro.nn.layers.base import Layer, ParamLayer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.norm import BatchNorm
from repro.nn.layers.pool import AvgPool2D, MaxPool2D
from repro.nn.layers.reshape import Flatten
from repro.nn.losses import HingeLoss, Loss, MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.model import Sequential, TrainingHistory
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer, RMSProp
from repro.nn.regularizers import (
    L2Regularizer,
    NoRegularizer,
    Regularizer,
    SkewedL2Regularizer,
)
from repro.nn.schedules import ConstantLR, CosineLR, ExponentialLR, StepLR

__all__ = [
    "Activation",
    "Adam",
    "AvgPool2D",
    "BatchNorm",
    "ConstantLR",
    "Conv2D",
    "CosineLR",
    "Dense",
    "Dropout",
    "ExponentialLR",
    "Flatten",
    "GlorotNormal",
    "GlorotUniform",
    "HeNormal",
    "HeUniform",
    "HingeLoss",
    "Identity",
    "L2Regularizer",
    "Layer",
    "LeCunNormal",
    "LeakyReLU",
    "Loss",
    "MaxPool2D",
    "MeanSquaredError",
    "Momentum",
    "NoRegularizer",
    "NormalInit",
    "Optimizer",
    "ParamLayer",
    "ReLU",
    "RMSProp",
    "Regularizer",
    "SGD",
    "Sequential",
    "Sigmoid",
    "SkewedL2Regularizer",
    "Softmax",
    "SoftmaxCrossEntropy",
    "StepLR",
    "Tanh",
    "TrainingHistory",
    "UniformInit",
    "ZerosInit",
    "accuracy",
    "check_gradients",
    "confusion_matrix",
    "get_activation",
    "get_initializer",
    "numerical_gradient",
    "top_k_accuracy",
]
