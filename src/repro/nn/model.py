"""Sequential model: the training loop of the NN substrate.

The model composes layers, a loss, an optimizer and (optionally) one
regularizer per weighted layer.  Per-layer regularizers matter here: the
paper's skewed training picks a reference weight :math:`\\beta_i` *per
layer* from that layer's weight statistics (its Table II), so
:meth:`Sequential.set_regularizers` accepts either one regularizer for
all layers or a mapping ``{layer_index: Regularizer}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.backend import hxp

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers.base import Layer
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.optimizers import SGD, Optimizer
from repro.nn.regularizers import Regularizer
from repro.nn.schedules import Schedule
from repro.rng import SeedLike, ensure_rng

RegularizerSpec = Union[Regularizer, Dict[int, Regularizer], None]


@dataclass
class TrainingHistory:
    """Per-epoch training curves collected by :meth:`Sequential.fit`."""

    loss: List[float] = field(default_factory=list)
    accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    lr: List[float] = field(default_factory=list)

    def last(self) -> Dict[str, float]:
        """Final epoch's metrics as a flat dict."""
        out: Dict[str, float] = {}
        for name in ("loss", "accuracy", "val_loss", "val_accuracy", "lr"):
            values = getattr(self, name)
            if values:
                out[name] = values[-1]
        return out


class Sequential:
    """A linear stack of layers trained with minibatch gradient descent."""

    def __init__(
        self,
        layers: Sequence[Layer],
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        seed: SeedLike = None,
    ) -> None:
        if not layers:
            raise ConfigurationError("Sequential needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.optimizer = optimizer if optimizer is not None else SGD(0.01)
        self._rng = ensure_rng(seed)
        self._regularizers: Dict[int, Regularizer] = {}
        self.built = False
        self.input_shape: Optional[Tuple[int, ...]] = None

    # -- construction ----------------------------------------------------
    def build(self, input_shape: Sequence[int]) -> "Sequential":
        """Allocate all layer parameters for samples of ``input_shape``."""
        shape = tuple(int(s) for s in input_shape)
        self.input_shape = shape
        for layer in self.layers:
            shape = layer.build(shape, self._rng)
        self.built = True
        return self

    def set_regularizers(self, spec: RegularizerSpec) -> None:
        """Install weight regularizers.

        ``spec`` may be a single :class:`Regularizer` (applied to every
        weighted layer), a dict ``{layer_index: Regularizer}``, or
        ``None`` to clear.
        """
        self._regularizers = {}
        if spec is None:
            return
        if isinstance(spec, Regularizer):
            for idx, _layer in self.weighted_layers():
                self._regularizers[idx] = spec
            return
        for idx, reg in spec.items():
            if not 0 <= idx < len(self.layers):
                raise ConfigurationError(f"regularizer index {idx} out of range")
            if not self.layers[idx].regularized:
                raise ConfigurationError(
                    f"layer {idx} ({self.layers[idx]!r}) has no regularizable weights"
                )
            self._regularizers[idx] = reg

    def regularizer_for(self, layer_index: int) -> Optional[Regularizer]:
        """The regularizer installed on ``layer_index``, if any."""
        return self._regularizers.get(layer_index)

    # -- inspection --------------------------------------------------------
    def weighted_layers(self) -> List[Tuple[int, Layer]]:
        """``(index, layer)`` for every layer with regularizable weights.

        These are exactly the layers whose weight matrices are mapped to
        memristor crossbars.
        """
        return [(i, l) for i, l in enumerate(self.layers) if l.regularized]

    def num_params(self) -> int:
        """Total scalar parameter count."""
        return sum(layer.num_params() for layer in self.layers)

    def summary(self) -> str:
        """Human-readable architecture table."""
        self._require_built()
        lines = [f"{'#':>3}  {'layer':<42} {'output':<18} {'params':>10}"]
        for i, layer in enumerate(self.layers):
            lines.append(
                f"{i:>3}  {repr(layer):<42} {str(layer.output_shape()):<18} "
                f"{layer.num_params():>10}"
            )
        lines.append(f"total params: {self.num_params()}")
        return "\n".join(lines)

    # -- forward/backward ---------------------------------------------------
    def forward(self, x: hxp.ndarray, training: bool = False) -> hxp.ndarray:
        self._require_built()
        out = hxp.asarray(x, dtype=hxp.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: hxp.ndarray) -> hxp.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def regularization_penalty(self) -> float:
        """Total regularization cost over all weighted layers."""
        total = 0.0
        for idx, layer in self.weighted_layers():
            reg = self._regularizers.get(idx)
            if reg is None:
                continue
            for name in layer.regularized:
                total += reg.penalty(layer.params[name])
        return total

    def _apply_regularizer_grads(self) -> None:
        for idx, layer in self.weighted_layers():
            reg = self._regularizers.get(idx)
            if reg is None:
                continue
            for name in layer.regularized:
                layer.grads[name] += reg.gradient(layer.params[name])

    def compute_gradients(self, x: hxp.ndarray, y: hxp.ndarray) -> float:
        """One forward+backward pass; fills every ``layer.grads``.

        Returns the total cost (data loss + regularization).  Does *not*
        update parameters — used by gradient checking and by the online
        tuning engine, which needs gradient *signs* only (Eq. (5)).
        """
        pred = self.forward(x, training=True)
        data_loss = self.loss.value(pred, y)
        self.backward(self.loss.gradient(pred, y))
        self._apply_regularizer_grads()
        return data_loss + self.regularization_penalty()

    def train_batch(self, x: hxp.ndarray, y: hxp.ndarray) -> float:
        """One optimizer step on a minibatch; returns the total cost."""
        cost = self.compute_gradients(x, y)
        self.optimizer.begin_step()
        for layer in self.layers:
            for name, param in layer.params.items():
                self.optimizer.update(param, layer.grads[name])
        return cost

    # -- high-level API ----------------------------------------------------
    def fit(
        self,
        x: hxp.ndarray,
        y: hxp.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        validation_data: Optional[Tuple[hxp.ndarray, hxp.ndarray]] = None,
        schedule: Optional[Schedule] = None,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Minibatch training loop; returns per-epoch history."""
        self._require_built()
        x = hxp.asarray(x, dtype=hxp.float64)
        y = hxp.asarray(y, dtype=hxp.float64)
        if len(x) != len(y):
            raise ShapeError(f"x has {len(x)} samples but y has {len(y)}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        history = TrainingHistory()
        n = len(x)
        for epoch in range(epochs):
            if schedule is not None:
                self.optimizer.lr = schedule(epoch)
            order = self._rng.permutation(n) if shuffle else hxp.arange(n)
            epoch_cost = 0.0
            n_batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                epoch_cost += self.train_batch(x[idx], y[idx])
                n_batches += 1
            history.loss.append(epoch_cost / max(1, n_batches))
            history.accuracy.append(self.score(x, y, batch_size=max(batch_size, 256)))
            history.lr.append(self.optimizer.lr)
            if validation_data is not None:
                vx, vy = validation_data
                val_loss, val_acc = self.evaluate(vx, vy)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
            if verbose:  # pragma: no cover - console output
                msg = (
                    f"epoch {epoch + 1}/{epochs} "
                    f"loss={history.loss[-1]:.4f} acc={history.accuracy[-1]:.4f}"
                )
                if validation_data is not None:
                    msg += f" val_acc={history.val_accuracy[-1]:.4f}"
                print(msg)
        return history

    def predict(self, x: hxp.ndarray, batch_size: int = 256) -> hxp.ndarray:
        """Model outputs (logits) for ``x``, computed in batches."""
        x = hxp.asarray(x, dtype=hxp.float64)
        outputs = [
            self.forward(x[start : start + batch_size], training=False)
            for start in range(0, len(x), batch_size)
        ]
        return hxp.concatenate(outputs, axis=0)

    def predict_classes(self, x: hxp.ndarray, batch_size: int = 256) -> hxp.ndarray:
        """Argmax class indices for ``x``."""
        return self.predict(x, batch_size=batch_size).argmax(axis=1)

    def evaluate(
        self, x: hxp.ndarray, y: hxp.ndarray, batch_size: int = 256
    ) -> Tuple[float, float]:
        """``(data_loss, accuracy)`` on a labelled set."""
        pred = self.predict(x, batch_size=batch_size)
        y = hxp.asarray(y, dtype=hxp.float64)
        return self.loss.value(pred, y), accuracy(pred, y)

    def score(self, x: hxp.ndarray, y: hxp.ndarray, batch_size: int = 256) -> float:
        """Classification accuracy on a labelled set."""
        return self.evaluate(x, y, batch_size=batch_size)[1]

    # -- weight snapshots -----------------------------------------------------
    def get_weights(self) -> List[Dict[str, hxp.ndarray]]:
        """Copy of every layer's parameters (list indexed like layers)."""
        return [{k: v.copy() for k, v in layer.params.items()} for layer in self.layers]

    def set_weights(self, weights: List[Dict[str, hxp.ndarray]]) -> None:
        """Restore parameters from a :meth:`get_weights` snapshot."""
        if len(weights) != len(self.layers):
            raise ShapeError(
                f"snapshot has {len(weights)} layers, model has {len(self.layers)}"
            )
        for layer, snap in zip(self.layers, weights):
            for name, value in snap.items():
                layer.params[name][...] = value

    def all_weight_values(self) -> hxp.ndarray:
        """All regularizable weights concatenated into one flat vector.

        Used by distribution analyses (Fig. 3/6/9) and by the
        ``beta = c * sigma`` rule.
        """
        chunks = [
            layer.params[name].ravel()
            for _idx, layer in self.weighted_layers()
            for name in layer.regularized
        ]
        return hxp.concatenate(chunks) if chunks else hxp.empty(0, dtype=hxp.float64)

    def _require_built(self) -> None:
        if not self.built:
            raise ConfigurationError("model is not built; call build(input_shape) first")
