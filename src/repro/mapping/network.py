"""Mapping a trained network onto simulated crossbar hardware.

:class:`MappedNetwork` owns one :class:`~repro.crossbar.tiling.TiledMatrix`
per weighted layer of a trained :class:`~repro.nn.model.Sequential`:

* **Dense** layers map their ``(in, out)`` weight matrix directly — one
  device per weight, one column per output neuron (Fig. 1).
* **Conv2D** layers map their unrolled ``(in_ch*kh*kw, filters)`` matrix
  — the im2col arrangement the forward pass already uses, so one device
  column per filter.

Biases (and batch-norm parameters) stay in the digital domain, the
standard assumption for memristor accelerators.

Inference against hardware works by *weight reconstruction*: the
programmed conductances are read (with read noise), inverted through the
layer's Eq. (4) mapping into effective weights, and installed into a
scratch software clone whose forward pass is mathematically identical to
the analog ``V_O = V_I · G · R`` pipeline up to the affine calibration
the TIA/reference columns implement in real arrays.  This is the same
modelling choice analog-AI simulators such as IBM's aihwkit make, and it
lets the full test set run at numpy GEMM speed while every nonideality
(quantization, aging clipping, write/read noise, drift, dead devices)
still enters through the *device* arrays.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.backend import hxp

from repro.core.fastpath import vectorized_enabled
from repro.core.kernels import cache_enabled
from repro.core.profiling import PROFILER
from repro.crossbar.tiling import TiledMatrix
from repro.crossbar.tracer import BlockTracer
from repro.device.config import DeviceConfig
from repro.exceptions import ConfigurationError, ShapeError
from repro.mapping.fresh import FreshMapper
from repro.mapping.linear import LinearWeightMapping
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.model import Sequential
from repro.rng import SeedLike, ensure_rng, spawn_rng


def clone_model(model: Sequential) -> Sequential:
    """Structural deep copy of a model (weights included, state reset)."""
    return copy.deepcopy(model)


def _layer_matrix(layer) -> hxp.ndarray:
    """Weighted layer's kernel as a 2-D ``(rows, cols)`` device matrix."""
    w = layer.params["W"]
    if isinstance(layer, Dense):
        return w.copy()
    if isinstance(layer, Conv2D):
        return w.reshape(w.shape[0], -1).T.copy()
    raise ConfigurationError(f"layer {layer!r} cannot be mapped to a crossbar")


def _matrix_to_kernel(matrix: hxp.ndarray, layer) -> hxp.ndarray:
    """Inverse of :func:`_layer_matrix`."""
    if isinstance(layer, Dense):
        return matrix
    if isinstance(layer, Conv2D):
        return matrix.T.reshape(layer.params["W"].shape)
    raise ConfigurationError(f"layer {layer!r} cannot be mapped to a crossbar")


class MappedLayer:
    """One weighted layer's presence on hardware."""

    def __init__(
        self,
        layer_index: int,
        layer,
        device_config: DeviceConfig,
        tile_rows: int,
        tile_cols: int,
        r_tia: float,
        trace_block: int,
        seed: SeedLike = None,
        parasitics=None,
    ) -> None:
        self.layer_index = int(layer_index)
        self.layer = layer
        self.device_config = device_config
        #: Optional :class:`repro.crossbar.parasitics.ParasiticModel`.
        self.parasitics = parasitics
        self.kind = "conv" if isinstance(layer, Conv2D) else "dense"
        matrix = _layer_matrix(layer)
        self.matrix_shape: Tuple[int, int] = matrix.shape
        rng = ensure_rng(seed)
        self.tiles = TiledMatrix(
            matrix.shape[0],
            matrix.shape[1],
            tile_rows=tile_rows,
            tile_cols=tile_cols,
            config=device_config,
            r_tia=r_tia,
            seed=rng,
        )
        self.tracers = [
            BlockTracer(tile, trace_block) for _rs, _cs, tile in self.tiles.iter_tiles()
        ]
        #: Mapping used at the most recent programming; set by set_range.
        self.mapping: Optional[LinearWeightMapping] = None
        #: Optional logical→physical row permutation (wear levelling —
        #: see :class:`repro.mitigation.row_swap.RowSwapper`).  Row ``i``
        #: of the logical matrix is stored on physical row ``perm[i]``.
        self.row_permutation: Optional[hxp.ndarray] = None
        self._grid = device_config.make_level_grid()

    # -- row permutation (wear levelling) ---------------------------------
    def set_row_permutation(self, perm: Optional[hxp.ndarray]) -> None:
        """Install a logical→physical row permutation (or clear it)."""
        if perm is None:
            self.row_permutation = None
            return
        perm = hxp.asarray(perm, dtype=hxp.int64)
        if sorted(perm.tolist()) != list(range(self.matrix_shape[0])):
            raise ConfigurationError(
                f"not a permutation of {self.matrix_shape[0]} rows"
            )
        self.row_permutation = perm

    def _to_physical(self, logical: hxp.ndarray) -> hxp.ndarray:
        if self.row_permutation is None:
            return logical
        out = hxp.empty_like(logical)
        out[self.row_permutation] = logical
        return out

    def _to_logical(self, physical: hxp.ndarray) -> hxp.ndarray:
        if self.row_permutation is None:
            return physical
        return physical[self.row_permutation]

    # -- software side -----------------------------------------------------
    def software_matrix(self) -> hxp.ndarray:
        """Current trained weights as the 2-D device matrix."""
        return _layer_matrix(self.layer)

    def traced_upper_bounds(self) -> hxp.ndarray:
        """Aged upper bounds of all traced devices across tiles."""
        if not self.tracers:
            return hxp.empty(0, dtype=hxp.float64)
        return hxp.concatenate([t.traced_upper_bounds() for t in self.tracers])

    def estimated_bounds(self) -> Tuple[hxp.ndarray, hxp.ndarray]:
        """Tracer-estimated per-device aged windows over the full matrix."""
        lo = hxp.empty(self.matrix_shape, dtype=hxp.float64)
        hi = hxp.empty(self.matrix_shape, dtype=hxp.float64)
        for (rs, cs, _tile), tracer in zip(self.tiles.iter_tiles(), self.tracers):
            tlo, thi = tracer.estimated_bounds()
            lo[rs, cs], hi[rs, cs] = tlo, thi
        return lo, hi

    # -- range + programming ------------------------------------------------
    def set_range(self, r_lo: float, r_hi: float) -> LinearWeightMapping:
        """Fix the common resistance range and derive the Eq. (4) mapping."""
        if r_hi <= r_lo:
            raise ConfigurationError(f"invalid common range [{r_lo}, {r_hi}]")
        self.mapping = LinearWeightMapping.from_resistance_range(
            self.software_matrix(), r_lo, r_hi
        )
        return self.mapping

    def predicted_matrix(self, r_lo: float, r_hi: float) -> hxp.ndarray:
        """Predict the effective weight matrix for a hypothetical range.

        Uses the *traced* window estimates (not ground truth) — this is
        the information the aging-aware controller actually has.
        """
        mapping = LinearWeightMapping.from_resistance_range(
            self.software_matrix(), r_lo, r_hi
        )
        est_lo, est_hi = self.estimated_bounds()
        targets = self._to_physical(
            hxp.asarray(mapping.weight_to_resistance(self.software_matrix()))
        )
        achieved = self._grid.quantize(targets, est_lo, est_hi)
        return hxp.asarray(mapping.resistance_to_weight(self._to_logical(achieved)))

    def program(self) -> None:
        """Program the software weights into the tiles (ages devices).

        On the vectorized path the whole layer is programmed through
        the batched :meth:`~repro.crossbar.tiling.TiledMatrix.program_targets`
        entry point (no logical result assembly) and the pulse count is
        recorded under the ``programming.batched`` perf counter.
        """
        if self.mapping is None:
            raise ConfigurationError("set_range must be called before program")
        targets = hxp.asarray(self.mapping.weight_to_resistance(self.software_matrix()))
        if vectorized_enabled():
            applied = self.tiles.program_targets(self._to_physical(targets))
            PROFILER.increment("programming.batched", applied)
        else:
            self.tiles.program(self._to_physical(targets))

    # -- hardware side -------------------------------------------------------
    def hardware_matrix(self) -> hxp.ndarray:
        """Effective weight matrix read back from the devices.

        When the owning network models wire parasitics, the read
        conductances are first attenuated by the first-order IR-drop
        factors — far-corner devices deliver less of their signal.

        Reads go through the tiles' state-versioned conductance caches
        (DESIGN.md §9): noise-free reads between reprogramming events
        reuse the cached per-tile matrices instead of re-inverting the
        resistance state.
        """
        if self.mapping is None:
            raise ConfigurationError("layer has never been programmed")
        PROFILER.increment("network.hardware_reads")
        g = self.tiles.read_conductances()
        if self.parasitics is not None:
            from repro.crossbar.parasitics import ir_drop_factors

            g = g * ir_drop_factors(g, self.parasitics)
            physical = 1.0 / hxp.maximum(g, 1e-12)
            return hxp.asarray(
                self.mapping.resistance_to_weight(self._to_logical(physical))
            )
        return hxp.asarray(
            self.mapping.conductance_to_weight(self._to_logical(g))
        )

    def hardware_kernel(self) -> hxp.ndarray:
        """Effective weights reshaped to the layer's kernel shape."""
        return _matrix_to_kernel(self.hardware_matrix(), self.layer)

    def apply_gradient_signs(
        self, weight_grad: hxp.ndarray, threshold: float, step_fraction: float = 0.5
    ) -> int:
        """One Eq. (5) tuning sweep from a weight-gradient matrix.

        ``weight_grad`` is dCost/dW in the 2-D device arrangement.  To
        *reduce* cost a weight must move against its gradient; since
        conductance increases affinely with weight, the conductance
        pulse polarity is ``-sign(dCost/dW)``.  Only devices with
        ``|grad| >= threshold * max|grad|`` of their layer receive a
        pulse (the constant-amplitude driver does not pulse negligible
        gradients).  Returns the number of pulsed devices.
        """
        if weight_grad.shape != self.matrix_shape:
            raise ShapeError(
                f"grad shape {weight_grad.shape} != device matrix {self.matrix_shape}"
            )
        scale = float(hxp.max(hxp.abs(weight_grad)))
        if scale == 0.0:
            return 0
        directions = (-hxp.sign(weight_grad)).astype(hxp.int64)
        directions[hxp.abs(weight_grad) < threshold * scale] = 0
        physical = self._to_physical(directions)
        if vectorized_enabled():
            # Batched pulse path: mask == (polarity != 0) by
            # construction, so this is bit-identical to the scalar
            # step_conductance sweep (same draws, same arithmetic).
            applied = self.tiles.program_pulses(
                physical != 0, physical, fraction=step_fraction
            )
            PROFILER.increment("tuning.batched_pulses", applied)
        else:
            self.tiles.step_conductance(physical, fraction=step_fraction)
        return int(hxp.count_nonzero(directions))

    def dead_device_mask(self) -> hxp.ndarray:
        """Dead devices in the *logical* matrix arrangement.

        Dead masks come out of the tiles in physical coordinates; the
        logical view matches gradient/weight matrices so tuning can
        mask pulses to devices that cannot respond.
        """
        return self._to_logical(self.tiles.dead_mask())

    def mean_aged_upper_bound(self) -> float:
        """Average aged ``R_max`` over all devices (Fig. 11 metric)."""
        _lo, hi = self.tiles.aged_bounds()
        return float(hxp.mean(hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MappedLayer(index={self.layer_index}, kind={self.kind}, "
            f"matrix={self.matrix_shape})"
        )


class MappedNetwork:
    """A trained model together with its crossbar incarnation."""

    def __init__(
        self,
        model: Sequential,
        device_config: Optional[DeviceConfig] = None,
        tile_rows: int = 128,
        tile_cols: int = 128,
        r_tia: float = 1e3,
        trace_block: int = 3,
        seed: SeedLike = None,
        parasitics=None,
    ) -> None:
        if not model.built:
            raise ConfigurationError("model must be built before mapping")
        self.model = model
        self.device_config = device_config if device_config is not None else DeviceConfig()
        rng = ensure_rng(seed)
        self.layers: List[MappedLayer] = [
            MappedLayer(
                idx,
                layer,
                self.device_config,
                tile_rows,
                tile_cols,
                r_tia,
                trace_block,
                seed=spawn_rng(rng, f"layer{idx}"),
                parasitics=parasitics,
            )
            for idx, layer in model.weighted_layers()
        ]
        self._scratch = clone_model(model)
        # The scratch model exists to evaluate/tune *hardware* weights;
        # software-training regularizers must not leak into the tuning
        # gradients (the paper's online tuning minimizes the plain cost
        # on the mapped network).
        self._scratch.set_regularizers(None)
        # Read-reuse scope state (DESIGN.md §11): inside a
        # :meth:`read_reuse` scope, noise-free hardware reads are
        # memoized per aggregate tile state version and the software
        # weight snapshot is captured once instead of per install.
        self._reuse_depth = 0
        self._scratch_holds: Optional[Tuple[int, ...]] = None
        self._software_snapshot: Optional[List[Dict[str, hxp.ndarray]]] = None

    # -- mapping --------------------------------------------------------
    def map_network(
        self,
        policy=None,
        selection_data: Optional[Tuple[hxp.ndarray, hxp.ndarray]] = None,
    ) -> None:
        """Map every weighted layer to hardware under ``policy``.

        ``policy`` is a :class:`~repro.mapping.fresh.FreshMapper`
        (default) or :class:`~repro.mapping.aging_aware.AgingAwareMapper`.
        For the aging-aware policy, ``selection_data`` supplies the
        batch on which candidate common ranges are scored; layers are
        processed in order and each candidate is scored with
        already-selected layers at their predicted weights.
        """
        policy = policy if policy is not None else FreshMapper()
        predicted: Dict[int, hxp.ndarray] = {}
        for mapped in self.layers:
            if hasattr(policy, "candidate_uppers") and selection_data is not None:
                x_sel, y_sel = selection_data
                n = min(len(x_sel), getattr(policy, "selection_batch", 128))

                def score(r_lo: float, r_hi: float, mapped=mapped) -> float:
                    trial = dict(predicted)
                    trial[mapped.layer_index] = mapped.predicted_matrix(r_lo, r_hi)
                    return self._accuracy_with_matrices(trial, x_sel[:n], y_sel[:n])

                r_lo, r_hi = policy.select_range(mapped, score)
            elif hasattr(policy, "candidate_uppers"):
                r_lo, r_hi = policy.select_range(mapped, None)
            else:
                r_lo, r_hi = policy.select_range(mapped)
            mapped.set_range(r_lo, r_hi)
            predicted[mapped.layer_index] = mapped.predicted_matrix(r_lo, r_hi)
        for mapped in self.layers:
            mapped.program()

    # -- hardware inference -----------------------------------------------
    @contextmanager
    def read_reuse(self) -> Iterator[None]:
        """Scope in which hardware reads may be memoized (DESIGN.md §11).

        The per-window map → tune → evaluate pipeline re-reads the same
        unchanged device state many times (gradient evaluation, scoring,
        window metrics).  Inside this scope — and only when the
        vectorized path, value caching, and noise-free reads all hold —
        :meth:`effective_model` reuses the scratch model as long as no
        tile's state version moved, and :meth:`_install_matrices`
        captures the software weight snapshot once instead of per call.
        Results are bit-identical by construction: the memo key is the
        same state-version counter that already guards the conductance
        caches, and noisy reads (which draw RNG) are never memoized.

        Scopes nest; all network-level caches are dropped when the
        outermost scope exits, so state held here can never leak into
        code that runs outside the hot loop.
        """
        self._reuse_depth += 1
        try:
            yield
        finally:
            self._reuse_depth -= 1
            if self._reuse_depth == 0:
                self._scratch_holds = None
                self._software_snapshot = None

    def _reads_deterministic(self) -> bool:
        """True when hardware reads are noise-free (hence memoizable).

        Noisy reads draw from the per-tile RNG streams; caching them
        would both change values and desynchronize the streams, so any
        read noise (global or per-tile fault-injected) disables reuse.
        """
        if self.device_config.read_noise > 0:
            return False
        for mapped in self.layers:
            for _rs, _cs, tile in mapped.tiles.iter_tiles():
                if tile.read_noise_extra > 0:
                    return False
        return True

    def _install_matrices(self, matrices: Dict[int, hxp.ndarray]) -> Sequential:
        """Scratch model with given device matrices, software elsewhere."""
        # Installing arbitrary matrices (e.g. candidate-scoring trials)
        # invalidates any memoized hardware state in the scratch model.
        self._scratch_holds = None
        if self._reuse_depth > 0 and vectorized_enabled() and cache_enabled():
            if self._software_snapshot is None:
                self._software_snapshot = self.model.get_weights()
            snapshot = self._software_snapshot
        else:
            snapshot = self.model.get_weights()
        self._scratch.set_weights(snapshot)
        for mapped in self.layers:
            if mapped.layer_index in matrices:
                kernel = _matrix_to_kernel(matrices[mapped.layer_index], mapped.layer)
                self._scratch.layers[mapped.layer_index].params["W"][...] = kernel
        return self._scratch

    def _accuracy_with_matrices(
        self, matrices: Dict[int, hxp.ndarray], x: hxp.ndarray, y: hxp.ndarray
    ) -> float:
        return self._install_matrices(matrices).score(x, y)

    def effective_model(self) -> Sequential:
        """Scratch model carrying the current *hardware* weights.

        Valid until the next call that mutates the scratch model; copy
        it (``clone_model``) to keep a snapshot.

        Inside a :meth:`read_reuse` scope with deterministic reads, the
        assembled scratch model is memoized against the per-layer tile
        state versions: repeated calls between reprogramming events
        (gradient evaluation followed by accuracy scoring, say) skip
        the read → invert → install rebuild entirely.
        """
        memoizable = (
            self._reuse_depth > 0
            and vectorized_enabled()
            and cache_enabled()
            and self._reads_deterministic()
        )
        if memoizable:
            key = tuple(m.tiles.state_version for m in self.layers)
            if self._scratch_holds == key:
                PROFILER.increment("network.effective_model_reuse")
                return self._scratch
        matrices = {m.layer_index: m.hardware_matrix() for m in self.layers}
        model = self._install_matrices(matrices)
        if memoizable:
            self._scratch_holds = key
        return model

    def evaluate(self, x: hxp.ndarray, y: hxp.ndarray) -> Tuple[float, float]:
        """``(loss, accuracy)`` of the hardware-mapped network."""
        return self.effective_model().evaluate(x, y)

    def score(self, x: hxp.ndarray, y: hxp.ndarray) -> float:
        """Hardware classification accuracy."""
        return self.evaluate(x, y)[1]

    # -- tuning support ---------------------------------------------------------
    def gradient_sign_matrices(
        self, x: hxp.ndarray, y: hxp.ndarray
    ) -> Dict[int, hxp.ndarray]:
        """dCost/dW per mapped layer, evaluated at the *hardware* weights.

        The online tuning controller computes derivatives in software
        (the paper's simplified scheme keeps only their signs, Eq. (5));
        the full-precision gradient is returned here and thresholding
        happens in :meth:`MappedLayer.apply_gradient_signs`.
        """
        scratch = self.effective_model()
        pred = scratch.forward(hxp.asarray(x, dtype=hxp.float64), training=False)
        scratch.backward(scratch.loss.gradient(pred, hxp.asarray(y, dtype=hxp.float64)))
        out: Dict[int, hxp.ndarray] = {}
        for mapped in self.layers:
            grad_kernel = scratch.layers[mapped.layer_index].grads["W"]
            out[mapped.layer_index] = (
                grad_kernel.copy()
                if mapped.kind == "dense"
                else grad_kernel.reshape(grad_kernel.shape[0], -1).T.copy()
            )
        return out

    def apply_tuning_sweep(
        self,
        grads: Dict[int, hxp.ndarray],
        threshold: float,
        step_fraction: float,
        mask_dead: bool = False,
    ) -> int:
        """One whole-network Eq. (5) sweep from per-layer gradients.

        The network-level entry point of the batched tuning path:
        per-layer dead masking, sign/threshold decisions, and pulse
        application all run as array ops (``program_pulses`` per tile
        under the vectorized path, ``step_conductance`` otherwise —
        identical arithmetic either way).  Returns the number of
        above-threshold devices summed over layers.
        """
        pulsed = 0
        for mapped in self.layers:
            grad = grads[mapped.layer_index]
            if mask_dead:
                dead = mapped.dead_device_mask()
                if dead.any():
                    grad = hxp.where(dead, 0.0, grad)
            pulsed += mapped.apply_gradient_signs(grad, threshold, step_fraction)
        return pulsed

    # -- aging bookkeeping ---------------------------------------------------
    def total_pulses(self) -> int:
        """Programming pulses applied across all layers since creation."""
        return sum(m.tiles.pulse_totals() for m in self.layers)

    def dead_fraction(self) -> float:
        """Fraction of dead devices over the whole network."""
        total = sum(m.matrix_shape[0] * m.matrix_shape[1] for m in self.layers)
        dead = sum(
            m.tiles.dead_fraction() * m.matrix_shape[0] * m.matrix_shape[1]
            for m in self.layers
        )
        return float(dead / total) if total else 0.0

    def apply_drift(self, magnitude: float) -> None:
        """Read-disturb drift on every layer (between tuning windows)."""
        for mapped in self.layers:
            mapped.tiles.apply_drift(magnitude)

    def aging_by_layer(self) -> Dict[int, float]:
        """Mean aged upper bound per mapped layer (Fig. 11 series)."""
        return {m.layer_index: m.mean_aged_upper_bound() for m in self.layers}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MappedNetwork(layers={len(self.layers)}, pulses={self.total_pulses()})"
