"""Aging-aware mapping policy — paper Section IV-B and Fig. 8.

The policy:

1. The programming history of one representative device per 3×3 block
   is traced (:class:`~repro.crossbar.tracer.BlockTracer`), and each
   traced device's aged window is estimated with Eq. (6)–(7).
2. Because all devices in a column must share one linear conductance
   range, a **common** resistance range has to be chosen for the array.
   The candidate upper bounds are the traced devices' aged upper bounds,
   lying between ``R^L_aged,max`` (most-aged trace) and ``R^U_aged,max``
   (least-aged trace).
3. For every candidate, the weights are mapped into ``[R_min,
   candidate]`` and the resulting classification accuracy is *predicted*
   (map → clip/quantize against the traced window estimates → invert →
   evaluate the network on a selection batch).  The candidate with the
   highest accuracy wins.

The selected range may not cover every device (Fig. 8's M3 example);
the residual mismatch is what online tuning cleans up afterwards — with
far fewer iterations than the fresh-range baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class RangeSelection:
    """Outcome of one common-range selection (kept for diagnostics)."""

    layer_index: int
    candidates: List[float]
    scores: List[float]
    chosen_upper: float
    chosen_lower: float

    def best_score(self) -> float:
        """Predicted accuracy of the chosen candidate."""
        return max(self.scores) if self.scores else float("nan")


class AgingAwareMapper:
    """Iterative common-range selection over traced aged upper bounds.

    Parameters
    ----------
    max_candidates:
        The traced bounds can be numerous; at most this many uniformly
        spread (by rank) unique candidates are scored.  The paper
        iterates all of them; capping keeps selection cost bounded with
        no measurable quality loss (the candidates are dense).
    selection_batch:
        Number of validation samples used to score each candidate.
    tie_tolerance:
        Candidates scoring within this accuracy of the best are treated
        as tied, and the largest (least-stress) upper bound among them
        wins.
    min_levels:
        A candidate common range must keep at least this many quantized
        levels.  Near end-of-life some traced windows are almost
        collapsed; mapping an entire layer into one or two levels can
        *score* deceptively well against equally collapsed estimates
        while destroying the array — such candidates are excluded
        (unless nothing else remains).
    fault_aware:
        Graceful degradation for stuck-at faults: a stuck device's
        traced window collapses far below the healthy population, and
        without filtering its bound floods the candidate list with
        degenerate ranges that compress every *healthy* device into a
        few levels.  With ``fault_aware=True``, traced bounds that
        cannot even host ``min_levels`` levels (i.e. devices that are
        effectively dead/stuck) are dropped from candidate generation
        as long as healthy traces remain; the stuck devices themselves
        clamp to their pinned value at program time regardless, and the
        residual error is left to tuning/differential compensation.
    """

    name = "aging_aware"

    def __init__(
        self,
        max_candidates: int = 6,
        selection_batch: int = 192,
        tie_tolerance: float = 0.02,
        min_levels: int = 8,
        fault_aware: bool = False,
    ) -> None:
        if max_candidates < 1:
            raise ConfigurationError(f"max_candidates must be >= 1, got {max_candidates}")
        if selection_batch < 1:
            raise ConfigurationError(f"selection_batch must be >= 1, got {selection_batch}")
        if tie_tolerance < 0:
            raise ConfigurationError(f"tie_tolerance must be >= 0, got {tie_tolerance}")
        if min_levels < 2:
            raise ConfigurationError(f"min_levels must be >= 2, got {min_levels}")
        self.max_candidates = int(max_candidates)
        self.selection_batch = int(selection_batch)
        self.tie_tolerance = float(tie_tolerance)
        self.min_levels = int(min_levels)
        self.fault_aware = bool(fault_aware)
        #: RangeSelection records of the most recent map_network call.
        self.history: List[RangeSelection] = []

    def candidate_uppers(self, layer) -> List[float]:
        """Unique candidate common upper bounds for ``layer``.

        The traced devices' aged upper bounds are snapped **down** to
        the fresh level grid — Fig. 8 reasons in level granularity: an
        aged bound between two levels makes the level above it
        unreachable, and the usable range ends at the level below.
        Snapping also means that while no full level has been consumed
        by aging, the single candidate is ``R_max`` itself and the
        policy degenerates to fresh mapping (identical targets, no
        reprogramming churn).  Deduplicated and capped to
        ``max_candidates`` values spread across the
        ``[R^L_aged,max, R^U_aged,max]`` span.
        """
        cfg = layer.device_config
        traced = np.asarray(layer.traced_upper_bounds(), dtype=np.float64)
        if traced.size == 0:
            return [cfg.r_max]
        grid = cfg.make_level_grid()
        if self.fault_aware:
            # Stuck/dead traces have collapsed below the min_levels
            # floor; keep only healthy traces (if any survive) so the
            # candidate list reflects devices that can still be mapped.
            floor_bound = grid.r_min + (self.min_levels - 1) * grid.step
            healthy = traced[traced >= floor_bound]
            if healthy.size:
                traced = healthy
        idx = np.floor((traced - grid.r_min) / grid.step).astype(np.int64)
        floor_idx = min(self.min_levels - 1, grid.n_levels - 1)
        idx = np.clip(idx, floor_idx, grid.n_levels - 1)
        snapped = grid.r_min + idx * grid.step
        uniques = np.unique(snapped)
        if uniques.size > self.max_candidates:
            pick = np.linspace(0, uniques.size - 1, self.max_candidates).round().astype(int)
            uniques = uniques[np.unique(pick)]
        return [float(u) for u in uniques]

    def select_range(
        self,
        layer,
        score_fn: Callable[[float, float], float] | None = None,
    ) -> Tuple[float, float]:
        """Choose the common ``(r_lo, r_hi)`` for ``layer``.

        ``score_fn(r_lo, r_hi)`` returns the predicted classification
        accuracy of mapping this layer into that range (supplied by
        :class:`~repro.mapping.network.MappedNetwork`, which knows the
        rest of the network).  Without a score function the
        *most-conservative* candidate (``R^L_aged,max``, guaranteed to
        be reachable by every traced device) is returned.

        The lower bound stays at the nominal fresh ``R_min``: the paper
        observes the original lower bounds remain inside the aged window
        (Section IV-B).
        """
        r_lo = layer.device_config.r_min
        candidates = self.candidate_uppers(layer)
        # Guard against a degenerate window.
        candidates = [c for c in candidates if c > r_lo * 1.001] or [r_lo * 1.01]
        if score_fn is None:
            chosen = min(candidates)
            self.history.append(
                RangeSelection(layer.layer_index, candidates, [], chosen, r_lo)
            )
            return r_lo, chosen
        scores = [float(score_fn(r_lo, c)) for c in candidates]
        # Among near-tied candidates, prefer the LARGEST upper bound:
        # a wider common range maps weights to larger resistances, i.e.
        # lower programming currents and less aging.  (Early in life all
        # candidates predict the same accuracy; without this tie-break
        # the policy would needlessly compress the range.)
        best_score = max(scores)
        chosen = max(
            c for c, s in zip(candidates, scores) if s >= best_score - self.tie_tolerance
        )
        self.history.append(
            RangeSelection(layer.layer_index, candidates, scores, chosen, r_lo)
        )
        return r_lo, chosen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AgingAwareMapper(max_candidates={self.max_candidates})"
