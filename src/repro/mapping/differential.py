"""Differential-pair weight mapping.

The paper maps signed weights onto a *single* conductance per weight
with the affine Eq. (4).  Most fabricated accelerators instead use a
**differential pair**: two devices per weight on a positive and a
negative column, with

    w  =  (g_plus - g_minus) * w_scale / (g_max - g_min)

Zero weights sit at ``g_plus = g_minus = g_min`` (both devices at large
resistance), positive weights raise the plus arm, negative weights the
minus arm.  Compared with Eq. (4):

* twice the devices, but **no common-range coupling** between weights —
  each weight's representation is local;
* a quasi-normal distribution puts *most* devices near ``g_min``
  (large R), so differential arrays intrinsically program with low
  current — they get part of the skewed-training benefit for free,
  which is exactly why the comparison benchmark
  (``benchmarks/test_ext_differential.py``) is interesting.

:class:`DifferentialMappedNetwork` mirrors the
:class:`~repro.mapping.network.MappedNetwork` API surface (map / score /
gradient tuning / aging bookkeeping) so the tuner and lifetime engine
work unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.crossbar.tiling import TiledMatrix
from repro.device.config import DeviceConfig
from repro.exceptions import ConfigurationError, ShapeError
from repro.mapping.network import _layer_matrix, _matrix_to_kernel, clone_model
from repro.nn.model import Sequential
from repro.rng import SeedLike, ensure_rng, spawn_rng

ArrayLike = Union[float, np.ndarray]


class DifferentialPairMapping:
    """Bidirectional map between signed weights and conductance pairs."""

    def __init__(self, w_abs_max: float, g_min: float, g_max: float) -> None:
        if w_abs_max <= 0:
            raise ConfigurationError(f"w_abs_max must be > 0, got {w_abs_max}")
        if g_min <= 0 or g_max <= g_min:
            raise ConfigurationError(
                f"need 0 < g_min < g_max, got g_min={g_min}, g_max={g_max}"
            )
        self.w_abs_max = float(w_abs_max)
        self.g_min = float(g_min)
        self.g_max = float(g_max)

    @classmethod
    def from_weights(
        cls, weights: np.ndarray, g_min: float, g_max: float
    ) -> "DifferentialPairMapping":
        """Scale from the observed absolute-maximum weight."""
        w_abs = float(np.max(np.abs(weights)))
        return cls(w_abs if w_abs > 0 else 1.0, g_min, g_max)

    @property
    def slope(self) -> float:
        """d(g_plus - g_minus)/dw."""
        return (self.g_max - self.g_min) / self.w_abs_max

    def weight_to_conductances(self, w: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
        """Signed weights → (g_plus, g_minus), each in [g_min, g_max]."""
        w = np.clip(np.asarray(w, dtype=np.float64), -self.w_abs_max, self.w_abs_max)
        g_plus = self.g_min + self.slope * np.maximum(w, 0.0)
        g_minus = self.g_min + self.slope * np.maximum(-w, 0.0)
        return g_plus, g_minus

    def weight_to_resistances(self, w: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
        """Signed weights → (r_plus, r_minus) programming targets."""
        g_plus, g_minus = self.weight_to_conductances(w)
        return 1.0 / g_plus, 1.0 / g_minus

    def conductances_to_weight(
        self, g_plus: ArrayLike, g_minus: ArrayLike
    ) -> np.ndarray:
        """Invert: conductance pair → effective signed weight (unclipped)."""
        diff = np.asarray(g_plus, dtype=np.float64) - np.asarray(g_minus, dtype=np.float64)
        return diff / self.slope

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DifferentialPairMapping(w_abs_max={self.w_abs_max:.4g}, "
            f"g=[{self.g_min:.4g}, {self.g_max:.4g}])"
        )


class DifferentialMappedLayer:
    """One weighted layer stored as plus/minus device arrays."""

    def __init__(
        self,
        layer_index: int,
        layer,
        device_config: DeviceConfig,
        tile_rows: int,
        tile_cols: int,
        seed: SeedLike = None,
    ) -> None:
        self.layer_index = int(layer_index)
        self.layer = layer
        self.device_config = device_config
        matrix = _layer_matrix(layer)
        self.matrix_shape: Tuple[int, int] = matrix.shape
        rng = ensure_rng(seed)
        kwargs = dict(
            tile_rows=tile_rows, tile_cols=tile_cols, config=device_config
        )
        self.plus = TiledMatrix(*matrix.shape, seed=spawn_rng(rng, "plus"), **kwargs)
        self.minus = TiledMatrix(*matrix.shape, seed=spawn_rng(rng, "minus"), **kwargs)
        self.mapping: Optional[DifferentialPairMapping] = None

    def software_matrix(self) -> np.ndarray:
        return _layer_matrix(self.layer)

    def program(self, compensate_stuck: bool = False) -> None:
        """Map + program both arms (each device takes a pulse).

        With ``compensate_stuck=True`` (graceful degradation), pairs
        where exactly one arm is dead get a second pass: the healthy
        arm is retargeted so the pair *difference* still realizes the
        weight against the stuck arm's actual pinned conductance,
        clipped to ``[g_min, g_max]``.  Pairs with both arms dead are
        beyond repair and keep whatever they are stuck at.
        """
        self.mapping = DifferentialPairMapping.from_weights(
            self.software_matrix(), self.device_config.g_min, self.device_config.g_max
        )
        w = self.software_matrix()
        r_plus, r_minus = self.mapping.weight_to_resistances(w)
        self.plus.program(np.asarray(r_plus))
        self.minus.program(np.asarray(r_minus))
        if compensate_stuck:
            self._compensate_stuck(w)

    def _compensate_stuck(self, w: np.ndarray) -> None:
        """Retarget healthy arms of half-dead pairs (see :meth:`program`)."""
        assert self.mapping is not None
        dead_p = self.plus.dead_mask()
        dead_m = self.minus.dead_mask()
        slope = self.mapping.slope
        g_lo, g_hi = self.device_config.g_min, self.device_config.g_max
        fix_minus = dead_p & ~dead_m
        if fix_minus.any():
            g_p_stuck = 1.0 / self.plus.resistances()
            g_m_new = np.clip(g_p_stuck - w * slope, g_lo, g_hi)
            targets = np.where(fix_minus, 1.0 / g_m_new, self.minus.resistances())
            self.minus.program(targets)
        fix_plus = dead_m & ~dead_p
        if fix_plus.any():
            g_m_stuck = 1.0 / self.minus.resistances()
            g_p_new = np.clip(g_m_stuck + w * slope, g_lo, g_hi)
            targets = np.where(fix_plus, 1.0 / g_p_new, self.plus.resistances())
            self.plus.program(targets)

    def dead_device_mask(self) -> np.ndarray:
        """Pairs that can no longer represent their weight at all.

        A pair is only unrecoverable once *both* arms are dead — a
        single stuck arm can still be compensated by its partner.
        """
        return self.plus.dead_mask() & self.minus.dead_mask()

    def hardware_matrix(self) -> np.ndarray:
        if self.mapping is None:
            raise ConfigurationError("layer has never been programmed")
        g_plus = 1.0 / self.plus.read_resistances()
        g_minus = 1.0 / self.minus.read_resistances()
        return self.mapping.conductances_to_weight(g_plus, g_minus)

    def apply_gradient_signs(
        self, weight_grad: np.ndarray, threshold: float, step_fraction: float = 0.5
    ) -> int:
        """Eq. (5) tuning on the pair: raise one arm's conductance.

        To increase a weight, grow the plus arm; to decrease it, grow
        the minus arm.  (Growing is the reliable filament direction;
        periodic reprogramming resets saturated pairs.)
        """
        if weight_grad.shape != self.matrix_shape:
            raise ShapeError(
                f"grad shape {weight_grad.shape} != device matrix {self.matrix_shape}"
            )
        scale = float(np.max(np.abs(weight_grad)))
        if scale == 0.0:
            return 0
        active = np.abs(weight_grad) >= threshold * scale
        increase = active & (weight_grad < 0)  # want w up -> plus arm up
        decrease = active & (weight_grad > 0)  # want w down -> minus arm up
        self.plus.step_conductance(increase.astype(np.int64), fraction=step_fraction)
        self.minus.step_conductance(decrease.astype(np.int64), fraction=step_fraction)
        return int(active.sum())

    def total_pulses(self) -> int:
        return self.plus.pulse_totals() + self.minus.pulse_totals()

    def mean_stress_factor(self) -> float:
        """Mean per-pulse stress of the *programmed* state (both arms)."""
        r_all = np.concatenate(
            [self.plus.resistances().ravel(), self.minus.resistances().ravel()]
        )
        return float(np.mean(self.device_config.stress_factor(r_all)))

    def apply_drift(self, magnitude: float) -> None:
        self.plus.apply_drift(magnitude)
        self.minus.apply_drift(magnitude)


class DifferentialMappedNetwork:
    """A trained network on differential-pair hardware."""

    def __init__(
        self,
        model: Sequential,
        device_config: Optional[DeviceConfig] = None,
        tile_rows: int = 128,
        tile_cols: int = 128,
        seed: SeedLike = None,
    ) -> None:
        if not model.built:
            raise ConfigurationError("model must be built before mapping")
        self.model = model
        self.device_config = device_config if device_config is not None else DeviceConfig()
        rng = ensure_rng(seed)
        self.layers: List[DifferentialMappedLayer] = [
            DifferentialMappedLayer(
                idx,
                layer,
                self.device_config,
                tile_rows,
                tile_cols,
                seed=spawn_rng(rng, f"dlayer{idx}"),
            )
            for idx, layer in model.weighted_layers()
        ]
        self._scratch = clone_model(model)
        self._scratch.set_regularizers(None)

    def map_network(self, compensate_stuck: bool = False) -> None:
        """Program every layer's pair arrays."""
        for layer in self.layers:
            layer.program(compensate_stuck=compensate_stuck)

    def effective_model(self) -> Sequential:
        self._scratch.set_weights(self.model.get_weights())
        for layer in self.layers:
            kernel = _matrix_to_kernel(layer.hardware_matrix(), layer.layer)
            self._scratch.layers[layer.layer_index].params["W"][...] = kernel
        return self._scratch

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
        return self.effective_model().evaluate(x, y)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        return self.evaluate(x, y)[1]

    def gradient_sign_matrices(self, x: np.ndarray, y: np.ndarray) -> Dict[int, np.ndarray]:
        scratch = self.effective_model()
        pred = scratch.forward(np.asarray(x, dtype=np.float64), training=False)
        scratch.backward(scratch.loss.gradient(pred, np.asarray(y, dtype=np.float64)))
        out: Dict[int, np.ndarray] = {}
        for layer in self.layers:
            grad_kernel = scratch.layers[layer.layer_index].grads["W"]
            out[layer.layer_index] = (
                grad_kernel.copy()
                if grad_kernel.ndim == 2
                else grad_kernel.reshape(grad_kernel.shape[0], -1).T.copy()
            )
        return out

    def total_pulses(self) -> int:
        return sum(layer.total_pulses() for layer in self.layers)

    def dead_fraction(self) -> float:
        total = sum(2 * l.matrix_shape[0] * l.matrix_shape[1] for l in self.layers)
        dead = sum(
            (l.plus.dead_fraction() + l.minus.dead_fraction())
            * l.matrix_shape[0]
            * l.matrix_shape[1]
            for l in self.layers
        )
        return float(dead / total) if total else 0.0

    def apply_drift(self, magnitude: float) -> None:
        for layer in self.layers:
            layer.apply_drift(magnitude)

    def mean_stress_factor(self) -> float:
        """Device-count-weighted mean per-pulse stress across layers."""
        weights = [2 * l.matrix_shape[0] * l.matrix_shape[1] for l in self.layers]
        values = [l.mean_stress_factor() for l in self.layers]
        return float(np.average(values, weights=weights))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DifferentialMappedNetwork(layers={len(self.layers)})"
