"""Software prediction of mapping + quantization effects (Fig. 3/6).

These helpers answer "what will this weight matrix look like after the
resistance-domain round trip?" without programming a crossbar: map the
weights to resistances (Eq. 4), snap to the level grid (optionally
restricted to an aged window), and invert back to weights.  The
analysis benchmarks and the aging-aware range selection both use this
prediction.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.device.levels import LevelGrid
from repro.mapping.linear import LinearWeightMapping

ArrayLike = Union[float, np.ndarray]


def quantize_weights(
    weights: np.ndarray,
    mapping: LinearWeightMapping,
    grid: LevelGrid,
    aged_min: Optional[ArrayLike] = None,
    aged_max: Optional[ArrayLike] = None,
) -> np.ndarray:
    """Weights after the map → quantize (→ clip to aged window) → invert trip."""
    targets = mapping.weight_to_resistance(np.asarray(weights, dtype=np.float64))
    achieved = grid.quantize(targets, aged_min, aged_max)
    return np.asarray(mapping.resistance_to_weight(achieved))


def quantization_error(
    weights: np.ndarray,
    mapping: LinearWeightMapping,
    grid: LevelGrid,
    aged_min: Optional[ArrayLike] = None,
    aged_max: Optional[ArrayLike] = None,
) -> float:
    """RMS error between original and quantized weights.

    The paper's argument for skewed training predicts this error is
    *smaller* for a right-skewed distribution concentrated at small
    weights, because the conductance levels are densest there — the
    Fig. 3(c)/Fig. 6 effect.  The property-based tests assert this.
    """
    w = np.asarray(weights, dtype=np.float64)
    q = quantize_weights(w, mapping, grid, aged_min, aged_max)
    return float(np.sqrt(np.mean((w - q) ** 2)))
