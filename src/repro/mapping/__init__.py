"""Hardware mapping: trained weights → memristor conductances.

* :class:`LinearWeightMapping` — the paper's Eq. (4) affine map between
  the weight range ``[w_min, w_max]`` and the conductance range
  ``[g_min, g_max]`` (one common range per array so column currents sum
  linearly).
* :func:`quantize_weights` — software prediction of what a weight
  matrix looks like after the resistance-domain quantization round trip
  (Fig. 3), without touching a crossbar.
* :class:`FreshMapper` — the baseline policy: assume fresh windows.
* :class:`AgingAwareMapper` — the paper's Section IV-B policy: iterate
  candidate common upper bounds from the traced devices (Fig. 8) and
  keep the one with the best predicted classification accuracy.
* :class:`MappedNetwork` — maps every weighted layer of a trained
  :class:`~repro.nn.model.Sequential` onto tiled crossbars and runs
  inference/tuning against the simulated hardware.
"""

from repro.mapping.aging_aware import AgingAwareMapper, RangeSelection
from repro.mapping.differential import (
    DifferentialMappedLayer,
    DifferentialMappedNetwork,
    DifferentialPairMapping,
)
from repro.mapping.fresh import FreshMapper
from repro.mapping.linear import LinearWeightMapping
from repro.mapping.network import MappedLayer, MappedNetwork, clone_model
from repro.mapping.quantize import quantization_error, quantize_weights

__all__ = [
    "AgingAwareMapper",
    "DifferentialMappedLayer",
    "DifferentialMappedNetwork",
    "DifferentialPairMapping",
    "FreshMapper",
    "LinearWeightMapping",
    "MappedLayer",
    "MappedNetwork",
    "RangeSelection",
    "clone_model",
    "quantization_error",
    "quantize_weights",
]
