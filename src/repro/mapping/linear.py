"""Linear weight-to-conductance mapping — paper Eq. (4).

The mapping is affine in the *conductance* domain::

    g = (g_max - g_min) / (w_max - w_min) * (w - w_min) + g_min

so the largest weight maps to the largest conductance (smallest
resistance).  A common ``[g_min, g_max]`` range is used for a whole
array because the column currents must sum linearly.

The induced map in the *resistance* domain is the reciprocal, which is
what the programming circuitry actually targets (Section II-B: "the
resistances are usually programmed instead").
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import ConfigurationError

ArrayLike = Union[float, np.ndarray]


class LinearWeightMapping:
    """Bidirectional affine map between weights and conductances."""

    def __init__(self, w_min: float, w_max: float, g_min: float, g_max: float) -> None:
        if w_max <= w_min:
            raise ConfigurationError(f"need w_max > w_min, got {w_max} <= {w_min}")
        if g_min <= 0 or g_max <= g_min:
            raise ConfigurationError(
                f"need 0 < g_min < g_max, got g_min={g_min}, g_max={g_max}"
            )
        self.w_min = float(w_min)
        self.w_max = float(w_max)
        self.g_min = float(g_min)
        self.g_max = float(g_max)

    @classmethod
    def from_weights(
        cls, weights: np.ndarray, g_min: float, g_max: float
    ) -> "LinearWeightMapping":
        """Build the map from the observed weight range of ``weights``.

        Degenerate (constant) weight matrices get a symmetric ±1 range
        so the map stays invertible.
        """
        w = np.asarray(weights, dtype=np.float64)
        w_min, w_max = float(w.min()), float(w.max())
        if w_max <= w_min:
            w_min, w_max = w_min - 1.0, w_max + 1.0
        return cls(w_min, w_max, g_min, g_max)

    @classmethod
    def from_resistance_range(
        cls, weights: np.ndarray, r_min: float, r_max: float
    ) -> "LinearWeightMapping":
        """Build from a resistance window (``g = 1/r``)."""
        if r_min <= 0 or r_max <= r_min:
            raise ConfigurationError(f"invalid resistance range [{r_min}, {r_max}]")
        return cls.from_weights(weights, g_min=1.0 / r_max, g_max=1.0 / r_min)

    # -- forward -------------------------------------------------------
    @property
    def slope(self) -> float:
        """dg/dw of the affine map (always positive)."""
        return (self.g_max - self.g_min) / (self.w_max - self.w_min)

    def weight_to_conductance(self, w: ArrayLike) -> ArrayLike:
        """Eq. (4): weights → target conductances (clipped to range)."""
        w = np.clip(np.asarray(w, dtype=np.float64), self.w_min, self.w_max)
        g = self.slope * (w - self.w_min) + self.g_min
        return float(g) if np.isscalar(w) or g.ndim == 0 else g

    def weight_to_resistance(self, w: ArrayLike) -> ArrayLike:
        """Weights → target resistances (what gets programmed)."""
        g = self.weight_to_conductance(w)
        return 1.0 / g

    # -- inverse -----------------------------------------------------------
    def conductance_to_weight(self, g: ArrayLike) -> ArrayLike:
        """Invert Eq. (4): achieved conductances → effective weights.

        Deliberately *not* clipped: an aged device stuck outside the
        nominal conductance range produces an out-of-range effective
        weight, which is exactly the accuracy-degradation mechanism the
        paper describes.
        """
        g = np.asarray(g, dtype=np.float64)
        w = (g - self.g_min) / self.slope + self.w_min
        return float(w) if w.ndim == 0 else w

    def resistance_to_weight(self, r: ArrayLike) -> ArrayLike:
        """Achieved resistances → effective weights."""
        r = np.asarray(r, dtype=np.float64)
        return self.conductance_to_weight(1.0 / r)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinearWeightMapping(w=[{self.w_min:.4g}, {self.w_max:.4g}], "
            f"g=[{self.g_min:.4g}, {self.g_max:.4g}])"
        )
