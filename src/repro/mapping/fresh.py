"""Baseline mapping policy: assume fresh device windows.

This is what the paper's T+T and ST+T scenarios use: the weights are
mapped onto the *nominal fresh* resistance range regardless of how aged
the array actually is.  Early in life this is exact; late in life the
aged windows no longer contain the high-resistance targets, the achieved
conductances deviate, and online tuning has to burn many iterations (and
pulses) to recover — the failure spiral of Section III.
"""

from __future__ import annotations

from typing import Tuple


class FreshMapper:
    """Select the nominal fresh window as the common mapping range."""

    name = "fresh"

    def select_range(self, layer) -> Tuple[float, float]:
        """Common resistance range for ``layer`` (a MappedLayer)."""
        cfg = layer.device_config
        return cfg.r_min, cfg.r_max

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "FreshMapper()"
