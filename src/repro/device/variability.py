"""Device-to-device variability of the fresh resistance window.

Fabricated memristor arrays show lognormal spread in both switching
bounds.  :class:`DeviceVariability` samples per-device fresh
``(r_min, r_max)`` pairs around the nominal window; the crossbar applies
it once at construction so two crossbars built with the same seed are
identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class DeviceVariability:
    """Lognormal spread parameters (sigma of ln R) for the fresh bounds.

    ``sigma_min``/``sigma_max`` are the lognormal shape parameters for
    the lower/upper bound.  ``min_window_ratio`` guards against sampled
    windows collapsing: each device keeps at least this fraction of the
    nominal window width.
    """

    sigma_min: float = 0.05
    sigma_max: float = 0.05
    min_window_ratio: float = 0.2

    def __post_init__(self) -> None:
        if self.sigma_min < 0 or self.sigma_max < 0:
            raise ConfigurationError("variability sigmas must be >= 0")
        if not 0.0 < self.min_window_ratio <= 1.0:
            raise ConfigurationError(
                f"min_window_ratio must be in (0, 1], got {self.min_window_ratio}"
            )

    def sample_bounds(
        self,
        r_min: float,
        r_max: float,
        shape: Tuple[int, ...],
        seed: SeedLike = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample per-device fresh ``(r_min, r_max)`` arrays of ``shape``."""
        rng = ensure_rng(seed)
        lo = r_min * rng.lognormal(0.0, self.sigma_min, size=shape)
        hi = r_max * rng.lognormal(0.0, self.sigma_max, size=shape)
        floor = lo + self.min_window_ratio * (r_max - r_min)
        hi = np.maximum(hi, floor)
        return lo, hi
