"""Quantized programming levels — paper Section II-B and Fig. 3.

Programming circuitry discretizes the *resistance* range into a fixed
number of uniformly spaced levels (32 in the paper's ref [14], 64 in
[15]).  Because conductance is the reciprocal of resistance, the induced
conductance levels are **not** uniform: they crowd towards small
conductances (large resistances).  The skewed training exploits exactly
this crowding — small weights land where levels are dense, so they
quantize more accurately.

Levels are defined on the *fresh* window and keep their identity as the
device ages: aging removes levels that fall outside the aged window
(mostly from the top, Fig. 4), it does not re-space the survivors.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError

ArrayLike = Union[float, np.ndarray]


class LevelGrid:
    """Uniform resistance levels on ``[r_min, r_max]`` with ``n_levels`` points.

    Level 0 is ``r_min`` (highest conductance), level ``n_levels - 1``
    is ``r_max`` (lowest conductance), matching the paper's bottom-up
    numbering in Fig. 4.
    """

    def __init__(self, r_min: float, r_max: float, n_levels: int = 32) -> None:
        if r_min <= 0:
            raise ConfigurationError(f"r_min must be > 0, got {r_min}")
        if r_max <= r_min:
            raise ConfigurationError(f"need r_max > r_min, got {r_max} <= {r_min}")
        if n_levels < 2:
            raise ConfigurationError(f"need >= 2 levels, got {n_levels}")
        self.r_min = float(r_min)
        self.r_max = float(r_max)
        self.n_levels = int(n_levels)
        self._levels = np.linspace(self.r_min, self.r_max, self.n_levels)

    # -- grids ------------------------------------------------------------
    @property
    def resistance_levels(self) -> np.ndarray:
        """Uniformly spaced resistance levels (read-only copy)."""
        return self._levels.copy()

    @property
    def conductance_levels(self) -> np.ndarray:
        """Reciprocal conductance levels (non-uniform, descending)."""
        return 1.0 / self._levels

    @property
    def step(self) -> float:
        """Spacing between adjacent resistance levels."""
        return (self.r_max - self.r_min) / (self.n_levels - 1)

    # -- quantization -------------------------------------------------------
    def index_of(self, resistance: ArrayLike) -> Union[int, np.ndarray]:
        """Nearest level index for ``resistance`` (clipped to the grid)."""
        r = np.asarray(resistance, dtype=np.float64)
        idx = np.rint((r - self.r_min) / self.step).astype(np.int64)
        idx = np.clip(idx, 0, self.n_levels - 1)
        return int(idx) if np.isscalar(resistance) else idx

    def value_of(self, index: Union[int, np.ndarray]) -> ArrayLike:
        """Resistance value of level ``index``."""
        idx = np.clip(np.asarray(index, dtype=np.int64), 0, self.n_levels - 1)
        # Clamp to r_max: r_min + (n-1)*step can exceed r_max by float
        # epsilon, which would wrongly trip window checks downstream.
        out = np.minimum(self.r_min + idx * self.step, self.r_max)
        return float(out) if np.isscalar(index) else out

    def quantize(
        self,
        resistance: ArrayLike,
        aged_min: Optional[ArrayLike] = None,
        aged_max: Optional[ArrayLike] = None,
    ) -> ArrayLike:
        """Snap ``resistance`` to the nearest *usable* level.

        Without aged bounds this is plain fresh-grid quantization.  With
        aged bounds, the target is first clipped into the aged window
        and then snapped to the nearest fresh-grid level that still lies
        inside the window — the paper's "a programming attempt to set
        Level 7 ... can only end up with Level 2" behaviour.  If no
        fresh level survives inside the window, the clipped analog value
        itself is returned (a degenerate, near-dead device).
        """
        r = np.asarray(resistance, dtype=np.float64)
        lo = self.r_min if aged_min is None else np.asarray(aged_min, dtype=np.float64)
        hi = self.r_max if aged_max is None else np.asarray(aged_max, dtype=np.float64)
        clipped = np.clip(r, lo, hi)
        snapped = self.value_of(self.index_of(clipped))
        # Snapping may step outside the aged window; push back inside
        # (with float tolerance so exact-boundary levels stay put).
        tol = 1e-9 * self.step
        too_high = snapped > hi + tol
        too_low = snapped < lo - tol
        if np.any(too_high) or np.any(too_low):
            snapped = np.where(too_high, snapped - self.step, snapped)
            snapped = np.where(too_low, snapped + self.step, snapped)
            # A window narrower than one step has no usable level: fall
            # back to the clipped analog value.
            invalid = (snapped > hi) | (snapped < lo)
            snapped = np.where(invalid, clipped, snapped)
        return float(snapped) if np.isscalar(resistance) else snapped

    def usable_levels(self, aged_min: float, aged_max: float) -> np.ndarray:
        """Fresh-grid level values that survive inside the aged window."""
        mask = (self._levels >= aged_min) & (self._levels <= aged_max)
        return self._levels[mask]

    def usable_count(
        self, aged_min: ArrayLike, aged_max: ArrayLike
    ) -> Union[int, np.ndarray]:
        """Number of surviving levels (vectorized over aged bounds)."""
        lo = np.asarray(aged_min, dtype=np.float64)
        hi = np.asarray(aged_max, dtype=np.float64)
        first = np.ceil((np.maximum(lo, self.r_min) - self.r_min) / self.step - 1e-12)
        last = np.floor((np.minimum(hi, self.r_max) - self.r_min) / self.step + 1e-12)
        count = np.maximum(0, last - first + 1).astype(np.int64)
        count = np.where(hi < lo, 0, count)
        return int(count) if np.isscalar(aged_min) else count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LevelGrid(r_min={self.r_min:g}, r_max={self.r_max:g}, "
            f"n_levels={self.n_levels})"
        )
