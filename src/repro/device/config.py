"""Device configuration shared by cells, crossbars and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.device.aging import AgingParams, ArrheniusAging
from repro.device.levels import LevelGrid
from repro.device.variability import DeviceVariability
from repro.exceptions import ConfigurationError


@dataclass
class DeviceConfig:
    """Everything needed to instantiate memristors and crossbars.

    Defaults model a HfOx-class RRAM cell: a 10 kΩ–100 kΩ window,
    32 uniformly spaced resistance levels, 1 µs programming pulses at
    300 K, and an endurance of ``pulses_to_collapse`` pulses before the
    window fully closes (used to calibrate the Arrhenius prefactors —
    the paper publishes only the functional form, see
    ``repro.device.aging``).
    """

    r_min: float = 1e4
    r_max: float = 1e5
    n_levels: int = 32
    pulse_width: float = 1e-6
    temperature: float = 300.0
    pulses_to_collapse: float = 2e4
    min_bound_fraction: float = 0.25
    activation_energy: float = 0.4
    time_exponent: float = 1.0
    #: Current-dependence of aging stress: a programming pulse applied
    #: while the device sits at resistance R contributes
    #: ``pulse_width * (r_min / R) ** current_aging_exponent`` seconds
    #: of stress.  At fixed programming voltage the dissipated power is
    #: V^2/R, and filamentary endurance degradation is superlinear in
    #: the dissipated power (field/temperature acceleration, refs [17],
    #: [18] of the paper), so exponent 2 is the default: devices
    #: programmed to large resistances (small conductances) age much
    #: slower.  This is the mechanism the skewed training exploits
    #: (paper Section IV-A: "By pushing the conductances of memristors
    #: towards small values, the current flowing through memristors can
    #: be reduced to alleviate the aging effect").  Set 0 to make every
    #: pulse equally stressful.
    current_aging_exponent: float = 2.0
    #: Write noise: std-dev of programming error as a fraction of one
    #: level step (set 0 for deterministic programming).
    write_noise: float = 0.1
    #: Read noise: relative std-dev of a resistance read-out.
    read_noise: float = 0.0
    variability: Optional[DeviceVariability] = field(default=None)
    #: Explicit aging parameters; when None they are calibrated from
    #: ``pulses_to_collapse``.
    aging_params: Optional[AgingParams] = field(default=None)

    def __post_init__(self) -> None:
        if self.r_min <= 0 or self.r_max <= self.r_min:
            raise ConfigurationError(
                f"need 0 < r_min < r_max, got r_min={self.r_min}, r_max={self.r_max}"
            )
        if self.n_levels < 2:
            raise ConfigurationError(f"n_levels must be >= 2, got {self.n_levels}")
        if self.pulse_width <= 0:
            raise ConfigurationError(f"pulse_width must be > 0, got {self.pulse_width}")
        if self.temperature <= 0:
            raise ConfigurationError(f"temperature must be > 0, got {self.temperature}")
        if self.write_noise < 0 or self.read_noise < 0:
            raise ConfigurationError("noise levels must be >= 0")
        if self.current_aging_exponent < 0:
            raise ConfigurationError(
                f"current_aging_exponent must be >= 0, got {self.current_aging_exponent}"
            )

    def stress_factor(self, resistance):
        """Relative aging stress of one pulse at ``resistance``.

        Normalized to 1.0 at the fresh minimum resistance (maximum
        programming current); vectorized over arrays.
        """
        r = np.maximum(np.asarray(resistance, dtype=np.float64), 1.0)
        factor = (self.r_min / r) ** self.current_aging_exponent
        return float(factor) if np.isscalar(resistance) else factor

    @property
    def g_min(self) -> float:
        """Minimum conductance (at ``r_max``)."""
        return 1.0 / self.r_max

    @property
    def g_max(self) -> float:
        """Maximum conductance (at ``r_min``)."""
        return 1.0 / self.r_min

    def make_level_grid(self) -> LevelGrid:
        """Fresh-window level grid for this device class."""
        return LevelGrid(self.r_min, self.r_max, self.n_levels)

    def make_aging_model(self) -> ArrheniusAging:
        """Aging evaluator (calibrated if no explicit params given)."""
        params = self.aging_params
        if params is None:
            params = AgingParams.calibrated(
                self.r_min,
                self.r_max,
                pulses_to_collapse=self.pulses_to_collapse,
                pulse_width=self.pulse_width,
                temperature=self.temperature,
                min_bound_fraction=self.min_bound_fraction,
                activation_energy=self.activation_energy,
                time_exponent=self.time_exponent,
            )
        return ArrheniusAging(params)
