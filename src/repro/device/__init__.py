"""Memristor device models.

This package implements the physical substrate of the paper:

* :class:`ArrheniusAging` — the Eq. (6)–(7) endurance-degradation model.
  Every programming pulse adds stress time; the valid resistance window
  ``[R_min, R_max]`` shrinks (both bounds decrease, the upper bound
  faster), exactly the Fig. 4 scenario.
* :class:`LevelGrid` — uniformly spaced *resistance* levels whose
  reciprocal conductance levels crowd towards small conductances
  (Fig. 3), the asymmetry the skewed training exploits.
* :class:`Memristor` — a single programmable cell with aging, write and
  read noise; used directly in unit tests and as the traced
  representative device.
* :class:`DeviceVariability` — lognormal device-to-device spread of the
  fresh resistance window.

Array-oriented helpers mirror the scalar API so the crossbar simulator
can age thousands of devices without Python-level loops.
"""

from repro.device.aging import AgingParams, ArrheniusAging, BOLTZMANN_EV
from repro.device.config import DeviceConfig
from repro.device.levels import LevelGrid
from repro.device.memristor import Memristor
from repro.device.variability import DeviceVariability

__all__ = [
    "AgingParams",
    "ArrheniusAging",
    "BOLTZMANN_EV",
    "DeviceConfig",
    "DeviceVariability",
    "LevelGrid",
    "Memristor",
]
