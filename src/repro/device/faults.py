"""Fabrication fault models for crossbar arrays.

Real memristor arrays ship with stuck-at defects: cells welded into
their low-resistance state (stuck-at-LRS, a short through the filament)
or frozen at high resistance (stuck-at-HRS, a never-formed filament).
The paper assumes defect-free arrays; this module adds the standard
fault model so the robustness of the mapping/tuning pipeline can be
quantified (``benchmarks/test_ext_fault_tolerance.py``).

A fault map is sampled once per array and applied by pinning the
affected devices: their resistance is forced to the stuck value and
they ignore programming (implemented by exhausting their endurance so
the crossbar's dead-device logic takes over, plus pinning the value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.crossbar.crossbar import Crossbar
from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class FaultModel:
    """Stuck-at fault rates (fractions of all devices).

    ``rate_lrs`` devices are welded at the (aged-window) minimum
    resistance, ``rate_hrs`` at the maximum.  Rates are independent;
    their sum must stay below 1.
    """

    rate_lrs: float = 0.0
    rate_hrs: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_lrs < 0 or self.rate_hrs < 0:
            raise ConfigurationError("fault rates must be >= 0")
        if self.rate_lrs + self.rate_hrs >= 1.0:
            raise ConfigurationError(
                f"total fault rate must be < 1, got {self.rate_lrs + self.rate_hrs}"
            )

    @property
    def total_rate(self) -> float:
        return self.rate_lrs + self.rate_hrs

    def sample_masks(
        self, shape: Tuple[int, int], seed: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Boolean (stuck_lrs, stuck_hrs) masks for an array of ``shape``."""
        rng = ensure_rng(seed)
        u = rng.random(shape)
        stuck_lrs = u < self.rate_lrs
        stuck_hrs = (u >= self.rate_lrs) & (u < self.total_rate)
        return stuck_lrs, stuck_hrs


def inject_faults(
    crossbar: Crossbar, model: FaultModel, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Pin stuck devices in ``crossbar`` according to ``model``.

    Stuck devices are clamped to the extreme of their fresh window and
    their endurance is exhausted (their stress time jumps past
    window collapse), so every later programming/tuning call skips them
    via the dead-device mask.  Returns the two fault masks.
    """
    stuck_lrs, stuck_hrs = model.sample_masks(crossbar.shape, seed)
    crossbar.resistance = np.where(
        stuck_lrs, crossbar.r_fresh_min, crossbar.resistance
    )
    crossbar.resistance = np.where(
        stuck_hrs, crossbar.r_fresh_max, crossbar.resistance
    )
    any_fault = stuck_lrs | stuck_hrs
    collapse_time = crossbar.aging.stress_time_to_collapse(
        float(np.min(crossbar.r_fresh_min)),
        float(np.max(crossbar.r_fresh_max)),
        crossbar.config.temperature,
    )
    if not np.isfinite(collapse_time):
        raise ConfigurationError(
            "cannot pin faults: aging model never collapses (no endurance limit)"
        )
    crossbar.stress_time = np.where(
        any_fault, 2.0 * collapse_time, crossbar.stress_time
    )
    # The resistance assignments above already bumped the state version;
    # mark again so the stress-time pinning (which changes aged windows,
    # hence future quantization) is its own visible state transition.
    # mark_state_dirty bumps the stress version too, dropping the cached
    # aged-bounds/dead-mask arrays (DESIGN.md §11) that the in-place
    # stress_time edit above would otherwise leave stale.
    crossbar.mark_state_dirty()
    return stuck_lrs, stuck_hrs


def inject_faults_network(network, model: FaultModel, seed: SeedLike = None) -> float:
    """Inject faults into every tile of a mapped network.

    Works on both single-device networks (layers expose ``tiles``) and
    differential-pair networks (layers expose ``plus``/``minus`` arm
    arrays).  Returns the realized overall fault fraction.
    """
    rng = ensure_rng(seed)
    faulty = 0
    total = 0
    for layer in network.layers:
        if hasattr(layer, "tiles"):
            tiled_matrices = [layer.tiles]
        else:
            tiled_matrices = [layer.plus, layer.minus]
        for tiled in tiled_matrices:
            for _rs, _cs, tile in tiled.iter_tiles():
                lrs, hrs = inject_faults(tile, model, rng)
                faulty += int(lrs.sum() + hrs.sum())
                total += tile.rows * tile.cols
    return faulty / total if total else 0.0
