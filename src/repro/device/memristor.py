"""Single memristor cell.

The crossbar simulator is array-based for speed, but a scalar cell is
the natural unit for device-level tests, for the traced *representative
memristors* of the aging-aware mapping, and for user-facing examples.
Both implementations share the same :class:`~repro.device.config.DeviceConfig`,
:class:`~repro.device.levels.LevelGrid` and
:class:`~repro.device.aging.ArrheniusAging`, so a cell and a crossbar
entry with identical histories report identical aged bounds.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.device.config import DeviceConfig
from repro.exceptions import ConfigurationError, DeviceError
from repro.rng import SeedLike, ensure_rng


class Memristor:
    """A programmable resistive cell with irreversible aging.

    Parameters
    ----------
    config:
        Device class parameters (window, levels, aging, noise).
    r_fresh_min, r_fresh_max:
        Per-device fresh bounds; default to the nominal config window
        (pass values sampled from
        :class:`~repro.device.variability.DeviceVariability` to model
        spread).
    seed:
        RNG for write/read noise.
    """

    def __init__(
        self,
        config: Optional[DeviceConfig] = None,
        r_fresh_min: Optional[float] = None,
        r_fresh_max: Optional[float] = None,
        seed: SeedLike = None,
    ) -> None:
        self.config = config if config is not None else DeviceConfig()
        self.r_fresh_min = float(r_fresh_min if r_fresh_min is not None else self.config.r_min)
        self.r_fresh_max = float(r_fresh_max if r_fresh_max is not None else self.config.r_max)
        if self.r_fresh_min <= 0 or self.r_fresh_max <= self.r_fresh_min:
            raise ConfigurationError(
                f"invalid fresh bounds [{self.r_fresh_min}, {self.r_fresh_max}]"
            )
        self.grid = self.config.make_level_grid()
        self.aging = self.config.make_aging_model()
        self._rng = ensure_rng(seed)
        #: Number of programming pulses ever applied.
        self.pulse_count = 0
        #: Accumulated programming-stress time in seconds.
        self.stress_time = 0.0
        #: Currently programmed resistance (starts at the fresh maximum,
        #: i.e. the high-resistance state a fresh device wakes up in).
        self.resistance = self.r_fresh_max

    # -- aging state --------------------------------------------------------
    def aged_bounds(self) -> Tuple[float, float]:
        """Current ``(R_aged,min, R_aged,max)`` from Eq. (6)–(7)."""
        lo, hi = self.aging.aged_bounds(
            self.r_fresh_min, self.r_fresh_max, self.config.temperature, self.stress_time
        )
        return float(lo), float(hi)

    @property
    def is_dead(self) -> bool:
        """True once fewer than two quantized levels remain usable.

        With fewer than two levels the cell can no longer encode
        information; this is the per-device end-of-life criterion
        (array-level end-of-life is the tuning-divergence criterion of
        the lifetime engine).
        """
        lo, hi = self.aged_bounds()
        return int(self.grid.usable_count(lo, hi)) < 2

    def usable_levels(self) -> np.ndarray:
        """Fresh-grid levels still inside the aged window."""
        lo, hi = self.aged_bounds()
        return self.grid.usable_levels(lo, hi)

    # -- operations -----------------------------------------------------------
    def _stress(self, pulses: int, at_resistance: float) -> None:
        """Accrue ``pulses`` of stress at the given operating resistance.

        Stress per pulse scales with the programming current
        (``DeviceConfig.stress_factor``), so pulses at large resistance
        age the device less.
        """
        self.pulse_count += pulses
        factor = self.config.stress_factor(at_resistance)
        self.stress_time += pulses * self.config.pulse_width * factor

    def program(self, target_resistance: float, pulses: int = 1) -> float:
        """Program towards ``target_resistance`` with ``pulses`` pulses.

        The achieved resistance is the target clipped into the *aged*
        window, snapped to the nearest usable fresh-grid level, plus
        write noise.  Programming a dead device raises
        :class:`~repro.exceptions.DeviceError`.
        Returns the achieved resistance.
        """
        if target_resistance <= 0:
            raise ConfigurationError(f"target resistance must be > 0, got {target_resistance}")
        if pulses < 1:
            raise ConfigurationError(f"pulses must be >= 1, got {pulses}")
        if self.is_dead:
            raise DeviceError(
                f"device window collapsed after {self.pulse_count} pulses; cannot program"
            )
        self._stress(pulses, max(target_resistance, 0.1 * self.grid.r_min))
        lo, hi = self.aged_bounds()
        achieved = self.grid.quantize(target_resistance, lo, hi)
        if self.config.write_noise > 0:
            achieved += self._rng.normal(0.0, self.config.write_noise * self.grid.step)
            achieved = float(np.clip(achieved, lo, hi)) if hi > lo else lo
        self.resistance = float(achieved)
        return self.resistance

    def step_level(self, direction: int) -> float:
        """One tuning pulse moving one level up (+1) or down (-1).

        This is the hardware primitive of online tuning (Eq. (5)): the
        polarity of a constant-amplitude pulse moves the device roughly
        one quantized level.  Clipped to the aged window.
        """
        if direction not in (-1, 0, 1):
            raise ConfigurationError(f"direction must be -1, 0 or 1, got {direction}")
        if direction == 0:
            return self.resistance
        return self.program(self.resistance + direction * self.grid.step, pulses=1)

    def step_conductance(self, direction: int, fraction: float = 0.5) -> float:
        """One constant-amplitude tuning pulse in the conductance domain.

        ``direction`` +1 grows the filament (conductance up, resistance
        down), -1 shrinks it.  The increment is ``fraction`` of the mean
        conductance level spacing — the fine-grained Eq. (5) primitive
        (contrast :meth:`step_level`, the coarse mapping granularity).
        """
        if direction not in (-1, 0, 1):
            raise ConfigurationError(f"direction must be -1, 0 or 1, got {direction}")
        if fraction <= 0:
            raise ConfigurationError(f"fraction must be > 0, got {fraction}")
        if direction == 0:
            return self.resistance
        if self.is_dead:
            raise DeviceError(
                f"device window collapsed after {self.pulse_count} pulses; cannot program"
            )
        self._stress(1, self.resistance)
        g_step = fraction * (self.config.g_max - self.config.g_min) / (self.grid.n_levels - 1)
        g_new = 1.0 / self.resistance + direction * g_step
        if self.config.write_noise > 0:
            g_new += self._rng.normal(0.0, self.config.write_noise * g_step)
        lo, hi = self.aged_bounds()
        g_new = max(g_new, 1.0 / max(hi, 1.0))
        self.resistance = float(np.clip(1.0 / g_new, lo, hi))
        return self.resistance

    def read(self) -> float:
        """Read the programmed resistance (with read noise if configured)."""
        if self.config.read_noise <= 0:
            return self.resistance
        noisy = self.resistance * (1.0 + self._rng.normal(0.0, self.config.read_noise))
        return float(max(noisy, 1e-3))

    @property
    def conductance(self) -> float:
        """Programmed conductance ``1/R`` (noise-free)."""
        return 1.0 / self.resistance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.aged_bounds()
        return (
            f"Memristor(R={self.resistance:.3g}, window=[{lo:.3g}, {hi:.3g}], "
            f"pulses={self.pulse_count})"
        )
