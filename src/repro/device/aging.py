"""Arrhenius-based endurance (aging) model — paper Eq. (6)–(7).

The paper models the aged resistance window of a memristor as::

    R_aged,max = R_fresh,max - f(T, t)          (6)
    R_aged,min = R_fresh,min - g(T, t)          (7)

where ``T`` is temperature, ``t`` the accumulated programming-stress
time, and both aging functions are *Arrhenius-based* (its refs [17],
[18]) with parameters extracted from measurements.  We use the standard
thermally activated power-law form::

    f(T, t) = A_max * exp(-Ea_max / (kB * T)) * t**m_max
    g(T, t) = A_min * exp(-Ea_min / (kB * T)) * t**m_min

With ``f`` growing faster than ``g`` the window shrinks from the top:
high-resistance levels disappear first while the original lower bound
stays inside the aged window — the paper's common aging scenario
(Fig. 4, Section III).

Absolute constants are not published in the paper, so
:meth:`AgingParams.calibrated` derives the prefactors from an
interpretable target: the number of programming pulses at the reference
temperature after which the window has fully collapsed.  All lifetime
results downstream are reported as ratios, which are insensitive to this
absolute scale (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError

#: Boltzmann constant in eV/K.
BOLTZMANN_EV = 8.617333262e-5

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class AgingParams:
    """Parameters of the two Arrhenius aging functions ``f`` and ``g``.

    Attributes
    ----------
    prefactor_max, prefactor_min:
        ``A_max``/``A_min`` in ohm / s^m — scale of upper/lower bound
        degradation.
    activation_energy_max, activation_energy_min:
        Activation energies ``Ea`` in eV.
    time_exponent_max, time_exponent_min:
        Power-law exponents ``m`` on accumulated stress time.
    """

    prefactor_max: float
    prefactor_min: float
    activation_energy_max: float = 0.4
    activation_energy_min: float = 0.4
    time_exponent_max: float = 1.0
    time_exponent_min: float = 1.0

    def __post_init__(self) -> None:
        if self.prefactor_max < 0 or self.prefactor_min < 0:
            raise ConfigurationError("aging prefactors must be >= 0")
        if self.activation_energy_max < 0 or self.activation_energy_min < 0:
            raise ConfigurationError("activation energies must be >= 0")
        if self.time_exponent_max <= 0 or self.time_exponent_min <= 0:
            raise ConfigurationError("time exponents must be > 0")

    @classmethod
    def calibrated(
        cls,
        r_fresh_min: float,
        r_fresh_max: float,
        pulses_to_collapse: float,
        pulse_width: float = 1e-6,
        temperature: float = 300.0,
        min_bound_fraction: float = 0.25,
        activation_energy: float = 0.4,
        time_exponent: float = 1.0,
    ) -> "AgingParams":
        """Derive prefactors from an endurance target.

        After ``pulses_to_collapse`` pulses of ``pulse_width`` seconds at
        ``temperature``, the upper bound has dropped by the full fresh
        window (total collapse), while the lower bound has dropped by
        ``min_bound_fraction`` of the window (so the window closes from
        the top, as in Fig. 4).

        >>> p = AgingParams.calibrated(1e4, 1e5, pulses_to_collapse=1e5)
        >>> aging = ArrheniusAging(p)
        >>> t = 1e5 * 1e-6
        >>> abs(aging.degradation_max(300.0, t) - 9e4) < 1e-6
        True
        """
        if r_fresh_max <= r_fresh_min:
            raise ConfigurationError(
                f"need r_fresh_max > r_fresh_min, got {r_fresh_max} <= {r_fresh_min}"
            )
        if pulses_to_collapse <= 0 or pulse_width <= 0:
            raise ConfigurationError("pulses_to_collapse and pulse_width must be > 0")
        if not 0.0 <= min_bound_fraction < 1.0:
            raise ConfigurationError(
                f"min_bound_fraction must be in [0, 1), got {min_bound_fraction}"
            )
        window = r_fresh_max - r_fresh_min
        t_collapse = pulses_to_collapse * pulse_width
        arrhenius = np.exp(-activation_energy / (BOLTZMANN_EV * temperature))
        denom = arrhenius * t_collapse**time_exponent
        return cls(
            prefactor_max=window / denom,
            prefactor_min=min_bound_fraction * window / denom,
            activation_energy_max=activation_energy,
            activation_energy_min=activation_energy,
            time_exponent_max=time_exponent,
            time_exponent_min=time_exponent,
        )


class ArrheniusAging:
    """Evaluator for the aged resistance window (vectorized).

    All methods accept scalar or array ``stress_time`` so the crossbar
    simulator can age a whole array in one call.
    """

    def __init__(self, params: AgingParams) -> None:
        self.params = params

    def _rate(self, prefactor: float, ea: float, temperature: float) -> float:
        if temperature <= 0:
            raise ConfigurationError(f"temperature must be > 0 K, got {temperature}")
        return prefactor * float(np.exp(-ea / (BOLTZMANN_EV * temperature)))

    def degradation_max(self, temperature: float, stress_time: ArrayLike) -> ArrayLike:
        """``f(T, t)`` — drop of the upper resistance bound (Eq. 6)."""
        p = self.params
        scalar = np.isscalar(stress_time)
        t = np.maximum(np.asarray(stress_time, dtype=np.float64), 0.0)
        if scalar:
            # Route through a 1-element array: numpy's vectorized pow
            # can differ from the 0-d/scalar path in the last ulp, and
            # the scalar result must match the array path bit for bit.
            t = t.reshape(1)
        out = self._rate(p.prefactor_max, p.activation_energy_max, temperature) * (
            t**p.time_exponent_max
        )
        return float(out[0]) if scalar else out

    def degradation_min(self, temperature: float, stress_time: ArrayLike) -> ArrayLike:
        """``g(T, t)`` — drop of the lower resistance bound (Eq. 7)."""
        p = self.params
        scalar = np.isscalar(stress_time)
        t = np.maximum(np.asarray(stress_time, dtype=np.float64), 0.0)
        if scalar:
            t = t.reshape(1)
        out = self._rate(p.prefactor_min, p.activation_energy_min, temperature) * (
            t**p.time_exponent_min
        )
        return float(out[0]) if scalar else out

    def aged_bounds(
        self,
        r_fresh_min: ArrayLike,
        r_fresh_max: ArrayLike,
        temperature: float,
        stress_time: ArrayLike,
    ) -> Tuple[ArrayLike, ArrayLike]:
        """``(R_aged,min, R_aged,max)`` for the given stress history.

        The window is floored at zero width: once
        ``R_aged,max <= R_aged,min`` the device is dead (its window has
        collapsed) and both bounds are reported equal — callers detect
        death via ``aged_max <= aged_min``.
        """
        aged_max = np.asarray(r_fresh_max, dtype=np.float64) - self.degradation_max(
            temperature, stress_time
        )
        aged_min = np.asarray(r_fresh_min, dtype=np.float64) - self.degradation_min(
            temperature, stress_time
        )
        # Physical floor: the filament cannot reach zero resistance; a
        # strictly positive floor also keeps conductance (1/R) finite.
        aged_min = np.maximum(aged_min, 1.0)
        aged_max = np.maximum(aged_max, aged_min)
        if np.isscalar(stress_time) and np.isscalar(r_fresh_min):
            return float(aged_min), float(aged_max)
        return aged_min, aged_max

    def stress_time_to_collapse(
        self, r_fresh_min: float, r_fresh_max: float, temperature: float
    ) -> float:
        """Stress time at which the window width reaches zero.

        Solves ``f(T,t) - g(T,t) = window`` analytically when both
        exponents match; otherwise by bisection.
        """
        p = self.params
        window = r_fresh_max - r_fresh_min
        if window <= 0:
            return 0.0
        rate_f = self._rate(p.prefactor_max, p.activation_energy_max, temperature)
        rate_g = self._rate(p.prefactor_min, p.activation_energy_min, temperature)
        if p.time_exponent_max == p.time_exponent_min:
            net = rate_f - rate_g
            if net <= 0:
                return float("inf")
            return float((window / net) ** (1.0 / p.time_exponent_max))
        # General case: bisection on a monotone-after-some-point function.
        def width_drop(t: float) -> float:
            return rate_f * t**p.time_exponent_max - rate_g * t**p.time_exponent_min

        lo, hi = 0.0, 1.0
        for _ in range(200):
            if width_drop(hi) >= window:
                break
            hi *= 2.0
        else:
            return float("inf")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if width_drop(mid) < window:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
