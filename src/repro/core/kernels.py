"""Hot-path kernels: cached sparse nodal factorization, batched solves.

The exact IR-drop model of :mod:`repro.crossbar.parasitics` solves the
full resistive network of a crossbar.  The nodal matrix ``A`` depends
only on the conductance state ``g`` and the wire resistance — **not**
on the input vector; only the right-hand side does.  The pre-kernel
implementation nevertheless assembled and sparse-factorized ``A`` once
per input vector, which made the exact path unusable in-loop.

:class:`NodalSolver` restructures the computation around that
observation:

1. assemble ``A`` once per conductance state (vectorized COO stamps);
2. factorize once with :func:`scipy.sparse.linalg.splu`;
3. back-substitute the ``rows`` unit drive vectors as one multi-RHS
   solve, yielding the dense **transfer matrix** ``T`` with
   ``I_out = v_in @ T`` (the network is linear, so ``T`` captures it
   exactly);
4. answer every subsequent read — any batch size — with one dense
   matrix product.

The product is evaluated with :func:`numpy.einsum` rather than BLAS
``@``: einsum computes each output element as an independent reduction,
so the result of a batched solve is **bit-identical** to solving the
same vectors one at a time (BLAS gemm re-blocks by batch size and is
not row-stable).  That determinism is what lets the equivalence tests
and ``benchmarks/run_kernel_bench.py`` assert exact equality across
the serial, batched, and cached modes.  For the array sizes this
repo simulates (≤ 256 rows) the einsum cost is negligible against a
single sparse refactorization.

:class:`FactorizationCache` pairs a solver with the owning crossbar's
``state_version`` (see :class:`repro.crossbar.crossbar.Crossbar`): a
read between reprogramming events reuses the factorization, a write
invalidates it.  The module-level :func:`set_cache_enabled` switch
exists so benchmarks and regression tests can prove cached and
uncached paths agree bit for bit.

The write side of the lifetime loop — batched pulse programming, the
read-reuse memoization of :class:`repro.mapping.network.MappedNetwork`,
and the ``REPRO_SCALAR_TUNER`` reference path — lives in
:mod:`repro.core.fastpath` and DESIGN.md §11; its value caches honour
the same :func:`cache_enabled` switch as this module.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.backend import (
    DeviceArrayCache,
    active as active_backend,
    host_sparse as sparse,
    hxp,
    sparse_lu as splu,
)
from repro.core.profiling import PROFILER
from repro.exceptions import ConfigurationError, ShapeError

_CACHE_ENABLED = True


def set_cache_enabled(enabled: bool) -> bool:
    """Globally enable/disable kernel state caches; returns the prior value.

    Disabling forces every conductance read and nodal solve to
    recompute from scratch — the reference behavior that benchmarks
    and golden tests compare the cached paths against.
    """
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return previous


def cache_enabled() -> bool:
    """Whether kernel state caches are currently active."""
    return _CACHE_ENABLED


def assemble_nodal_matrix(g: hxp.ndarray, g_wire: float) -> sparse.csc_matrix:
    """Vectorized assembly of the nodal matrix ``A`` (no RHS).

    Same stamps as the per-cell loop reference in
    :func:`repro.crossbar.parasitics._assemble_nodal_system_loop`:
    every cell bridges its wordline and bitline nodes through its
    conductance, wordline nodes chain towards the driver column
    (j = 0), bitline nodes chain towards the TIA row (i = rows-1), and
    the driver/TIA terminals stamp ``g_wire`` onto the diagonal.  All
    coordinates are built as whole index grids and fed to one COO
    constructor (duplicates sum on conversion).
    """
    rows, cols = g.shape
    n = 2 * rows * cols
    w_idx = hxp.arange(rows)[:, None] * cols + hxp.arange(cols)[None, :]
    b_idx = rows * cols + w_idx

    # Conductance stamps between node pairs (a, b): four COO entries
    # each — (a,a,+v), (b,b,+v), (a,b,-v), (b,a,-v).
    pair_a = [w_idx.ravel()]                 # memristor bridges the planes
    pair_b = [b_idx.ravel()]
    pair_v = [g.ravel()]
    if cols > 1:                             # wordline chain towards j = 0
        pair_a.append(w_idx[:, 1:].ravel())
        pair_b.append(w_idx[:, :-1].ravel())
        pair_v.append(hxp.full((cols - 1) * rows, g_wire, dtype=hxp.float64))
    if rows > 1:                             # bitline chain towards i = rows-1
        pair_a.append(b_idx[:-1, :].ravel())
        pair_b.append(b_idx[1:, :].ravel())
        pair_v.append(hxp.full((rows - 1) * cols, g_wire, dtype=hxp.float64))
    a = hxp.concatenate(pair_a)
    b = hxp.concatenate(pair_b)
    v = hxp.concatenate(pair_v)

    # Source terminals: wordline drivers at j = 0, TIA virtual grounds
    # at i = rows-1 — diagonal-only entries.
    src = hxp.concatenate([w_idx[:, 0], b_idx[-1, :]])
    coo_rows = hxp.concatenate([a, b, a, b, src])
    coo_cols = hxp.concatenate([a, b, b, a, src])
    coo_vals = hxp.concatenate([v, v, -v, -v, hxp.full(src.size, g_wire, dtype=hxp.float64)])
    return sparse.coo_matrix(
        (coo_vals, (coo_rows, coo_cols)), shape=(n, n)
    ).tocsc()


class NodalSolver:
    """Exact IR-drop solver for one conductance state of a crossbar.

    Construction pays the assembly + factorization + transfer-matrix
    cost once; :meth:`solve` then answers arbitrary input batches with
    a single dense product.  ``r_wire = 0`` degenerates to the ideal
    crossbar (``T = g``) with no sparse work at all.
    """

    def __init__(self, conductances: hxp.ndarray, r_wire: float) -> None:
        g = hxp.asarray(conductances, dtype=hxp.float64)
        if g.ndim != 2:
            raise ShapeError(f"conductances must be 2-D, got shape {g.shape}")
        if r_wire < 0:
            raise ConfigurationError(f"r_wire must be >= 0, got {r_wire}")
        self.rows, self.cols = g.shape
        self.r_wire = float(r_wire)
        if self.r_wire == 0.0:
            self._transfer = hxp.array(g)
        else:
            g_wire = 1.0 / self.r_wire
            n = 2 * self.rows * self.cols
            drive = hxp.arange(self.rows) * self.cols
            bottom = (
                self.rows * self.cols
                + (self.rows - 1) * self.cols
                + hxp.arange(self.cols)
            )
            with PROFILER.timer("kernels.factorize"):
                lu = splu(assemble_nodal_matrix(g, g_wire))
                # Transfer matrix: column k of E is the unit drive of
                # input k scaled by the driver conductance; the bottom
                # node voltages times g_wire are the TIA currents.
                unit_drives = hxp.zeros((n, self.rows), dtype=hxp.float64)
                unit_drives[drive, hxp.arange(self.rows)] = g_wire
                self._transfer = hxp.ascontiguousarray(
                    lu.solve(unit_drives)[bottom].T * g_wire
                )
            PROFILER.increment("kernels.factorizations")
        self._transfer.setflags(write=False)
        # Device-resident copy of the (immutable) transfer matrix; only
        # populated on accelerator backends, dropped from pickles.
        self._transfer_dev = DeviceArrayCache()

    @property
    def transfer_matrix(self) -> hxp.ndarray:
        """The dense ``(rows, cols)`` input→current map (read-only)."""
        return self._transfer

    def solve(self, v_in: hxp.ndarray) -> hxp.ndarray:
        """TIA currents for a single vector ``(rows,)`` or batch ``(b, rows)``.

        Batched results are bit-identical to per-vector results (the
        einsum reduction is row-stable; see module docstring).
        """
        v = hxp.asarray(v_in, dtype=hxp.float64)
        single = v.ndim == 1
        v2 = hxp.atleast_2d(v)
        if v2.ndim != 2 or v2.shape[-1] != self.rows:
            raise ShapeError(
                f"v_in must have shape ({self.rows},) or (batch, {self.rows}), "
                f"got {v.shape}"
            )
        PROFILER.increment("kernels.solves", v2.shape[0])
        bk = active_backend()
        if bk.is_host:
            # The golden path: einsum's row-stable reduction, verbatim.
            out = hxp.einsum("bi,ij->bj", v2, self._transfer)
        else:
            t_dev = self._transfer_dev.get(bk, 0, self._transfer)
            out = bk.to_numpy(bk.einsum("bi,ij->bj", v2, t_dev))
        return out[0] if single else out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NodalSolver({self.rows}x{self.cols}, r_wire={self.r_wire:g})"
        )


class FactorizationCache:
    """State-versioned cache of :class:`NodalSolver` objects.

    One slot per wire resistance, each tagged with the owning array's
    ``state_version`` at build time; a version mismatch (the array was
    reprogrammed, tuned, drifted, or fault-injected) rebuilds.  When
    :func:`cache_enabled` is off every lookup rebuilds, which the
    benchmarks use as the uncached reference.
    """

    def __init__(self) -> None:
        self._slots: Dict[float, Tuple[int, NodalSolver]] = {}

    def get(
        self,
        state_version: int,
        r_wire: float,
        build: Callable[[], NodalSolver],
    ) -> NodalSolver:
        """Return a solver valid for ``state_version``, building on miss."""
        if not _CACHE_ENABLED:
            PROFILER.increment("kernels.cache_bypassed")
            return build()
        cached = self._slots.get(r_wire)
        if cached is not None and cached[0] == state_version:
            PROFILER.increment("kernels.cache_hits")
            return cached[1]
        PROFILER.increment("kernels.cache_misses")
        solver = build()
        self._slots[r_wire] = (state_version, solver)
        return solver

    def invalidate(self) -> None:
        """Drop every cached factorization."""
        self._slots.clear()

    def __len__(self) -> int:
        return len(self._slots)
