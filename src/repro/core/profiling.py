"""Lightweight perf counters and timers for the hot-path kernels.

The kernel layer (factorization caching, batched nodal solves,
state-versioned conductance caching — see DESIGN.md §9) only earns its
complexity if the savings are *observable*.  This module provides a
process-local registry of named monotonic counters and wall-clock
timers with near-zero overhead (a dict update per event), JSON export,
and a delta-capture context manager used by the fault-campaign runner
to attribute work to individual scenario runs.

Design constraints:

* **Always on.**  Counters are cheap enough to leave enabled; there is
  no global "profiling mode" that would bifurcate the code paths under
  test from the code paths in production.
* **Process-local.**  Counters do not cross the
  :class:`~repro.core.executor.ParallelExecutor` process pool; a
  parent's snapshot after a fan-out reflects only parent-side work.
  Serial runs (``workers <= 1``) see everything.
* **No repro imports.**  This module is a leaf so any layer (device,
  crossbar, tuning, core) can import it without cycles.

Usage::

    from repro.core.profiling import PROFILER

    PROFILER.increment("kernels.factorizations")
    with PROFILER.timer("kernels.factorize"):
        lu = splu(matrix)
    print(PROFILER.render_text())

The CLI exposes the registry via ``--profile`` on ``run`` / ``compare``
/ ``campaign`` (print JSON to stdout, or write to a path).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


class PerfDelta:
    """Counter/timer deltas between two registry snapshots."""

    def __init__(
        self,
        counters: Dict[str, float],
        timers: Dict[str, Dict[str, float]],
        elapsed_s: float,
    ) -> None:
        self.counters = counters
        self.timers = timers
        self.elapsed_s = elapsed_s

    def to_dict(self) -> dict:
        return {
            "elapsed_s": self.elapsed_s,
            "counters": dict(self.counters),
            "timers": {k: dict(v) for k, v in self.timers.items()},
        }


class PerfRegistry:
    """Named monotonic counters and aggregated wall-clock timers.

    Counters are plain floats (``increment``); timers aggregate call
    count and total seconds per name (``timer`` / ``add_time``).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._timers: Dict[str, List[float]] = {}  # name -> [calls, total_s]

    # -- recording ---------------------------------------------------------
    def increment(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        """Record one timed call of ``seconds`` under ``name``."""
        entry = self._timers.get(name)
        if entry is None:
            self._timers[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # -- reading -----------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """JSON-ready copy: ``{"counters": ..., "timers": ...}``."""
        return {
            "counters": dict(self._counters),
            "timers": {
                name: {"calls": entry[0], "total_s": entry[1]}
                for name, entry in self._timers.items()
            },
        }

    def reset(self) -> None:
        """Zero every counter and timer."""
        self._counters.clear()
        self._timers.clear()

    @contextmanager
    def capture(self) -> Iterator[PerfDelta]:
        """Capture the counter/timer deltas across the body.

        The yielded :class:`PerfDelta` is filled in when the body
        exits; until then its fields are empty.  Nesting is safe —
        each capture diffs its own before/after snapshots.
        """
        before = self.snapshot()
        start = time.perf_counter()
        delta = PerfDelta({}, {}, 0.0)
        try:
            yield delta
        finally:
            delta.elapsed_s = time.perf_counter() - start
            after = self.snapshot()
            for name, value in after["counters"].items():
                diff = value - before["counters"].get(name, 0)
                if diff:
                    delta.counters[name] = diff
            for name, entry in after["timers"].items():
                prior = before["timers"].get(name, {"calls": 0, "total_s": 0.0})
                calls = entry["calls"] - prior["calls"]
                if calls:
                    delta.timers[name] = {
                        "calls": calls,
                        "total_s": entry["total_s"] - prior["total_s"],
                    }

    # -- export ------------------------------------------------------------
    def export_json(self, path: str) -> None:
        """Write :meth:`snapshot` to ``path`` as indented JSON."""
        with open(path, "w") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render_text(self) -> str:
        """Aligned plain-text table of all counters and timers."""
        lines = ["perf counters", "-------------"]
        if not self._counters and not self._timers:
            lines.append("(empty)")
            return "\n".join(lines)
        width = max(
            (len(n) for n in list(self._counters) + list(self._timers)), default=0
        )
        for name in sorted(self._counters):
            value = self._counters[name]
            shown = int(value) if float(value).is_integer() else round(value, 6)
            lines.append(f"{name:<{width}}  {shown}")
        if self._timers:
            lines.append("")
            lines.append("timers")
            lines.append("------")
            for name in sorted(self._timers):
                calls, total = self._timers[name]
                lines.append(f"{name:<{width}}  {calls} calls  {total:.4f}s")
        return "\n".join(lines)


#: The process-global registry every subsystem records into.
PROFILER = PerfRegistry()
