"""Lifetime simulation engine — the paper's Section V methodology.

The crossbar's life is a sequence of *application windows*.  During a
window the array performs ``apps_per_window`` inference applications;
repeated reading drifts the programmed conductances (the recoverable
effect of the paper's ref [8]).  At the end of each window the
controller restores accuracy with a **remap + online-tune** cycle:

1. re-map the trained weights under the scenario's mapping policy
   (fresh range for T+T/ST+T, aging-aware common-range selection for
   ST+AT) — every reprogrammed device takes programming pulses and ages;
2. online-tune with sign pulses until the target accuracy is reached.

The crossbar **fails** at the first window whose tuning cannot reach
the target within the iteration budget (150 in the paper).  Lifetime is
the number of applications completed before that window — Fig. 10's
x-axis position of the iteration-count knee.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.core.checkpoint import (
    CheckpointManager,
    capture_simulator,
    load_checkpoint,
    restore_simulator,
)
from repro.core.profiling import PROFILER
from repro.core.results import LifetimeResult, WindowRecord
from repro.exceptions import ConfigurationError
from repro.mapping.aging_aware import AgingAwareMapper
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import MappedNetwork
from repro.rng import spawn_rng
from repro.tuning.online import OnlineTuner, TuningConfig


@dataclass
class LifetimeConfig:
    """Knobs of the lifetime simulation.

    Attributes
    ----------
    apps_per_window:
        Inference applications per window.  The paper simulates
        4x10^7 applications total; we default to laptop-scale windows —
        lifetime *ratios* between scenarios are scale-invariant (see
        DESIGN.md §2).
    drift_magnitude:
        Lognormal sigma of the per-window read-disturb drift that forces
        the remap + retune cycle.
    max_windows:
        Safety horizon: stop after this many windows even without
        failure (result is then marked ``failed=False``).
    tuning:
        Online-tuning configuration (budget of 150 iterations etc.).
    """

    apps_per_window: int = 10_000
    drift_magnitude: float = 0.06
    max_windows: int = 200
    tuning: TuningConfig = field(default_factory=TuningConfig)

    def __post_init__(self) -> None:
        if self.tuning is None:
            # Tolerated for callers that explicitly pass tuning=None.
            self.tuning = TuningConfig()
        if self.apps_per_window < 1:
            raise ConfigurationError(
                f"apps_per_window must be >= 1, got {self.apps_per_window}"
            )
        if self.drift_magnitude < 0:
            raise ConfigurationError(
                f"drift_magnitude must be >= 0, got {self.drift_magnitude}"
            )
        if self.max_windows < 1:
            raise ConfigurationError(f"max_windows must be >= 1, got {self.max_windows}")

    def with_target(self, target_accuracy: float) -> "LifetimeConfig":
        """Independent copy with a resolved tuning target.

        The copy shares no mutable state with ``self`` — required by the
        framework, which resolves a per-scenario target: mutating a
        shared :class:`TuningConfig` in place would leak the resolved
        value back into the caller's config (and destabilize the
        content-hash cache keys of the execution engine).
        """
        return LifetimeConfig(
            apps_per_window=self.apps_per_window,
            drift_magnitude=self.drift_magnitude,
            max_windows=self.max_windows,
            tuning=replace(self.tuning, target_accuracy=target_accuracy),
        )


class LifetimeSimulator:
    """Run a mapped network through application windows until failure."""

    def __init__(
        self,
        network: MappedNetwork,
        x_tune: np.ndarray,
        y_tune: np.ndarray,
        config: Optional[LifetimeConfig] = None,
        aging_aware: bool = False,
        mapper: Optional[AgingAwareMapper] = None,
        maintenance_hooks=None,
        seed=None,
        fault_schedule=None,
    ) -> None:
        self.network = network
        self.x_tune = np.asarray(x_tune, dtype=np.float64)
        self.y_tune = np.asarray(y_tune, dtype=np.float64)
        self.config = config if config is not None else LifetimeConfig()
        self.aging_aware = bool(aging_aware)
        self.mapper = mapper if mapper is not None else (
            AgingAwareMapper() if aging_aware else None
        )
        #: Callables invoked with the network before each remap — the
        #: extension point for wear-levelling policies such as
        #: :class:`repro.mitigation.row_swap.RowSwapper.apply_to_network`.
        self.maintenance_hooks = list(maintenance_hooks or [])
        self.tuner = OnlineTuner(self.config.tuning, seed=seed)
        #: Optional :class:`repro.robustness.FaultSchedule`; its due
        #: events are applied at the start of each window.  The fault
        #: stream is derived from the tuner's generator only when a
        #: schedule is present, so fault-free runs consume the exact
        #: same random state as before this feature existed.
        self.fault_schedule = fault_schedule
        self._fault_rng = (
            spawn_rng(self.tuner._rng, "fault-schedule")
            if fault_schedule is not None
            else None
        )
        #: Software (pre-mapping) test accuracy of the model, stamped
        #: into the :class:`LifetimeResult` at creation so snapshots
        #: carry it and a resumed run reports it identically.  The
        #: framework sets this before calling :meth:`run`.
        self.software_accuracy: float = 0.0
        #: Set by :meth:`resume`; consumed (and cleared) by the next
        #: :meth:`run` call, which then continues the restored run.
        self._resume_state: Optional[tuple] = None

    @classmethod
    def resume(cls, path) -> "LifetimeSimulator":
        """Rebuild a mid-run simulator from a snapshot file.

        The returned simulator carries the partial result and continues
        from the checkpointed window on the next :meth:`run` call,
        bit-identically to a run that was never interrupted (same
        accuracy trace, same RNG streams — see DESIGN.md §10).
        """
        simulator, result, next_window, applications = restore_simulator(
            load_checkpoint(path)
        )
        simulator._resume_state = (result, next_window, applications)
        return simulator

    def _remap(self) -> None:
        if self.aging_aware:
            self.network.map_network(
                self.mapper, selection_data=(self.x_tune, self.y_tune)
            )
        else:
            self.network.map_network(FreshMapper())

    def run(
        self,
        scenario_key: str = "custom",
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
        run_id: Optional[str] = None,
    ) -> LifetimeResult:
        """Simulate windows until tuning fails or the horizon is reached.

        With ``checkpoint_every=N`` (requires ``checkpoint_dir``) a
        durable snapshot is written after every N completed windows, so
        a killed process can be continued with :meth:`resume` at the
        cost of re-running at most N-1 windows.  Snapshotting draws no
        randomness: a checkpointing run is bit-identical to a plain one.
        On a simulator built by :meth:`resume`, the restored run is
        continued (``scenario_key`` is then taken from the snapshot).
        """
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ConfigurationError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_dir is None:
                raise ConfigurationError(
                    "checkpoint_every requires a checkpoint_dir"
                )
        PROFILER.increment("lifetime.runs")
        with PROFILER.timer("lifetime.run"):
            return self._run_impl(
                scenario_key, checkpoint_every, checkpoint_dir, run_id
            )

    def _run_impl(
        self,
        scenario_key: str,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
        run_id: Optional[str] = None,
    ) -> LifetimeResult:
        cfg = self.config
        if self._resume_state is not None:
            result, start_window, applications = self._resume_state
            self._resume_state = None
        else:
            result = LifetimeResult(
                scenario_key=scenario_key,
                lifetime_applications=0,
                failed=False,
                target_accuracy=cfg.tuning.target_accuracy,
                software_accuracy=self.software_accuracy,
            )
            start_window, applications = 0, 0
        manager = (
            CheckpointManager(checkpoint_dir) if checkpoint_every is not None else None
        )
        ckpt_run_id = run_id if run_id is not None else result.scenario_key
        for window in range(start_window, cfg.max_windows):
            # Field faults land first: a schedule's due events hit the
            # array before this window's applications, so the following
            # maintenance cycle has to recover from them.
            if self.fault_schedule is not None:
                self.fault_schedule.apply(self.network, window, self._fault_rng)

            # The window's applications happen first; the array drifts.
            applications += cfg.apps_per_window
            self.network.apply_drift(cfg.drift_magnitude)

            # Maintenance cycle: hooks (wear levelling) + remap + tune,
            # fused under one read-reuse scope (DESIGN.md §11): the
            # aging-aware candidate scoring, the tuning session and the
            # window metrics all read the same device state, so the
            # scope lets the network memoize noise-free reads instead
            # of rebuilding the scratch model between stages.  The
            # scope is a no-op on the scalar path and for network types
            # without one (e.g. differential), and it is closed before
            # any checkpoint capture below.
            reuse = (
                self.network.read_reuse()
                if hasattr(self.network, "read_reuse")
                else nullcontext()
            )
            with reuse:
                for hook in self.maintenance_hooks:
                    hook(self.network)
                self._remap()
                tuning = self.tuner.tune(self.network, self.x_tune, self.y_tune)

                record = WindowRecord(
                    window_index=window,
                    applications_total=applications,
                    tuning_iterations=tuning.iterations,
                    converged=tuning.converged,
                    accuracy_after=tuning.final_accuracy,
                    pulses_total=self.network.total_pulses(),
                    dead_fraction=self.network.dead_fraction(),
                    aged_upper_by_layer=self.network.aging_by_layer(),
                )
            result.windows.append(record)
            PROFILER.increment("lifetime.windows")

            if not tuning.converged:
                # The maintenance cycle failed: the applications of this
                # window could not be completed at target accuracy.
                result.failed = True
                result.lifetime_applications = applications - cfg.apps_per_window
                return result
            result.lifetime_applications = applications
            if manager is not None and (window + 1) % checkpoint_every == 0:
                PROFILER.increment("lifetime.checkpoints")
                with PROFILER.timer("lifetime.checkpoint"):
                    manager.save(
                        capture_simulator(self, result, window + 1, applications),
                        run_id=ckpt_run_id,
                        window=window + 1,
                    )
        return result
