"""Pluggable array backend: numpy golden path, optional torch/GPU.

Every hot numeric surface of the simulator — crossbar VMMs, the nodal
transfer-matrix products, the nn-layer GEMMs — used to call numpy
directly, which caps arrays at laptop scale.  This module is the single
point where the concrete array library is chosen (DESIGN.md §14):

* The **host backend** (numpy) is the default and the *bit-exact golden
  reference*.  Device state (resistances, stress, pulse counters) and
  every RNG stream live on the host unconditionally: state evolution is
  identical across backends by construction, and the golden suite, the
  tuner-equivalence battery and checkpoint resume all pin it.
* An **accelerator backend** (torch, CPU or CUDA) may be selected with
  ``REPRO_BACKEND=torch`` (or ``torch:cuda`` / ``torch:cpu``) or
  programmatically via :func:`use`.  Torch is imported lazily — its
  absence leaves the full numpy test suite green — and is allowed
  *tolerance-based* rather than bitwise agreement (different GEMM
  blocking, optional float32 via ``REPRO_BACKEND_DTYPE``), validated by
  the cross-backend battery in ``tests/core/test_backend.py``.

The shim is deliberately thin:

* ``hxp`` is the host array namespace (numpy itself).  Ported modules
  import it from here instead of importing numpy, so this module is the
  only place in the hot surfaces that names the concrete library.
  ``host_sparse`` / ``sparse_lu`` re-export the scipy sparse entry
  points the nodal kernels factorize with (sparse LU stays host-side on
  every backend; only the dense transfer products dispatch).
* :class:`ArrayBackend` carries the ``xp``-style namespace object, the
  boundary converters (:meth:`~ArrayBackend.asarray` /
  :meth:`~ArrayBackend.to_numpy`), the linalg entry points
  (``matmul`` / ``einsum`` / ``solve`` / ``lu_factor`` + ``lu_solve``)
  and the rng adapter.  Random draws are host-defined on every backend
  (same order, same values); accelerator backends consume them through
  ``asarray``.
* :func:`gemm` is the one-line dispatch the ported GEMM call sites use:
  exactly ``a @ b`` on the host path, an asarray → matmul → to_numpy
  round trip on an accelerator.  Boundary crossings are counted under
  the ``backend.convert.*`` profiler counters so host↔device transfer
  overhead is visible in ``--profile``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple, Union

import numpy as _np
from scipy import sparse as host_sparse
from scipy.linalg import lu_factor as _host_lu_factor
from scipy.linalg import lu_solve as _host_lu_solve
from scipy.sparse.linalg import splu as _host_splu

from repro.core.profiling import PROFILER
from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, ensure_rng

#: The host array namespace — numpy itself.  Ported modules use this for
#: all state bookkeeping; under the default backend it is also the
#: compute namespace, which is what makes the golden path bit-exact.
hxp = _np

#: Host array type, for annotations in ported modules.
Array = _np.ndarray

#: The dtype policy of the golden path: every float surface is float64.
DEFAULT_DTYPE = _np.float64


class BackendUnavailableError(ConfigurationError):
    """A requested backend's array library is not importable."""


def sparse_lu(matrix: Any) -> Any:
    """Host sparse LU factorization (``scipy.sparse.linalg.splu``).

    Sparse factorization is host-only by contract on every backend: the
    nodal matrix is assembled once per conductance state and the dense
    transfer matrix it yields is what dispatches to the accelerator.
    """
    return _host_splu(matrix)


class ArrayBackend:
    """One array library behind a numpy-flavoured namespace.

    Subclasses provide ``name``, ``is_host``, the ``xp`` namespace
    object, and the raw conversion hooks; the boundary-counter plumbing
    lives here so every backend reports transfers the same way.
    """

    name: str = "base"
    #: True only for the numpy golden path: no boundary, no conversions.
    is_host: bool = False

    # -- identity ---------------------------------------------------------
    @property
    def token(self) -> str:
        """Cache key identifying this backend instance's placement."""
        return self.name

    # -- boundary converters ---------------------------------------------
    def asarray(self, x: Any, dtype: Any = None) -> Any:
        """Native array for ``x``, crossing the host→device boundary."""
        raise NotImplementedError

    def to_numpy(self, x: Any) -> Array:
        """Host ndarray for ``x``, crossing the device→host boundary."""
        raise NotImplementedError

    def _count_to_device(self, elements: int) -> None:
        PROFILER.increment("backend.convert.host_to_device")
        PROFILER.increment("backend.convert.host_to_device_elements", elements)

    def _count_to_host(self, elements: int) -> None:
        PROFILER.increment("backend.convert.device_to_host")
        PROFILER.increment("backend.convert.device_to_host_elements", elements)

    # -- linalg entry points ---------------------------------------------
    def matmul(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def einsum(self, spec: str, *operands: Any) -> Any:
        raise NotImplementedError

    def solve(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def lu_factor(self, a: Any) -> Any:
        raise NotImplementedError

    def lu_solve(self, lu: Any, b: Any) -> Any:
        raise NotImplementedError

    # -- rng adapter ------------------------------------------------------
    def rng(self, seed: SeedLike = None) -> _np.random.Generator:
        """Host random generator for ``seed``.

        Random *values and draw order* are host-defined on every
        backend — determinism and checkpointed bit-generator state are
        part of the repo's contract.  Accelerator backends consume host
        draws through :meth:`asarray`.
        """
        return ensure_rng(seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyBackend(ArrayBackend):
    """The bit-exact golden path: every entry point is numpy verbatim."""

    name = "numpy"
    is_host = True

    def __init__(self) -> None:
        self.xp = _np

    def asarray(self, x: Any, dtype: Any = None) -> Array:
        return _np.asarray(x, dtype=dtype)

    def to_numpy(self, x: Any) -> Array:
        return _np.asarray(x)

    def matmul(self, a: Any, b: Any) -> Array:
        return _np.matmul(a, b)

    def einsum(self, spec: str, *operands: Any) -> Array:
        return _np.einsum(spec, *operands)

    def solve(self, a: Any, b: Any) -> Array:
        return _np.linalg.solve(a, b)

    def lu_factor(self, a: Any) -> Any:
        return _host_lu_factor(_np.asarray(a))

    def lu_solve(self, lu: Any, b: Any) -> Array:
        return _host_lu_solve(lu, _np.asarray(b))


class _TorchNamespace:
    """Numpy-flavoured view of torch: the ``xp`` object of the backend.

    Implements the subset of the numpy namespace the ported surfaces
    and the cross-backend battery exercise, translating the axis/dim
    and pad-width conventions.  Everything lands on the owning
    backend's device in its default dtype.
    """

    def __init__(self, backend: "TorchBackend") -> None:
        self._bk = backend
        torch = backend.torch
        self.float64 = torch.float64
        self.float32 = torch.float32
        self.int64 = torch.int64
        self.bool_ = torch.bool
        self.pi = _np.pi

    # -- creation ---------------------------------------------------------
    def _dtype(self, dtype: Any) -> Any:
        return self._bk.resolve_dtype(dtype)

    def asarray(self, x: Any, dtype: Any = None) -> Any:
        return self._bk.asarray(x, dtype=dtype)

    def zeros(self, shape: Any, dtype: Any = None) -> Any:
        return self._bk.torch.zeros(
            shape, dtype=self._dtype(dtype), device=self._bk.device
        )

    def ones(self, shape: Any, dtype: Any = None) -> Any:
        return self._bk.torch.ones(
            shape, dtype=self._dtype(dtype), device=self._bk.device
        )

    def empty(self, shape: Any, dtype: Any = None) -> Any:
        return self._bk.torch.empty(
            shape, dtype=self._dtype(dtype), device=self._bk.device
        )

    def full(self, shape: Any, value: Any, dtype: Any = None) -> Any:
        return self._bk.torch.full(
            shape, value, dtype=self._dtype(dtype), device=self._bk.device
        )

    def arange(self, *args: Any, dtype: Any = None) -> Any:
        kwargs: Dict[str, Any] = {"device": self._bk.device}
        if dtype is not None:
            kwargs["dtype"] = self._dtype(dtype)
        return self._bk.torch.arange(*args, **kwargs)

    def zeros_like(self, x: Any) -> Any:
        return self._bk.torch.zeros_like(self.asarray(x))

    def ones_like(self, x: Any) -> Any:
        return self._bk.torch.ones_like(self.asarray(x))

    # -- elementwise ------------------------------------------------------
    def where(self, cond: Any, a: Any, b: Any) -> Any:
        t = self._bk.torch
        return t.where(self._bk.as_native(cond), self.asarray(a), self.asarray(b))

    def clip(self, x: Any, lo: Any = None, hi: Any = None) -> Any:
        t = self._bk.torch
        lo = self.asarray(lo) if lo is not None else None
        hi = self.asarray(hi) if hi is not None else None
        return t.clamp(self.asarray(x), min=lo, max=hi)

    def maximum(self, a: Any, b: Any) -> Any:
        return self._bk.torch.maximum(self.asarray(a), self.asarray(b))

    def minimum(self, a: Any, b: Any) -> Any:
        return self._bk.torch.minimum(self.asarray(a), self.asarray(b))

    def abs(self, x: Any) -> Any:
        return self._bk.torch.abs(self.asarray(x))

    def sign(self, x: Any) -> Any:
        return self._bk.torch.sign(self.asarray(x))

    def exp(self, x: Any) -> Any:
        return self._bk.torch.exp(self.asarray(x))

    def log(self, x: Any) -> Any:
        return self._bk.torch.log(self.asarray(x))

    def sqrt(self, x: Any) -> Any:
        return self._bk.torch.sqrt(self.asarray(x))

    def tanh(self, x: Any) -> Any:
        return self._bk.torch.tanh(self.asarray(x))

    # -- reductions -------------------------------------------------------
    def _reduce(self, fn: Any, x: Any, axis: Any, keepdims: bool) -> Any:
        x = self.asarray(x)
        if axis is None:
            return fn(x)
        return fn(x, dim=axis, keepdim=keepdims)

    def sum(self, x: Any, axis: Any = None, keepdims: bool = False) -> Any:
        return self._reduce(self._bk.torch.sum, x, axis, keepdims)

    def mean(self, x: Any, axis: Any = None, keepdims: bool = False) -> Any:
        return self._reduce(self._bk.torch.mean, x, axis, keepdims)

    def max(self, x: Any, axis: Any = None, keepdims: bool = False) -> Any:
        if axis is None:
            return self._bk.torch.max(self.asarray(x))
        return self._bk.torch.max(self.asarray(x), dim=axis, keepdim=keepdims).values

    def min(self, x: Any, axis: Any = None, keepdims: bool = False) -> Any:
        if axis is None:
            return self._bk.torch.min(self.asarray(x))
        return self._bk.torch.min(self.asarray(x), dim=axis, keepdim=keepdims).values

    def argmax(self, x: Any, axis: Any = None) -> Any:
        if axis is None:
            return self._bk.torch.argmax(self.asarray(x))
        return self._bk.torch.argmax(self.asarray(x), dim=axis)

    # -- shape ------------------------------------------------------------
    def reshape(self, x: Any, shape: Any) -> Any:
        return self._bk.torch.reshape(self.asarray(x), tuple(shape))

    def transpose(self, x: Any, axes: Any = None) -> Any:
        x = self.asarray(x)
        if axes is None:
            axes = tuple(reversed(range(x.ndim)))
        return x.permute(tuple(axes))

    def concatenate(self, seq: Any, axis: int = 0) -> Any:
        return self._bk.torch.cat([self.asarray(s) for s in seq], dim=axis)

    def stack(self, seq: Any, axis: int = 0) -> Any:
        return self._bk.torch.stack([self.asarray(s) for s in seq], dim=axis)

    def pad(self, x: Any, pad_width: Any) -> Any:
        # numpy pad_width is ((before_0, after_0), ...); torch F.pad
        # wants a flat (before_n, after_n, ..., before_0, after_0).
        import torch.nn.functional as F  # noqa: PLC0415 - lazy like torch

        flat: list[int] = []
        for before, after in reversed(list(pad_width)):
            flat += [int(before), int(after)]
        return F.pad(self.asarray(x), flat)

    # -- linalg -----------------------------------------------------------
    def matmul(self, a: Any, b: Any) -> Any:
        return self._bk.matmul(a, b)

    def einsum(self, spec: str, *operands: Any) -> Any:
        return self._bk.einsum(spec, *operands)


class TorchBackend(ArrayBackend):
    """Torch-backed accelerator path (CPU or CUDA), lazily imported.

    Agreement with the host path is tolerance-based, not bitwise:
    torch's GEMMs block differently from numpy's BLAS, CUDA reductions
    reorder sums, and ``REPRO_BACKEND_DTYPE=float32`` trades precision
    for throughput.  The documented tolerances live in DESIGN.md §14
    and are enforced by ``tests/core/test_backend.py``.
    """

    name = "torch"

    def __init__(self, device: Optional[str] = None) -> None:
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - torch-less CI path
            raise BackendUnavailableError(
                "the torch backend requires torch to be installed "
                "(pip install torch); the numpy golden path needs nothing"
            ) from exc
        self.torch = torch
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = torch.device(device)
        dtype_name = os.environ.get("REPRO_BACKEND_DTYPE", "float64").strip().lower()
        if dtype_name not in ("float64", "float32"):
            raise ConfigurationError(
                f"REPRO_BACKEND_DTYPE must be float64 or float32, got {dtype_name!r}"
            )
        self.default_dtype = torch.float64 if dtype_name == "float64" else torch.float32
        self.xp = _TorchNamespace(self)

    @property
    def token(self) -> str:
        return f"torch:{self.device.type}:{self.default_dtype}"

    def resolve_dtype(self, dtype: Any = None) -> Any:
        """Map a numpy-flavoured dtype request onto a torch dtype."""
        if dtype is None:
            return self.default_dtype
        if isinstance(dtype, self.torch.dtype):
            return dtype
        name = _np.dtype(dtype).name
        return getattr(self.torch, name)

    def as_native(self, x: Any) -> Any:
        """Tensor for ``x`` preserving its own dtype (bool masks etc.)."""
        if isinstance(x, self.torch.Tensor):
            return x.to(self.device)
        host = _np.asarray(x)
        self._count_to_device(int(host.size))
        return self.torch.as_tensor(host, device=self.device)

    def asarray(self, x: Any, dtype: Any = None) -> Any:
        target = self.resolve_dtype(dtype)
        if isinstance(x, self.torch.Tensor):
            return x.to(device=self.device, dtype=target)
        host = _np.asarray(x)
        self._count_to_device(int(host.size))
        return self.torch.as_tensor(host, device=self.device).to(target)

    def to_numpy(self, x: Any) -> Array:
        if isinstance(x, self.torch.Tensor):
            self._count_to_host(int(x.numel()))
            return x.detach().cpu().numpy()
        return _np.asarray(x)

    def matmul(self, a: Any, b: Any) -> Any:
        return self.torch.matmul(self.asarray(a), self.asarray(b))

    def einsum(self, spec: str, *operands: Any) -> Any:
        return self.torch.einsum(spec, *(self.asarray(op) for op in operands))

    def solve(self, a: Any, b: Any) -> Any:
        return self.torch.linalg.solve(self.asarray(a), self.asarray(b))

    def lu_factor(self, a: Any) -> Any:
        return self.torch.linalg.lu_factor(self.asarray(a))

    def lu_solve(self, lu: Any, b: Any) -> Any:
        factors, pivots = lu
        return self.torch.linalg.lu_solve(factors, pivots, self.asarray(b))


#: The host backend singleton — always available, always the reference.
HOST = NumpyBackend()

_ACTIVE: Optional[ArrayBackend] = None

BackendSpec = Union[str, ArrayBackend]


def make_backend(spec: BackendSpec) -> ArrayBackend:
    """Instantiate a backend from ``"numpy"`` / ``"torch[:device]"``.

    An :class:`ArrayBackend` instance passes through unchanged, so
    tests can install custom (e.g. fake device) backends.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    name, _, device = str(spec).strip().lower().partition(":")
    if name in ("", "numpy"):
        return HOST
    if name == "torch":
        return TorchBackend(device or None)
    raise ConfigurationError(
        f"unknown array backend {spec!r}; choose numpy or torch[:cpu|:cuda]"
    )


def backend_available(spec: BackendSpec) -> bool:
    """Whether ``spec`` can be instantiated (its library imports)."""
    try:
        make_backend(spec)
        return True
    except BackendUnavailableError:
        return False


def active() -> ArrayBackend:
    """The backend every dispatch point consults.

    Resolved lazily from ``REPRO_BACKEND`` on first use (like the
    ``REPRO_SCALAR_TUNER`` fastpath switch) so processes can set the
    environment before touching the simulator.
    """
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = make_backend(os.environ.get("REPRO_BACKEND", "numpy"))
    return _ACTIVE


def use(spec: BackendSpec) -> ArrayBackend:
    """Select the active backend; returns the prior one for restoring::

        prior = backend.use("torch")
        try:
            ...
        finally:
            backend.use(prior)
    """
    global _ACTIVE
    prior = active()
    _ACTIVE = make_backend(spec)
    return prior


@contextmanager
def using(spec: BackendSpec) -> Iterator[ArrayBackend]:
    """Scope with ``spec`` active; restores the prior backend on exit."""
    prior = use(spec)
    try:
        yield active()
    finally:
        use(prior)


def gemm(a: Array, b: Array) -> Array:
    """Backend-dispatched matrix product with a host-array boundary.

    The one-liner the ported GEMM call sites use: on the host backend
    this is *exactly* ``a @ b`` — same ufunc, bit-identical to the
    pre-backend code.  On an accelerator both operands cross the
    boundary (counted under ``backend.convert.*``), the product runs on
    the device, and the result comes back as a host array so the
    surrounding host-side bookkeeping is backend-agnostic.
    """
    bk = active()
    if bk.is_host:
        return a @ b
    return bk.to_numpy(bk.matmul(bk.asarray(a), bk.asarray(b)))


class DeviceArrayCache:
    """One device-resident copy of a host array, keyed by a version.

    The read path converts the same unchanged matrices over and over
    (conductances between reprogramming events, a solver's transfer
    matrix); this cache pays the host→device transfer once per
    ``(version, backend token)`` and hands back the same native array
    until the owner's state moves.  Never populated on the host backend
    (there is no boundary), and dropped from pickles — a restored or
    fanned-out object reconverts on first use.
    """

    def __init__(self) -> None:
        self._slot: Optional[Tuple[Any, str, Any]] = None

    def get(self, bk: ArrayBackend, version: Any, host_array: Array) -> Any:
        if bk.is_host:
            return host_array
        slot = self._slot
        if slot is not None and slot[0] == version and slot[1] == bk.token:
            PROFILER.increment("backend.device_cache_hits")
            return slot[2]
        native = bk.asarray(host_array)
        self._slot = (version, bk.token, native)
        return native

    def invalidate(self) -> None:
        self._slot = None

    def __getstate__(self) -> dict:
        # Device arrays do not pickle portably (and must not leak
        # across process boundaries); the cache rebuilds on first use.
        return {"_slot": None}

    def __setstate__(self, state: dict) -> None:
        self._slot = None
