"""The paper's contribution: the aging-aware lifetime framework.

* :class:`Scenario` — the three evaluation pipelines of Table I:
  ``T+T`` (traditional training + tuning), ``ST+T`` (skewed training +
  tuning) and ``ST+AT`` (skewed training + aging-aware mapping +
  tuning).
* :class:`LifetimeSimulator` — drives a mapped network through
  application windows (inference → drift → remap → online tune) until
  the tuning budget is exceeded: the crossbar's end of life.
* :class:`AgingAwareFramework` — the Fig. 5 workflow glue: train, map,
  simulate, compare scenarios.
* :class:`ParallelExecutor` / :class:`ResultCache` — the process-parallel
  execution engine with deterministic seeding and on-disk caching that
  scenario comparisons, repeats and sweeps fan out through.
* :class:`NodalSolver` / :class:`FactorizationCache` / :data:`PROFILER`
  — the hot-path kernel layer (cached sparse factorization, batched
  nodal solves) and its perf counters (DESIGN.md §9).
* :class:`CheckpointManager` / :class:`RunJournal` — durable
  checkpoint/resume for lifetime runs and crash-safe journaling of
  campaign/sweep grids (DESIGN.md §10).
* :func:`vectorized_enabled` / :func:`set_vectorized_enabled` — switch
  between the vectorized lifetime hot loop and the scalar reference
  path (``REPRO_SCALAR_TUNER``, DESIGN.md §11).
"""

from repro.core.checkpoint import (
    CheckpointInfo,
    CheckpointManager,
    RunJournal,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.executor import (
    ParallelExecutor,
    ResultCache,
    RetryPolicy,
    Task,
    TaskOutcome,
    adaptive_chunk_size,
    fingerprint,
)
from repro.core.fastpath import set_vectorized_enabled, vectorized_enabled
from repro.core.framework import AgingAwareFramework, FrameworkConfig
from repro.core.kernels import (
    FactorizationCache,
    NodalSolver,
    cache_enabled,
    set_cache_enabled,
)
from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
from repro.core.profiling import PROFILER, PerfDelta, PerfRegistry
from repro.core.presets import (
    PRESETS,
    ExperimentPreset,
    blobs_mini,
    blobs_wide,
    lenet_glyphs,
    vggnet_shapes,
)
from repro.core.results import LifetimeResult, ScenarioComparison, WindowRecord
from repro.core.scenarios import SCENARIOS, Scenario
from repro.core.sweep import Sweep, SweepPoint, SweepResult

__all__ = [
    "AgingAwareFramework",
    "CheckpointInfo",
    "CheckpointManager",
    "ExperimentPreset",
    "FactorizationCache",
    "FrameworkConfig",
    "LifetimeConfig",
    "LifetimeResult",
    "LifetimeSimulator",
    "NodalSolver",
    "PRESETS",
    "PROFILER",
    "ParallelExecutor",
    "PerfDelta",
    "PerfRegistry",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "SCENARIOS",
    "Scenario",
    "ScenarioComparison",
    "Sweep",
    "SweepPoint",
    "SweepResult",
    "Task",
    "TaskOutcome",
    "WindowRecord",
    "adaptive_chunk_size",
    "blobs_mini",
    "blobs_wide",
    "cache_enabled",
    "fingerprint",
    "inspect_checkpoint",
    "lenet_glyphs",
    "load_checkpoint",
    "save_checkpoint",
    "set_cache_enabled",
    "set_vectorized_enabled",
    "vectorized_enabled",
    "vggnet_shapes",
]
