"""Calibrated experiment presets shared by benchmarks and examples.

The paper's two test cases are LeNet-5/Cifar10 and VGG-16/Cifar100.
This module pins down their scaled-down counterparts (see DESIGN.md §2)
with parameters calibrated so that, on one CPU core:

* the software models train to useful accuracy in seconds–minutes;
* the T+T baseline fails within tens of application windows;
* the ST+T and ST+AT scenarios clearly outlive it (the Table I shape).

``fast=True`` variants shrink everything further for test-suite use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.framework import FrameworkConfig
from repro.core.lifetime import LifetimeConfig
from repro.data.dataset import Dataset
from repro.data.glyphs import make_glyph_digits
from repro.data.shapes import make_textured_shapes
from repro.data.synthetic import make_blobs
from repro.device.config import DeviceConfig
from repro.nn.model import Sequential
from repro.rng import SeedLike
from repro.training.networks import build_lenet, build_mlp, build_vggnet
from repro.training.skewed import SkewedTrainingConfig
from repro.training.trainer import TrainConfig
from repro.tuning.online import TuningConfig


@dataclass
class ExperimentPreset:
    """A named, reproducible workload: dataset + network + config."""

    name: str
    make_dataset: Callable[[], Dataset]
    build_network: Callable[[SeedLike], Sequential]
    framework_config: FrameworkConfig
    #: Seed for the framework (training + hardware instantiation).
    seed: int = 42


def _device(pulses_to_collapse: float = 30.0) -> DeviceConfig:
    """The compressed-endurance device class used in the experiments.

    Real RRAM endurance is 1e5–1e10 pulses; simulating that many
    maintenance windows is pointless, so endurance is compressed while
    keeping every mechanism (per-pulse current-dependent stress, level
    loss from the top, tuning spiral) intact.  Lifetime *ratios* — what
    the paper reports — are preserved (DESIGN.md §2).
    """
    return DeviceConfig(pulses_to_collapse=pulses_to_collapse, write_noise=0.1, n_levels=32)


def lenet_glyphs(fast: bool = False) -> ExperimentPreset:
    """The LeNet-5/Cifar10 role: small CNN on the glyph-digit task."""
    if fast:
        cfg = FrameworkConfig(
            device=_device(18),
            train=TrainConfig(epochs=20),
            skewed=SkewedTrainingConfig(pretrain=TrainConfig(epochs=20), skew_epochs=15),
            lifetime=LifetimeConfig(
                apps_per_window=10_000,
                drift_magnitude=0.05,
                max_windows=200,
                tuning=TuningConfig(max_iterations=100, batch_size=64, patience_evals=10),
            ),
            tune_samples=192,
            target_fraction=0.92,
        )
        return ExperimentPreset(
            name="lenet-glyphs-fast",
            make_dataset=lambda: make_glyph_digits(n_train=1200, n_test=300, seed=11),
            build_network=lambda seed: build_lenet(seed=seed),
            framework_config=cfg,
        )
    cfg = FrameworkConfig(
        device=_device(30),
        train=TrainConfig(epochs=20),
        skewed=SkewedTrainingConfig(pretrain=TrainConfig(epochs=20), skew_epochs=20),
        lifetime=LifetimeConfig(
            apps_per_window=10_000,
            drift_magnitude=0.05,
            max_windows=500,
            tuning=TuningConfig(max_iterations=150, batch_size=64, patience_evals=12),
        ),
        tune_samples=256,
        target_fraction=0.93,
    )
    return ExperimentPreset(
        name="lenet-glyphs",
        make_dataset=lambda: make_glyph_digits(n_train=1200, n_test=300, seed=11),
        build_network=lambda seed: build_lenet(seed=seed),
        framework_config=cfg,
    )


def vggnet_shapes(fast: bool = False) -> ExperimentPreset:
    """The VGG-16/Cifar100 role: deeper CNN on the textured-shapes task."""
    if fast:
        cfg = FrameworkConfig(
            device=_device(12),
            train=TrainConfig(epochs=3),
            skewed=SkewedTrainingConfig(pretrain=TrainConfig(epochs=3), skew_epochs=3),
            lifetime=LifetimeConfig(
                apps_per_window=10_000,
                drift_magnitude=0.05,
                max_windows=25,
                tuning=TuningConfig(
                    max_iterations=60, batch_size=48, eval_every=2, patience_evals=6
                ),
            ),
            tune_samples=96,
            target_fraction=0.9,
        )
        return ExperimentPreset(
            name="vggnet-shapes-fast",
            make_dataset=lambda: make_textured_shapes(n_train=600, n_test=200, seed=21),
            build_network=lambda seed: build_vggnet(width=6, seed=seed),
            framework_config=cfg,
        )
    cfg = FrameworkConfig(
        device=_device(30),
        train=TrainConfig(epochs=10),
        # The paper sets lambda1 = lambda2 for its (much larger) VGG-16;
        # on this scaled-down VGG the symmetric penalty fails to place
        # the weight mass at the low end of the range, so the asymmetric
        # setting is used here as well — it keeps (indeed improves)
        # accuracy while producing the required skew.  See
        # EXPERIMENTS.md (Table II) for the measured sweep.
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=5e-2,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=10),
            skew_epochs=8,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=10_000,
            drift_magnitude=0.05,
            max_windows=300,
            tuning=TuningConfig(
                max_iterations=150, batch_size=64, eval_every=2, patience_evals=10
            ),
        ),
        tune_samples=192,
        target_fraction=0.93,
    )
    return ExperimentPreset(
        name="vggnet-shapes",
        make_dataset=lambda: make_textured_shapes(n_train=2000, n_test=400, seed=21),
        build_network=lambda seed: build_vggnet(seed=seed),
        framework_config=cfg,
    )


def blobs_mini(fast: bool = False) -> ExperimentPreset:
    """Miniature MLP-on-blobs workload for service/bench smoke runs.

    Matches the campaign benchmark's workload: lifetimes are seconds,
    not minutes, so multi-worker service campaigns and CI smoke jobs
    can drain real grids end-to-end.  ``fast=True`` shrinks the horizon
    further for the test suite.
    """
    if fast:
        cfg = FrameworkConfig(
            device=DeviceConfig(pulses_to_collapse=30, write_noise=0.1),
            train=TrainConfig(epochs=6),
            skewed=SkewedTrainingConfig(
                beta_scale=-1.0,
                lambda1=0.05,
                lambda2=1e-3,
                pretrain=TrainConfig(epochs=6),
                skew_epochs=4,
            ),
            lifetime=LifetimeConfig(
                apps_per_window=1000,
                max_windows=8,
                tuning=TuningConfig(max_iterations=25),
            ),
            tune_samples=96,
            target_fraction=0.9,
        )
        return ExperimentPreset(
            name="blobs-mini-fast",
            make_dataset=lambda: make_blobs(
                n_samples=240, n_classes=3, n_features=6, spread=0.4, seed=3
            ),
            build_network=lambda seed: build_mlp(6, 3, hidden=(24,), seed=seed),
            framework_config=cfg,
            seed=7,
        )
    cfg = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=30, write_noise=0.1),
        train=TrainConfig(epochs=15),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=15),
            skew_epochs=8,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=30,
            tuning=TuningConfig(max_iterations=40),
        ),
        tune_samples=160,
        target_fraction=0.92,
    )
    return ExperimentPreset(
        name="blobs-mini",
        make_dataset=lambda: make_blobs(
            n_samples=400, n_classes=3, n_features=6, spread=0.4, seed=3
        ),
        build_network=lambda seed: build_mlp(6, 3, hidden=(24,), seed=seed),
        framework_config=cfg,
        seed=7,
    )


def blobs_wide(fast: bool = False) -> ExperimentPreset:
    """Wider MLP-on-blobs workload for backend benchmarks.

    The matrices of ``blobs-mini`` are too small for the choice of
    array backend to matter; this preset widens the MLP (256/128 hidden
    units over 32 input features) and enlarges the held-out split so
    the per-window evaluate step is dominated by real GEMM work while a
    full lifetime on the numpy backend stays seconds-scale.
    ``fast=True`` shrinks the horizon for the test suite without
    shrinking the matrices (the point of the preset is their size).
    """
    hidden = (256, 128)
    make_dataset = lambda: make_blobs(  # noqa: E731 - mirrors the other presets
        n_samples=1200,
        n_classes=6,
        n_features=32,
        spread=0.45,
        test_fraction=0.4,
        seed=5,
    )
    if fast:
        cfg = FrameworkConfig(
            device=DeviceConfig(pulses_to_collapse=30, write_noise=0.1),
            train=TrainConfig(epochs=4),
            skewed=SkewedTrainingConfig(
                beta_scale=-1.0,
                lambda1=0.05,
                lambda2=1e-3,
                pretrain=TrainConfig(epochs=4),
                skew_epochs=3,
            ),
            lifetime=LifetimeConfig(
                apps_per_window=1000,
                max_windows=4,
                tuning=TuningConfig(max_iterations=15),
            ),
            tune_samples=128,
            target_fraction=0.9,
        )
        return ExperimentPreset(
            name="blobs-wide-fast",
            make_dataset=make_dataset,
            build_network=lambda seed: build_mlp(32, 6, hidden=hidden, seed=seed),
            framework_config=cfg,
            seed=7,
        )
    cfg = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=30, write_noise=0.1),
        train=TrainConfig(epochs=10),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=10),
            skew_epochs=6,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=12,
            tuning=TuningConfig(max_iterations=30),
        ),
        tune_samples=192,
        target_fraction=0.9,
    )
    return ExperimentPreset(
        name="blobs-wide",
        make_dataset=make_dataset,
        build_network=lambda seed: build_mlp(32, 6, hidden=hidden, seed=seed),
        framework_config=cfg,
        seed=7,
    )


PRESETS = {
    "blobs-mini": blobs_mini,
    "blobs-wide": blobs_wide,
    "lenet-glyphs": lenet_glyphs,
    "vggnet-shapes": vggnet_shapes,
}
