"""Process-parallel execution engine with deterministic seeding and caching.

Every experiment in this repository — the Table-I scenario comparison,
per-scenario repeats and the ablation sweeps — decomposes into
independent *tasks* whose randomness is derived purely from an
``(entropy, purpose-key)`` pair (see :mod:`repro.rng`).  Because no task
consumes shared generator state, the set of results is independent of
execution order, which is exactly the property that makes process
parallelism safe: fanning tasks out across a
:class:`concurrent.futures.ProcessPoolExecutor` yields **bit-identical**
results to running them serially.  The equivalence is enforced by
``tests/core/test_executor.py``, not left to convention.

Three pieces live here:

* :func:`fingerprint` — a stable content hash of (nested) configs,
  datasets and arrays, used to build cache keys;
* :class:`ResultCache` — an on-disk JSON store keyed by fingerprint, so
  re-running an unchanged scenario configuration is instant;
* :class:`ParallelExecutor` — runs a list of :class:`Task` objects
  serially (``workers <= 1``) or across worker processes, consulting
  the cache first and capturing per-task failures (a crashing worker
  surfaces as a failed task, never a hung pool).

Tasks are shipped to workers with :mod:`cloudpickle` when available, so
closures and lambdas (ubiquitous in presets and test fixtures) work;
plain :mod:`pickle` is the fallback.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

try:  # cloudpickle serializes lambdas/closures; stdlib pickle cannot.
    import cloudpickle as _serializer
except Exception:  # pragma: no cover - exercised only without cloudpickle
    import pickle as _serializer

#: Cache-format version; bump when payload semantics change.
CACHE_SCHEMA = 1

#: Sentinel distinguishing "cache miss" from a cached ``None`` payload.
_MISS = object()


# -- fingerprinting -----------------------------------------------------------
def _canonical(obj: Any) -> Any:
    """JSON-ready canonical form of ``obj`` for stable hashing.

    Numpy arrays are folded to a digest of their bytes (shape/dtype
    included), dataclasses to their field dict, callables to a digest of
    their serialized form.  Objects with no stable representation fall
    back to ``repr`` — such keys are safe (they simply never match) but
    useless for caching, so config objects should be dataclasses.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # exact shortest round-trip, no JSON float quirks
    if isinstance(obj, np.generic):
        return _canonical(obj.item())
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()
        return {"__ndarray__": digest, "dtype": str(obj.dtype), "shape": list(obj.shape)}
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {f.name: _canonical(getattr(obj, f.name)) for f in fields(obj)},
        }
    if isinstance(obj, dict):
        return {"__dict__": sorted((str(k), _canonical(v)) for k, v in obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(repr(v) for v in obj)}
    if callable(obj):
        try:
            return {"__callable__": hashlib.sha256(_serializer.dumps(obj)).hexdigest()}
        except Exception:
            return {"__callable__": getattr(obj, "__qualname__", repr(obj))}
    return {"__repr__": repr(obj)}


def fingerprint(*parts: Any) -> str:
    """Stable SHA-256 hex digest of arbitrarily nested configuration.

    >>> fingerprint(1, "a") == fingerprint(1, "a")
    True
    >>> fingerprint(1, "a") == fingerprint(1, "b")
    False
    """
    blob = json.dumps(
        [_canonical(p) for p in parts], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- on-disk result cache -----------------------------------------------------
class ResultCache:
    """JSON file per cache key under one root directory.

    Payloads must be JSON-serializable (use ``Task.encode``/``decode``
    to convert rich results).  Corrupt or unreadable entries degrade to
    cache misses, never to errors.
    """

    def __init__(self, root) -> None:
        import pathlib

        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, key: str):
        return self.root / f"{key}.json"

    def get(self, key: str) -> Any:
        """Cached payload for ``key``, or the module-level miss sentinel."""
        from repro.io import load_json

        path = self.path(key)
        try:
            entry = load_json(path)
            if entry.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"unknown cache schema {entry.get('schema')!r}")
            payload = entry["payload"]
        except Exception:
            self.misses += 1
            return _MISS
        self.hits += 1
        return payload

    def put(self, key: str, payload: Any) -> None:
        from repro.io import save_json_atomic

        save_json_atomic(
            {"schema": CACHE_SCHEMA, "key": key, "saved_unix": time.time(),
             "payload": payload},
            self.path(key),
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __bool__(self) -> bool:
        # An *empty* cache is still a cache: never let `if cache:`
        # silently disable caching through __len__.
        return True

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# -- tasks --------------------------------------------------------------------
@dataclass
class Task:
    """One unit of work: ``fn(*args, **kwargs)``, optionally cached.

    ``key`` is a human-readable purpose key (also the outcome label);
    ``cache_key`` is the full content-hash key (``None`` disables
    caching for this task).  ``encode``/``decode`` convert the result to
    and from a JSON-serializable payload for the cache.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    cache_key: Optional[str] = None
    encode: Optional[Callable[[Any], Any]] = None
    decode: Optional[Callable[[Any], Any]] = None


@dataclass
class TaskOutcome:
    """Result of one task: a value or a captured error, never both."""

    key: str
    value: Any = None
    error: Optional[str] = None
    seconds: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def _invoke_payload(payload: bytes) -> bytes:
    """Worker-side trampoline: deserialize, run, reserialize.

    Module-level so the stdlib pool can always pickle *it*; the real
    callable travels inside ``payload`` via cloudpickle.
    """
    fn, args, kwargs = _serializer.loads(payload)
    return _serializer.dumps(fn(*args, **kwargs))


# -- the executor -------------------------------------------------------------
class ParallelExecutor:
    """Run tasks serially or across processes, with identical results.

    ``workers <= 1`` runs in-process (the reference semantics);
    ``workers > 1`` fans out over a process pool.  Both paths execute
    the same task functions, and because every task derives its
    randomness from ``(entropy, purpose-key)`` the outputs are
    bit-identical.  Results are returned in task order regardless of
    completion order.
    """

    def __init__(self, workers: int = 1, cache: Optional[ResultCache] = None) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.workers = int(workers)
        self.cache = cache

    def run(self, tasks: Sequence[Task], reraise: bool = False) -> List[TaskOutcome]:
        """Execute all tasks; returns one outcome per task, in order.

        With ``reraise=False`` a failing task's exception is captured in
        its outcome's ``error`` (traceback text) and the other tasks
        still complete — including when a worker process dies, which
        surfaces as a ``BrokenProcessPool`` error on the affected tasks
        rather than a hang.  With ``reraise=True`` the first failure
        (in task order) propagates to the caller.
        """
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        pending: List[int] = []
        for idx, task in enumerate(tasks):
            payload = (
                self.cache.get(task.cache_key)
                if self.cache is not None and task.cache_key
                else _MISS
            )
            if payload is not _MISS:
                value = task.decode(payload) if task.decode else payload
                outcomes[idx] = TaskOutcome(task.key, value=value, cached=True)
            else:
                pending.append(idx)

        if pending:
            # workers > 1 always means worker processes — even for one
            # task — so a crashing task can never take the parent down.
            if self.workers > 1:
                self._run_parallel(tasks, pending, outcomes, reraise)
            else:
                self._run_serial(tasks, pending, outcomes, reraise)

        for idx in pending:
            task, outcome = tasks[idx], outcomes[idx]
            if outcome.ok and self.cache is not None and task.cache_key:
                payload = task.encode(outcome.value) if task.encode else outcome.value
                self.cache.put(task.cache_key, payload)
        return outcomes  # type: ignore[return-value]

    def _run_serial(self, tasks, pending, outcomes, reraise) -> None:
        for idx in pending:
            task = tasks[idx]
            start = time.perf_counter()
            try:
                value = task.fn(*task.args, **task.kwargs)
                outcomes[idx] = TaskOutcome(
                    task.key, value=value, seconds=time.perf_counter() - start
                )
            except Exception:
                if reraise:
                    raise
                outcomes[idx] = TaskOutcome(
                    task.key,
                    error=traceback.format_exc(limit=8),
                    seconds=time.perf_counter() - start,
                )

    def _run_parallel(self, tasks, pending, outcomes, reraise) -> None:
        start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
            futures = {}
            for idx in pending:
                task = tasks[idx]
                payload = _serializer.dumps((task.fn, task.args, task.kwargs))
                futures[idx] = pool.submit(_invoke_payload, payload)
            for idx in pending:
                task = tasks[idx]
                try:
                    value = _serializer.loads(futures[idx].result())
                    outcomes[idx] = TaskOutcome(
                        task.key, value=value, seconds=time.perf_counter() - start
                    )
                except Exception as exc:
                    if reraise:
                        raise
                    text = "".join(
                        traceback.format_exception(type(exc), exc, exc.__traceback__)
                    )
                    outcomes[idx] = TaskOutcome(
                        task.key, error=text, seconds=time.perf_counter() - start
                    )
