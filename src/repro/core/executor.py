"""Process-parallel execution engine with deterministic seeding and caching.

Every experiment in this repository — the Table-I scenario comparison,
per-scenario repeats and the ablation sweeps — decomposes into
independent *tasks* whose randomness is derived purely from an
``(entropy, purpose-key)`` pair (see :mod:`repro.rng`).  Because no task
consumes shared generator state, the set of results is independent of
execution order, which is exactly the property that makes process
parallelism safe: fanning tasks out across a
:class:`concurrent.futures.ProcessPoolExecutor` yields **bit-identical**
results to running them serially.  The equivalence is enforced by
``tests/core/test_executor.py``, not left to convention.

Three pieces live here:

* :func:`fingerprint` — a stable content hash of (nested) configs,
  datasets and arrays, used to build cache keys;
* :class:`ResultCache` — an on-disk JSON store keyed by fingerprint, so
  re-running an unchanged scenario configuration is instant;
* :class:`ParallelExecutor` — runs a list of :class:`Task` objects
  serially (``workers <= 1``) or across worker processes, consulting
  the cache first and capturing per-task failures (a crashing worker
  surfaces as a failed task, never a hung pool).

Resilience (used by the fault-injection campaigns of
:mod:`repro.robustness`, where worker failures are part of the job):

* :class:`RetryPolicy` — bounded re-execution of failed tasks with
  exponential backoff, for transient worker failures;
* per-task timeouts (``Task.timeout`` or the executor-wide
  ``task_timeout``), enforced in parallel mode;
* pool reconstruction — when a worker dies hard (``BrokenProcessPool``)
  or a task times out, the pool is rebuilt and the *sibling* in-flight
  tasks are resubmitted at no retry cost, so one poisoned task can no
  longer fail its whole batch.

Tasks are shipped to workers with :mod:`cloudpickle` when available, so
closures and lambdas (ubiquitous in presets and test fixtures) work;
plain :mod:`pickle` is the fallback.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field, fields, is_dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.checkpoint import RunJournal

logger = logging.getLogger(__name__)

try:  # cloudpickle serializes lambdas/closures; stdlib pickle cannot.
    import cloudpickle as _serializer
except Exception:  # pragma: no cover - exercised only without cloudpickle
    import pickle as _serializer

#: Cache-format version; bump when payload semantics change.
CACHE_SCHEMA = 1

#: Sentinel distinguishing "cache miss" from a cached ``None`` payload.
_MISS = object()


# -- fingerprinting -----------------------------------------------------------
def _canonical(obj: Any) -> Any:
    """JSON-ready canonical form of ``obj`` for stable hashing.

    Numpy arrays are folded to a digest of their bytes (shape/dtype
    included), dataclasses to their field dict, callables to a digest of
    their serialized form.  Objects with no stable representation fall
    back to ``repr`` — such keys are safe (they simply never match) but
    useless for caching, so config objects should be dataclasses.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # exact shortest round-trip, no JSON float quirks
    if isinstance(obj, np.generic):
        return _canonical(obj.item())
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()
        return {"__ndarray__": digest, "dtype": str(obj.dtype), "shape": list(obj.shape)}
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {f.name: _canonical(getattr(obj, f.name)) for f in fields(obj)},
        }
    if isinstance(obj, dict):
        return {"__dict__": sorted((str(k), _canonical(v)) for k, v in obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(repr(v) for v in obj)}
    if callable(obj):
        try:
            return {"__callable__": hashlib.sha256(_serializer.dumps(obj)).hexdigest()}
        except Exception:
            return {"__callable__": getattr(obj, "__qualname__", repr(obj))}
    return {"__repr__": repr(obj)}


def fingerprint(*parts: Any) -> str:
    """Stable SHA-256 hex digest of arbitrarily nested configuration.

    >>> fingerprint(1, "a") == fingerprint(1, "a")
    True
    >>> fingerprint(1, "a") == fingerprint(1, "b")
    False
    """
    blob = json.dumps(
        [_canonical(p) for p in parts], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- on-disk result cache -----------------------------------------------------
class ResultCache:
    """JSON file per cache key under one root directory.

    Payloads must be JSON-serializable (use ``Task.encode``/``decode``
    to convert rich results).  Corrupt or unreadable entries degrade to
    cache misses, never to errors — but they are *quarantined* (renamed
    to ``<key>.json.corrupt`` with a logged warning) rather than left in
    place, so recurring disk corruption stays visible instead of
    silently re-missing forever.
    """

    def __init__(self, root) -> None:
        import pathlib

        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Corrupt entries renamed aside since this cache was opened.
        self.quarantined = 0

    def path(self, key: str):
        return self.root / f"{key}.json"

    def get(self, key: str) -> Any:
        """Cached payload for ``key``, or the module-level miss sentinel."""
        from repro.io import load_json

        path = self.path(key)
        if not path.exists():
            self.misses += 1
            return _MISS
        try:
            entry = load_json(path)
            if entry.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"unknown cache schema {entry.get('schema')!r}")
            payload = entry["payload"]
        except Exception as exc:
            self.misses += 1
            self._quarantine(path, exc)
            return _MISS
        self.hits += 1
        return payload

    def _quarantine(self, path, exc: Exception) -> None:
        """Rename a corrupt entry aside so the damage stays observable."""
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine)
        except OSError:  # pragma: no cover - raced/unwritable directory
            return
        self.quarantined += 1
        logger.warning(
            "quarantined corrupt cache entry %s -> %s (%s)",
            path.name,
            quarantine.name,
            exc,
        )

    def put(self, key: str, payload: Any) -> None:
        from repro.io import save_json_atomic

        save_json_atomic(
            {"schema": CACHE_SCHEMA, "key": key, "saved_unix": time.time(),
             "payload": payload},
            self.path(key),
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __bool__(self) -> bool:
        # An *empty* cache is still a cache: never let `if cache:`
        # silently disable caching through __len__.
        return True

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# -- retry policy -------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution of failed tasks with exponential backoff.

    A task that raises (or whose worker dies) is re-run up to
    ``max_retries`` further times; before the *n*-th retry the executor
    sleeps ``min(backoff_max, backoff_base * 2**(n-1))`` seconds.
    Retries re-run the identical payload, so for derivation-seeded tasks
    a retried success is bit-identical to a first-attempt success —
    retrying can only recover *transient* infrastructure failures
    (OOM-killed worker, flaky filesystem), never change a result.

    ``jitter`` (a fraction in ``[0, 1]``) spreads the delays of
    simultaneous retriers: the backoff is scaled by a factor drawn
    deterministically from ``(jitter_seed, token, failures)``, landing
    in ``[1 - jitter, 1]`` of the nominal delay.  Give each worker of a
    fleet a distinct ``jitter_seed`` (or pass a per-worker ``token`` to
    :meth:`delay`) so a shared-cache hiccup does not make every worker
    retry in lock-step — the thundering herd that knocked the cache
    over in the first place.  The schedule stays fully deterministic:
    the same (seed, token, failure count) always yields the same delay.
    """

    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_max: float = 5.0
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def _jitter_factor(self, failures: int, token: Optional[str]) -> float:
        blob = f"{self.jitter_seed}/{token}/{failures}".encode("utf-8")
        unit = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2.0**64
        return 1.0 - self.jitter * unit

    def delay(self, failures: int, token: Optional[str] = None) -> float:
        """Backoff before the retry following the ``failures``-th failure.

        ``token`` (e.g. a worker id or task key) decorrelates the jitter
        of concurrent retriers without sacrificing determinism.
        """
        if failures < 1:
            return 0.0
        base = min(self.backoff_max, self.backoff_base * (2.0 ** (failures - 1)))
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        return base * self._jitter_factor(failures, token)

    def call(
        self,
        fn: Callable[[], Any],
        token: Optional[str] = None,
        retryable: Optional[Callable[[BaseException], bool]] = None,
    ) -> Any:
        """Run ``fn()`` with this policy's retry schedule applied.

        The generic in-process counterpart of the executor's task
        retries, shared by the service worker (point execution) and the
        HTTP client (transient network errors).  ``retryable`` filters
        which exceptions are worth another attempt — anything it
        rejects (or every exception, once ``max_retries`` is exhausted)
        propagates unchanged.
        """
        failures = 0
        while True:
            try:
                return fn()
            except Exception as exc:
                if retryable is not None and not retryable(exc):
                    raise
                failures += 1
                if failures > self.max_retries:
                    raise
                time.sleep(self.delay(failures, token=token))


# -- tasks --------------------------------------------------------------------
@dataclass
class Task:
    """One unit of work: ``fn(*args, **kwargs)``, optionally cached.

    ``key`` is a human-readable purpose key (also the outcome label);
    ``cache_key`` is the full content-hash key (``None`` disables
    caching for this task).  ``encode``/``decode`` convert the result to
    and from a JSON-serializable payload for the cache.  ``timeout``
    (seconds) bounds one execution attempt of this task — enforced in
    parallel mode, where a hung worker can be reclaimed; serial
    in-process execution cannot be preempted and ignores it.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    cache_key: Optional[str] = None
    encode: Optional[Callable[[Any], Any]] = None
    decode: Optional[Callable[[Any], Any]] = None
    timeout: Optional[float] = None
    #: Content-hash key under which a completed result is journaled
    #: (crash-safe resume of campaign/sweep grids); falls back to
    #: ``cache_key``.  ``None`` on both disables journaling for the task.
    journal_key: Optional[str] = None


@dataclass
class TaskOutcome:
    """Result of one task: a value or a captured error, never both."""

    key: str
    value: Any = None
    error: Optional[str] = None
    seconds: float = 0.0
    cached: bool = False
    #: True when the value was replayed from a crash-safe run journal.
    journaled: bool = False
    #: Execution attempts consumed (0 for cache hits).
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


def _invoke_payload(payload: bytes) -> bytes:
    """Worker-side trampoline: deserialize, run, reserialize.

    Module-level so the stdlib pool can always pickle *it*; the real
    callable travels inside ``payload`` via cloudpickle.
    """
    fn, args, kwargs = _serializer.loads(payload)
    return _serializer.dumps(fn(*args, **kwargs))


def adaptive_chunk_size(
    n_tasks: int,
    workers: int,
    oversubscribe: int = 4,
    max_chunk: int = 32,
) -> int:
    """Tasks per pool submission for an ``n_tasks``-point fan-out.

    One future per task pays serialization + IPC + scheduling per
    *point*; for large grids of short points that overhead eats the
    parallel win (BENCH_campaign's historical 0.99x).  Chunking
    amortizes it while still leaving each worker ``oversubscribe``
    chunks on average, so the tail of an uneven grid stays balanced.
    Small grids degrade to one point per task — exactly the historical
    behaviour.
    """
    if n_tasks <= 0:
        return 1
    per_worker = max(1, workers) * max(1, oversubscribe)
    return max(1, min(max_chunk, -(-n_tasks // per_worker)))


def _run_task_chunk(blobs: List[bytes]) -> list:
    """Worker-side trampoline for a *chunk* of tasks.

    Runs each serialized ``(fn, args, kwargs)`` payload in order and
    captures per-task failures, so one raising task cannot poison its
    chunk-mates.  Returns ``(True, value)`` or ``(False, exception,
    traceback_text)`` per task; exceptions that refuse to serialize are
    downgraded to a ``RuntimeError`` carrying their repr, keeping the
    chunk result transportable.
    """
    out: list = []
    for blob in blobs:
        fn, args, kwargs = _serializer.loads(blob)
        try:
            out.append((True, fn(*args, **kwargs)))
        except Exception as exc:
            text = traceback.format_exc(limit=8)
            exc.__traceback__ = None  # frames are not transportable
            try:
                _serializer.dumps(exc)
            except Exception:
                exc = RuntimeError(f"unserializable task exception: {exc!r}")
            out.append((False, exc, text))
    return out


# -- the executor -------------------------------------------------------------
class ParallelExecutor:
    """Run tasks serially or across processes, with identical results.

    ``workers <= 1`` runs in-process (the reference semantics);
    ``workers > 1`` fans out over a process pool.  Both paths execute
    the same task functions, and because every task derives its
    randomness from ``(entropy, purpose-key)`` the outputs are
    bit-identical.  Results are returned in task order regardless of
    completion order.

    ``retry`` enables bounded re-execution of failed tasks with
    exponential backoff (both modes).  ``task_timeout`` bounds each
    execution attempt (parallel mode; a per-task ``Task.timeout``
    overrides it).  In parallel mode a hard worker death or a timeout
    triggers pool reconstruction — bounded by ``max_pool_rebuilds`` —
    and the unaffected in-flight tasks are resubmitted without
    consuming one of their retries.

    ``chunk_size`` groups tasks into one pool submission each
    (``None`` picks :func:`adaptive_chunk_size` automatically, ``1``
    forces the historical one-future-per-task behaviour).  Chunking
    only changes *scheduling*: every task still runs the same function
    with the same derivation-based randomness, so chunked results are
    bit-identical to unchunked and serial ones.  A per-task timeout
    inside a chunk becomes a chunk-level budget (the sum over its
    tasks), since a chunk is the smallest preemptible unit.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        retry: Optional[RetryPolicy] = None,
        task_timeout: Optional[float] = None,
        max_pool_rebuilds: int = 3,
        journal: Optional["RunJournal"] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be > 0, got {task_timeout}"
            )
        if max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1 (or None for auto), got {chunk_size}"
            )
        self.workers = int(workers)
        self.cache = cache
        self.retry = retry
        self.task_timeout = task_timeout
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.chunk_size = chunk_size
        #: Optional :class:`repro.core.checkpoint.RunJournal`.  Tasks
        #: whose journal key (``Task.journal_key`` or ``cache_key``) is
        #: already journaled are replayed without executing; completed
        #: tasks are appended durably as they finish, so a killed run
        #: re-executes only the points that never completed.
        self.journal = journal

    def run(self, tasks: Sequence[Task], reraise: bool = False) -> List[TaskOutcome]:
        """Execute all tasks; returns one outcome per task, in order.

        With ``reraise=False`` a failing task's exception is captured in
        its outcome's ``error`` (traceback text) and the other tasks
        still complete — including when a worker process dies, which
        surfaces as a ``BrokenProcessPool`` error on the affected task
        rather than a hang.  With ``reraise=True`` the first failure
        (in task order, after any retries) propagates to the caller.
        """
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        pending: List[int] = []
        for idx, task in enumerate(tasks):
            payload = (
                self.cache.get(task.cache_key)
                if self.cache is not None and task.cache_key
                else _MISS
            )
            if payload is not _MISS:
                value = task.decode(payload) if task.decode else payload
                outcomes[idx] = TaskOutcome(task.key, value=value, cached=True)
                continue
            journal_key = self._journal_key(task)
            if journal_key is not None and journal_key in self.journal:
                payload = self.journal.get(journal_key)
                value = task.decode(payload) if task.decode else payload
                self.journal.skipped += 1
                outcomes[idx] = TaskOutcome(task.key, value=value, journaled=True)
                continue
            pending.append(idx)

        if pending:
            # workers > 1 always means worker processes — even for one
            # task — so a crashing task can never take the parent down.
            if self.workers > 1:
                self._run_parallel(tasks, pending, outcomes, reraise)
            else:
                self._run_serial(tasks, pending, outcomes, reraise)

        for idx in pending:
            task, outcome = tasks[idx], outcomes[idx]
            if outcome.ok and self.cache is not None and task.cache_key:
                payload = task.encode(outcome.value) if task.encode else outcome.value
                self.cache.put(task.cache_key, payload)
        return outcomes  # type: ignore[return-value]

    @property
    def _max_attempts(self) -> int:
        return (self.retry.max_retries if self.retry is not None else 0) + 1

    def _journal_key(self, task: Task) -> Optional[str]:
        if self.journal is None:
            return None
        return task.journal_key or task.cache_key

    def _journal_record(self, task: Task, value: Any) -> None:
        """Durably append a completed task the moment it succeeds.

        Called per task (serial) or per retry round (parallel), not
        after the whole batch — the crash-safety granularity the journal
        exists for.
        """
        journal_key = self._journal_key(task)
        if journal_key is None:
            return
        payload = task.encode(value) if task.encode else value
        self.journal.record(journal_key, payload)

    def _journal_replay(self, task: Task) -> Optional[TaskOutcome]:
        """Re-check the (refreshed) journal for a concurrently completed task.

        The journal is shared state: with several executor processes
        draining the same grid, a sibling may have completed and
        journaled a point after this run() started.  Re-checking before
        executing turns the journal into a coarse work-sharing channel —
        late joiners skip instead of recomputing.
        """
        journal_key = self._journal_key(task)
        if journal_key is None:
            return None
        self.journal.refresh()
        if journal_key not in self.journal:
            return None
        payload = self.journal.get(journal_key)
        value = task.decode(payload) if task.decode else payload
        self.journal.skipped += 1
        return TaskOutcome(task.key, value=value, journaled=True)

    def _run_serial(self, tasks, pending, outcomes, reraise) -> None:
        for idx in pending:
            task = tasks[idx]
            replayed = self._journal_replay(task)
            if replayed is not None:
                outcomes[idx] = replayed
                continue
            start = time.perf_counter()
            for attempt in range(1, self._max_attempts + 1):
                try:
                    value = task.fn(*task.args, **task.kwargs)
                    outcomes[idx] = TaskOutcome(
                        task.key,
                        value=value,
                        seconds=time.perf_counter() - start,
                        attempts=attempt,
                    )
                    self._journal_record(task, value)
                    break
                except Exception:
                    if attempt < self._max_attempts:
                        logger.warning(
                            "task %r failed (attempt %d/%d); retrying",
                            task.key,
                            attempt,
                            self._max_attempts,
                        )
                        time.sleep(self.retry.delay(attempt, token=task.key))
                        continue
                    if reraise:
                        raise
                    outcomes[idx] = TaskOutcome(
                        task.key,
                        error=traceback.format_exc(limit=8),
                        seconds=time.perf_counter() - start,
                        attempts=attempt,
                    )

    # -- parallel path ----------------------------------------------------
    def _make_pool(self, n_tasks: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=min(self.workers, max(1, n_tasks)))

    @staticmethod
    def _destroy_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a (possibly broken or hung) pool down without blocking.

        Worker processes are terminated explicitly: after a timeout the
        worker is still busy with the abandoned task, and ``shutdown``
        alone would leave it running until interpreter exit.
        """
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already gone
                pass

    def _effective_timeout(self, task: Task) -> Optional[float]:
        return task.timeout if task.timeout is not None else self.task_timeout

    def _run_round(self, tasks, todo, pool, rebuilds_left):
        """Execute each task in ``todo`` exactly one attempt.

        Returns ``(results, pool, rebuilds_left)`` where ``results`` maps
        task index to ``(ok, value_or_exception)``.  A broken pool or a
        timed-out task triggers pool reconstruction; sibling tasks whose
        futures were lost are resubmitted within the same round (their
        attempt has not been consumed by someone else's failure).
        """
        results: Dict[int, Tuple[bool, Any]] = {}
        waiting = list(todo)
        while waiting:
            futures = {}
            submit_broken = False
            submitted_at = time.monotonic()
            for idx in waiting:
                task = tasks[idx]
                blob = _serializer.dumps((task.fn, task.args, task.kwargs))
                try:
                    futures[idx] = pool.submit(_invoke_payload, blob)
                except BrokenExecutor as exc:
                    # Pool already dead at submit time; record the failure
                    # and force a rebuild below.
                    results[idx] = (False, exc)
                    submit_broken = True
            order = [idx for idx in waiting if idx in futures]
            waiting = []
            broken_at: Optional[int] = None
            for pos, idx in enumerate(order):
                timeout = self._effective_timeout(tasks[idx])
                try:
                    if timeout is None:
                        raw = futures[idx].result()
                    else:
                        remaining = submitted_at + timeout - time.monotonic()
                        raw = futures[idx].result(timeout=max(remaining, 0.0))
                    results[idx] = (True, _serializer.loads(raw))
                except _FutureTimeout:
                    results[idx] = (
                        False,
                        TimeoutError(
                            f"task {tasks[idx].key!r} exceeded its "
                            f"{timeout}s timeout"
                        ),
                    )
                    broken_at = pos
                    break
                except BrokenExecutor as exc:
                    results[idx] = (False, exc)
                    broken_at = pos
                    break
                except Exception as exc:
                    results[idx] = (False, exc)
            if broken_at is None and not submit_broken and not waiting:
                break
            if broken_at is not None:
                # Reap the siblings: futures that already finished keep
                # their results; the rest are collateral of the broken
                # pool/hung worker and go back for a free resubmission.
                for idx in order[broken_at + 1:]:
                    fut = futures[idx]
                    if fut.done():
                        try:
                            results[idx] = (
                                True,
                                _serializer.loads(fut.result(timeout=0)),
                            )
                        except (BrokenExecutor, _FutureTimeout):
                            waiting.append(idx)
                        except Exception as exc:
                            results[idx] = (False, exc)
                    else:
                        waiting.append(idx)
            self._destroy_pool(pool)
            if waiting and rebuilds_left <= 0:
                err = RuntimeError(
                    "worker pool broke repeatedly "
                    f"(max_pool_rebuilds={self.max_pool_rebuilds} exhausted); "
                    "giving up on the remaining tasks of this round"
                )
                for idx in waiting:
                    results[idx] = (False, err)
                waiting = []
            rebuilds_left -= 1
            pool = self._make_pool(max(1, len(waiting) or len(todo)))
            if waiting:
                logger.warning(
                    "worker pool rebuilt; resubmitting %d in-flight task(s)",
                    len(waiting),
                )
        return results, pool, rebuilds_left

    def _round_chunk_size(self, n_todo: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return adaptive_chunk_size(n_todo, self.workers)

    def _chunk_task(self, tasks, idxs: List[int]) -> Task:
        """Synthetic task wrapping a chunk of real tasks for one submission.

        The chunk timeout is the sum of the members' effective timeouts
        (``None`` as soon as any member is unbounded): the chunk is the
        smallest unit a hung worker can be reclaimed at.
        """
        blobs = [
            _serializer.dumps((tasks[i].fn, tasks[i].args, tasks[i].kwargs))
            for i in idxs
        ]
        timeout: Optional[float] = 0.0
        for i in idxs:
            member = self._effective_timeout(tasks[i])
            if member is None:
                timeout = None
                break
            timeout += member
        return Task(
            key=f"chunk[{tasks[idxs[0]].key}..{tasks[idxs[-1]].key}]",
            fn=_run_task_chunk,
            args=(blobs,),
            timeout=timeout,
        )

    def _run_chunked_round(self, tasks, todo, pool, rebuilds_left):
        """One attempt for every task in ``todo``, chunked submissions.

        Expands the chunk-level results of :meth:`_run_round` back to
        per-task ``(ok, payload)`` / ``(False, exc, text)`` entries.  A
        transport-level chunk failure (broken pool after rebuild budget,
        chunk timeout) charges every member of the chunk.
        """
        size = self._round_chunk_size(len(todo))
        if size <= 1:
            return self._run_round(tasks, todo, pool, rebuilds_left)
        chunks = [todo[i:i + size] for i in range(0, len(todo), size)]
        meta = [self._chunk_task(tasks, chunk) for chunk in chunks]
        raw, pool, rebuilds_left = self._run_round(
            meta, list(range(len(meta))), pool, rebuilds_left
        )
        results: Dict[int, Tuple] = {}
        for ci, chunk in enumerate(chunks):
            ok, payload = raw[ci]
            if ok:
                for idx, entry in zip(chunk, payload):
                    results[idx] = tuple(entry)
            else:
                for idx in chunk:
                    results[idx] = (False, payload)
        return results, pool, rebuilds_left

    def _run_parallel(self, tasks, pending, outcomes, reraise) -> None:
        start = time.perf_counter()
        todo = list(pending)
        failures: Dict[int, Tuple[BaseException, Optional[str]]] = {}
        attempts = {idx: 0 for idx in pending}
        pool = self._make_pool(len(pending))
        rebuilds_left = self.max_pool_rebuilds
        try:
            round_no = 1
            while todo:
                if round_no > 1:
                    time.sleep(self.retry.delay(round_no - 1))
                if self.journal is not None:
                    # Round-granularity work sharing: drop tasks a
                    # sibling executor journaled since the last round.
                    still: List[int] = []
                    for idx in todo:
                        replayed = self._journal_replay(tasks[idx])
                        if replayed is not None:
                            outcomes[idx] = replayed
                        else:
                            still.append(idx)
                    todo = still
                    if not todo:
                        break
                results, pool, rebuilds_left = self._run_chunked_round(
                    tasks, todo, pool, rebuilds_left
                )
                retry_next: List[int] = []
                for idx in todo:
                    attempts[idx] += 1
                    entry = results[idx]
                    if entry[0]:
                        outcomes[idx] = TaskOutcome(
                            tasks[idx].key,
                            value=entry[1],
                            seconds=time.perf_counter() - start,
                            attempts=attempts[idx],
                        )
                        self._journal_record(tasks[idx], entry[1])
                    elif round_no < self._max_attempts:
                        logger.warning(
                            "task %r failed (attempt %d/%d); retrying",
                            tasks[idx].key,
                            round_no,
                            self._max_attempts,
                        )
                        retry_next.append(idx)
                    else:
                        failures[idx] = (
                            entry[1],
                            entry[2] if len(entry) > 2 else None,
                        )
                todo = retry_next
                round_no += 1
        finally:
            # The current pool is healthy/idle on every exit path (hung
            # or broken pools were already destroyed and replaced inside
            # _run_round), so a graceful shutdown cannot block.
            pool.shutdown(wait=True, cancel_futures=True)

        for idx, (exc, chunk_text) in failures.items():
            if reraise:
                raise exc
            text = chunk_text or "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
            outcomes[idx] = TaskOutcome(
                tasks[idx].key,
                error=text,
                seconds=time.perf_counter() - start,
                attempts=attempts[idx],
            )
