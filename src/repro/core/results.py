"""Result records of the lifetime engine.

Every record knows how to round-trip itself through a JSON-ready dict
(``to_dict``/``from_dict``) — the single source of truth used by
:mod:`repro.io` for files and by the execution engine's on-disk result
cache.  The round trip is exact: ints stay ints and floats survive
bit-identically (JSON uses shortest-round-trip float text), so a cached
result compares equal to a freshly computed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class WindowRecord:
    """One application window (inference + drift + remap + tune)."""

    window_index: int
    applications_total: int
    tuning_iterations: int
    converged: bool
    accuracy_after: float
    pulses_total: int
    dead_fraction: float
    #: Mean aged upper resistance bound per mapped layer index.
    aged_upper_by_layer: Dict[int, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready dict (layer keys become strings)."""
        return {
            "window_index": self.window_index,
            "applications_total": self.applications_total,
            "tuning_iterations": self.tuning_iterations,
            "converged": self.converged,
            "accuracy_after": self.accuracy_after,
            "pulses_total": self.pulses_total,
            "dead_fraction": self.dead_fraction,
            "aged_upper_by_layer": {
                str(k): v for k, v in self.aged_upper_by_layer.items()
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WindowRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            window_index=int(d["window_index"]),
            applications_total=int(d["applications_total"]),
            tuning_iterations=int(d["tuning_iterations"]),
            converged=bool(d["converged"]),
            accuracy_after=float(d["accuracy_after"]),
            pulses_total=int(d["pulses_total"]),
            dead_fraction=float(d["dead_fraction"]),
            aged_upper_by_layer={
                int(k): float(v) for k, v in d["aged_upper_by_layer"].items()
            },
        )


@dataclass
class LifetimeResult:
    """Full trajectory of one scenario until failure (or horizon)."""

    scenario_key: str
    lifetime_applications: int
    failed: bool
    windows: List[WindowRecord] = field(default_factory=list)
    software_accuracy: float = 0.0
    target_accuracy: float = 0.0

    @property
    def windows_survived(self) -> int:
        """Number of windows completed before failure."""
        return sum(1 for w in self.windows if w.converged)

    def iteration_trace(self) -> List[int]:
        """Tuning iterations per window (the Fig. 10 series)."""
        return [w.tuning_iterations for w in self.windows]

    def layer_aging_trace(self) -> Dict[int, List[float]]:
        """Per-layer aged-upper-bound trajectory (the Fig. 11 series)."""
        out: Dict[int, List[float]] = {}
        for w in self.windows:
            for idx, value in w.aged_upper_by_layer.items():
                out.setdefault(idx, []).append(value)
        return out

    def to_dict(self) -> dict:
        """JSON-ready dict of the full trajectory."""
        return {
            "scenario_key": self.scenario_key,
            "lifetime_applications": self.lifetime_applications,
            "failed": self.failed,
            "software_accuracy": self.software_accuracy,
            "target_accuracy": self.target_accuracy,
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LifetimeResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            scenario_key=str(d["scenario_key"]),
            lifetime_applications=int(d["lifetime_applications"]),
            failed=bool(d["failed"]),
            software_accuracy=float(d.get("software_accuracy", 0.0)),
            target_accuracy=float(d.get("target_accuracy", 0.0)),
            windows=[WindowRecord.from_dict(w) for w in d.get("windows", [])],
        )


@dataclass
class ScenarioComparison:
    """Table-I-style comparison of scenarios on one workload."""

    workload: str
    results: Dict[str, LifetimeResult] = field(default_factory=dict)
    baseline_key: str = "t+t"

    def add(self, result: LifetimeResult) -> None:
        self.results[result.scenario_key] = result

    def lifetime(self, key: str) -> int:
        return self.results[key].lifetime_applications

    def improvement(self, key: str) -> Optional[float]:
        """Lifetime ratio vs the baseline scenario (None if missing)."""
        if self.baseline_key not in self.results or key not in self.results:
            return None
        base = self.results[self.baseline_key].lifetime_applications
        if base == 0:
            return float("inf")
        return self.results[key].lifetime_applications / base
