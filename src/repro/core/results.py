"""Result records of the lifetime engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class WindowRecord:
    """One application window (inference + drift + remap + tune)."""

    window_index: int
    applications_total: int
    tuning_iterations: int
    converged: bool
    accuracy_after: float
    pulses_total: int
    dead_fraction: float
    #: Mean aged upper resistance bound per mapped layer index.
    aged_upper_by_layer: Dict[int, float] = field(default_factory=dict)


@dataclass
class LifetimeResult:
    """Full trajectory of one scenario until failure (or horizon)."""

    scenario_key: str
    lifetime_applications: int
    failed: bool
    windows: List[WindowRecord] = field(default_factory=list)
    software_accuracy: float = 0.0
    target_accuracy: float = 0.0

    @property
    def windows_survived(self) -> int:
        """Number of windows completed before failure."""
        return sum(1 for w in self.windows if w.converged)

    def iteration_trace(self) -> List[int]:
        """Tuning iterations per window (the Fig. 10 series)."""
        return [w.tuning_iterations for w in self.windows]

    def layer_aging_trace(self) -> Dict[int, List[float]]:
        """Per-layer aged-upper-bound trajectory (the Fig. 11 series)."""
        out: Dict[int, List[float]] = {}
        for w in self.windows:
            for idx, value in w.aged_upper_by_layer.items():
                out.setdefault(idx, []).append(value)
        return out


@dataclass
class ScenarioComparison:
    """Table-I-style comparison of scenarios on one workload."""

    workload: str
    results: Dict[str, LifetimeResult] = field(default_factory=dict)
    baseline_key: str = "t+t"

    def add(self, result: LifetimeResult) -> None:
        self.results[result.scenario_key] = result

    def lifetime(self, key: str) -> int:
        return self.results[key].lifetime_applications

    def improvement(self, key: str) -> Optional[float]:
        """Lifetime ratio vs the baseline scenario (None if missing)."""
        if self.baseline_key not in self.results or key not in self.results:
            return None
        base = self.results[self.baseline_key].lifetime_applications
        if base == 0:
            return float("inf")
        return self.results[key].lifetime_applications / base
