"""Durable checkpoint/resume for lifetime runs and campaign grids.

The paper's lifetime experiments are long-horizon: thousands of tuning
epochs per scenario, multiplied by the fault-campaign grid.  A killed
worker or a CI timeout must not throw away completed windows, so this
module provides two complementary durability primitives:

* **Snapshots** — a versioned, atomic, content-hashed file capturing one
  :class:`~repro.core.lifetime.LifetimeSimulator` mid-run: every
  crossbar tile's programmed state and ``state_version``, the aging
  bookkeeping the tracers read (pulse counts, stress times), the tuner's
  and fault stream's RNG bit-generator states, and the partial
  :class:`~repro.core.results.LifetimeResult`.  Resuming from a snapshot
  continues **bit-identically** to an uninterrupted run: every random
  stream picks up exactly where it stopped (golden-suite-verified by
  ``tests/integration/test_checkpoint_resume.py``).

* **Journals** — an append-only JSONL record of completed grid points
  for :class:`~repro.robustness.campaign.FaultCampaign` and
  :class:`~repro.core.sweep.Sweep` runs through the
  :class:`~repro.core.executor.ParallelExecutor`.  A re-launched
  campaign skips journaled points outright.  The journal is
  corrupt-tail tolerant: a crash mid-append leaves a truncated last
  line, which is dropped (with a warning) instead of poisoning the run.

Snapshot files are written write-to-temp + fsync + rename
(:func:`repro.io.save_json_atomic` with ``durable=True``), so a crash
can leave the previous checkpoint or the complete new one — never a
torn file that parses.  Every snapshot embeds a SHA-256 of its payload;
bit rot is detected at load time, not silently resumed from.

Schema layout (``CHECKPOINT_SCHEMA = 1``)::

    {"schema": 1, "kind": "repro-lifetime-checkpoint", "sha256": ...,
     "payload": {
        "meta":     {scenario_key, next_window, applications, created_unix},
        "result":   <partial LifetimeResult.to_dict()>,
        "rng":      {"tuner": <bit-generator state>, "fault": ... | null},
        "layers":   [{"layer_index", "arms": [{"name",
                      "tiles": [{resistance, stress_time, pulse_counts,
                                 r_fresh_min, r_fresh_max, state_version,
                                 read_noise_extra, pulse_miss_rate,
                                 rng: <bit-generator state>}, ...]}]}],
        "context_pickle": <base64 cloudpickle of the simulator>}}

The structured sections are authoritative on restore: the simulator
skeleton is rebuilt from the context pickle, then every tile array, the
``state_version`` counters and all RNG streams are overwritten from the
schema'd data — so the inspectable format *is* the resume path, not a
decorative sidecar.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.results import LifetimeResult
from repro.exceptions import CheckpointError, ConfigurationError
from repro.io import load_json, save_json_atomic

logger = logging.getLogger(__name__)

try:  # cloudpickle ships closures (network builders, hooks); see executor.
    import cloudpickle as _serializer
except Exception:  # pragma: no cover - exercised only without cloudpickle
    import pickle as _serializer

#: Snapshot format version; bump when the payload layout changes.
CHECKPOINT_SCHEMA = 1
#: Journal line format version.
JOURNAL_SCHEMA = 1

_CHECKPOINT_KIND = "repro-lifetime-checkpoint"
#: Snapshot filename suffix recognized by ls/gc.
CHECKPOINT_SUFFIX = ".ckpt.json"


# -- array + RNG (de)serialization --------------------------------------------
def _encode_array(arr: np.ndarray) -> dict:
    """Exact (dtype/shape/bytes) JSON-ready form of a numpy array."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_array(d: dict) -> np.ndarray:
    """Inverse of :func:`_encode_array` (bit-exact round trip)."""
    raw = base64.b64decode(d["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(d["dtype"]))
    return arr.reshape(tuple(d["shape"])).copy()


def rng_state(gen: np.random.Generator) -> dict:
    """JSON-ready bit-generator state of a numpy Generator."""
    return json.loads(json.dumps(gen.bit_generator.state))


def restore_rng(gen: np.random.Generator, state: dict) -> None:
    """Install a captured bit-generator state (exact stream position)."""
    if state.get("bit_generator") != gen.bit_generator.state.get("bit_generator"):
        raise CheckpointError(
            "bit-generator mismatch: snapshot has "
            f"{state.get('bit_generator')!r}, simulator has "
            f"{gen.bit_generator.state.get('bit_generator')!r}"
        )
    gen.bit_generator.state = state


# -- simulator state capture ---------------------------------------------------
def _layer_arms(mapped_layer) -> List[Tuple[str, Any]]:
    """Tiled-matrix arms of a mapped layer.

    Single-array layers expose ``tiles``; differential layers expose
    ``plus``/``minus`` arms.  Either way each arm is a
    :class:`~repro.crossbar.tiling.TiledMatrix`.
    """
    if hasattr(mapped_layer, "tiles"):
        return [("tiles", mapped_layer.tiles)]
    return [("plus", mapped_layer.plus), ("minus", mapped_layer.minus)]


def _iter_arm_tiles(arm) -> Iterator[Any]:
    for _rs, _cs, tile in arm.iter_tiles():
        yield tile


def _capture_tile(tile) -> dict:
    return {
        "resistance": _encode_array(tile.resistance),
        "stress_time": _encode_array(tile.stress_time),
        "pulse_counts": _encode_array(tile.pulse_counts),
        "r_fresh_min": _encode_array(tile.r_fresh_min),
        "r_fresh_max": _encode_array(tile.r_fresh_max),
        "state_version": int(tile.state_version),
        "read_noise_extra": float(tile.read_noise_extra),
        "pulse_miss_rate": float(tile.pulse_miss_rate),
        "rng": rng_state(tile._rng),
    }


def _restore_tile(tile, d: dict) -> None:
    # Arrays are installed directly (not via the ``resistance`` setter)
    # so the restored ``state_version`` matches the uninterrupted run's
    # counter exactly; caches are dropped by hand instead.
    tile._resistance = _decode_array(d["resistance"])
    tile.stress_time = _decode_array(d["stress_time"])
    tile.pulse_counts = _decode_array(d["pulse_counts"])
    tile.r_fresh_min = _decode_array(d["r_fresh_min"])
    tile.r_fresh_max = _decode_array(d["r_fresh_max"])
    tile.read_noise_extra = float(d["read_noise_extra"])
    tile.pulse_miss_rate = float(d["pulse_miss_rate"])
    tile._conductance_cache = None
    tile._solver_cache.invalidate()
    tile._device_g_cache.invalidate()
    tile._bounds_cache = None
    tile._dead_cache = None
    tile._state_version = int(d["state_version"])
    restore_rng(tile._rng, d["rng"])


def capture_simulator(
    simulator,
    result: LifetimeResult,
    next_window: int,
    applications: int,
) -> dict:
    """Schema'd snapshot payload of a mid-run lifetime simulator.

    Must be called at a window boundary (after a window's record has
    been appended to ``result``); ``next_window`` is the first window
    the resumed run will execute.  Capturing draws no randomness and
    mutates nothing, so a checkpointing run is bit-identical to a
    non-checkpointing one.
    """
    layers = []
    for mapped in simulator.network.layers:
        layers.append(
            {
                "layer_index": int(mapped.layer_index),
                "arms": [
                    {
                        "name": name,
                        "tiles": [_capture_tile(t) for t in _iter_arm_tiles(arm)],
                    }
                    for name, arm in _layer_arms(mapped)
                ],
            }
        )
    return {
        "meta": {
            "scenario_key": result.scenario_key,
            "next_window": int(next_window),
            "applications": int(applications),
            "created_unix": time.time(),
        },
        "result": result.to_dict(),
        "rng": {
            "tuner": rng_state(simulator.tuner._rng),
            "fault": (
                rng_state(simulator._fault_rng)
                if simulator._fault_rng is not None
                else None
            ),
        },
        "layers": layers,
        "context_pickle": base64.b64encode(
            _serializer.dumps(simulator)
        ).decode("ascii"),
    }


def restore_simulator(payload: dict):
    """Rebuild a simulator from a snapshot payload.

    Returns ``(simulator, partial_result, next_window, applications)``.
    The object graph comes from the context pickle; every tile array,
    ``state_version`` and RNG stream is then overwritten from the
    structured sections, which are the format's source of truth.
    """
    simulator = _serializer.loads(base64.b64decode(payload["context_pickle"]))
    # Captures happen outside any read-reuse scope, but reset the
    # network-level memo state anyway (covers snapshots pickled by
    # builds without it, and makes restore independent of capture
    # context): scratch-model contents are derived state, rebuilt from
    # the authoritative tile arrays on first read.
    network = simulator.network
    network._reuse_depth = 0
    network._scratch_holds = None
    network._software_snapshot = None
    restore_rng(simulator.tuner._rng, payload["rng"]["tuner"])
    fault_state = payload["rng"].get("fault")
    if fault_state is not None:
        if simulator._fault_rng is None:
            raise CheckpointError(
                "snapshot has a fault RNG stream but the restored simulator "
                "has no fault schedule"
            )
        restore_rng(simulator._fault_rng, fault_state)

    by_index = {m.layer_index: m for m in simulator.network.layers}
    for layer_doc in payload["layers"]:
        mapped = by_index.get(int(layer_doc["layer_index"]))
        if mapped is None:
            raise CheckpointError(
                f"snapshot references layer {layer_doc['layer_index']} "
                "missing from the restored network"
            )
        arms = dict(_layer_arms(mapped))
        for arm_doc in layer_doc["arms"]:
            arm = arms.get(arm_doc["name"])
            if arm is None:
                raise CheckpointError(
                    f"snapshot arm {arm_doc['name']!r} missing on layer "
                    f"{mapped.layer_index}"
                )
            tiles = list(_iter_arm_tiles(arm))
            if len(tiles) != len(arm_doc["tiles"]):
                raise CheckpointError(
                    f"snapshot has {len(arm_doc['tiles'])} tiles for layer "
                    f"{mapped.layer_index}/{arm_doc['name']}, network has "
                    f"{len(tiles)}"
                )
            for tile, tile_doc in zip(tiles, arm_doc["tiles"]):
                if tuple(tile_doc["resistance"]["shape"]) != tile.shape:
                    raise CheckpointError(
                        f"tile shape mismatch on layer {mapped.layer_index}: "
                        f"snapshot {tile_doc['resistance']['shape']} vs "
                        f"network {list(tile.shape)}"
                    )
                _restore_tile(tile, tile_doc)

    meta = payload["meta"]
    result = LifetimeResult.from_dict(payload["result"])
    return simulator, result, int(meta["next_window"]), int(meta["applications"])


# -- snapshot files -----------------------------------------------------------
def _payload_digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def save_checkpoint(payload: dict, path) -> pathlib.Path:
    """Write a snapshot payload durably (temp + fsync + rename)."""
    path = pathlib.Path(path)
    document = {
        "schema": CHECKPOINT_SCHEMA,
        "kind": _CHECKPOINT_KIND,
        "sha256": _payload_digest(payload),
        "payload": payload,
    }
    save_json_atomic(document, path, durable=True)
    return path


def load_checkpoint(path) -> dict:
    """Read and verify a snapshot; returns the payload.

    Raises :class:`~repro.exceptions.CheckpointError` on a missing file,
    unknown schema/kind, or a content-hash mismatch (bit rot / torn
    write that somehow still parses).
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        document = load_json(path)
    except Exception as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("kind") != _CHECKPOINT_KIND:
        raise CheckpointError(f"{path} is not a lifetime checkpoint")
    if document.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unknown checkpoint schema {document.get('schema')!r} in {path} "
            f"(this build reads schema {CHECKPOINT_SCHEMA})"
        )
    payload = document.get("payload")
    if _payload_digest(payload) != document.get("sha256"):
        raise CheckpointError(
            f"content hash mismatch in {path}: the file is corrupt"
        )
    return payload


def inspect_checkpoint(path) -> dict:
    """Verified summary of a snapshot, without unpickling the context."""
    payload = load_checkpoint(path)
    meta = payload["meta"]
    result = payload["result"]
    n_tiles = sum(
        len(arm["tiles"]) for layer in payload["layers"] for arm in layer["arms"]
    )
    n_devices = sum(
        int(np.prod(tile["resistance"]["shape"]))
        for layer in payload["layers"]
        for arm in layer["arms"]
        for tile in arm["tiles"]
    )
    return {
        "path": str(path),
        "schema": CHECKPOINT_SCHEMA,
        "scenario_key": meta["scenario_key"],
        "next_window": int(meta["next_window"]),
        "applications": int(meta["applications"]),
        "created_unix": float(meta["created_unix"]),
        "windows_recorded": len(result.get("windows", [])),
        "failed": bool(result.get("failed", False)),
        "layers": len(payload["layers"]),
        "tiles": n_tiles,
        "devices": n_devices,
        "bytes": pathlib.Path(path).stat().st_size,
    }


# -- checkpoint directory management ------------------------------------------
@dataclass(frozen=True)
class CheckpointInfo:
    """One snapshot file as seen by ls/gc (no payload verification)."""

    path: pathlib.Path
    run_id: str
    window: int
    bytes: int
    modified_unix: float


def _sanitize_run_id(run_id: str) -> str:
    safe = "".join(c if (c.isalnum() or c in "+-_.") else "_" for c in run_id)
    return safe or "run"


class CheckpointManager:
    """Names, writes, lists and garbage-collects snapshots in one directory.

    Files are ``<run-id>-w<window>.ckpt.json``; the run id defaults to
    the scenario key.  Retention is explicit (:meth:`gc` keeps the
    newest ``keep`` snapshots per run) rather than automatic, so a
    resumed run never deletes the snapshot it just came from.
    """

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, run_id: str, window: int) -> pathlib.Path:
        return self.root / f"{_sanitize_run_id(run_id)}-w{window:05d}{CHECKPOINT_SUFFIX}"

    def save(self, payload: dict, run_id: str, window: int) -> pathlib.Path:
        return save_checkpoint(payload, self.path_for(run_id, window))

    def entries(self) -> List[CheckpointInfo]:
        """All snapshots in the directory, oldest window first per run."""
        out: List[CheckpointInfo] = []
        for path in self.root.glob(f"*{CHECKPOINT_SUFFIX}"):
            stem = path.name[: -len(CHECKPOINT_SUFFIX)]
            run_id, sep, tail = stem.rpartition("-w")
            if not sep or not tail.isdigit():
                continue
            stat = path.stat()
            out.append(
                CheckpointInfo(
                    path=path,
                    run_id=run_id,
                    window=int(tail),
                    bytes=stat.st_size,
                    modified_unix=stat.st_mtime,
                )
            )
        return sorted(out, key=lambda e: (e.run_id, e.window))

    def latest(self, run_id: Optional[str] = None) -> Optional[pathlib.Path]:
        """Most advanced snapshot (optionally restricted to one run)."""
        candidates = [
            e
            for e in self.entries()
            if run_id is None or e.run_id == _sanitize_run_id(run_id)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda e: e.window).path

    def gc(self, keep: int = 3, run_id: Optional[str] = None) -> List[pathlib.Path]:
        """Delete all but the newest ``keep`` snapshots per run id.

        Returns the deleted paths.  ``keep=0`` removes everything
        (matching runs only, when ``run_id`` is given).
        """
        if keep < 0:
            raise ConfigurationError(f"keep must be >= 0, got {keep}")
        grouped: Dict[str, List[CheckpointInfo]] = {}
        for entry in self.entries():
            if run_id is not None and entry.run_id != _sanitize_run_id(run_id):
                continue
            grouped.setdefault(entry.run_id, []).append(entry)
        removed: List[pathlib.Path] = []
        for entries in grouped.values():
            doomed = entries[: len(entries) - keep] if keep else entries
            for entry in doomed:
                entry.path.unlink(missing_ok=True)
                removed.append(entry.path)
        return removed


# -- campaign / sweep journal --------------------------------------------------
class RunJournal:
    """Append-only JSONL record of completed grid points.

    One line per completed point: ``{"schema": 1, "key": <content
    hash>, "sha256": <line digest>, "payload": <encoded result>}``.
    Keys are the same content-hash fingerprints the
    :class:`~repro.core.executor.ResultCache` uses, so a config change
    re-executes points instead of resuming stale ones.

    Loading tolerates a corrupt tail: a crash mid-append leaves a
    truncated or garbled final line, which is dropped with a warning
    (``dropped_lines`` counts them) — every intact line before it is
    still honored.  Appends are flushed and fsync'd line-by-line, so a
    completed point survives any later crash.

    The journal is also the shared completion ledger of the campaign
    service: any number of worker processes (or hosts, over a shared
    filesystem) append to one file.  :meth:`record` serializes writers
    through an advisory file lock and re-scans for the key before
    appending, so every point lands in the file **exactly once** even
    when two workers race to finish it; :meth:`refresh` incrementally
    picks up lines appended by other processes (tracking a byte offset,
    so a refresh after *n* new points reads only those *n* lines).
    """

    def __init__(self, path, resume: bool = True) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.entries: Dict[str, Any] = {}
        #: Unparseable/garbled lines skipped during load.
        self.dropped_lines = 0
        #: Points served from the journal by the executor this run.
        self.skipped = 0
        #: Bytes of the file already parsed (complete lines only).
        self._offset = 0
        self._lineno = 0
        #: An incomplete tail was already counted as dropped; a writer
        #: mid-append looks identical to a crash artifact, so the tail
        #: is counted once and re-examined (not re-counted) on refresh.
        self._torn_counted = False
        if self.path.exists():
            if resume:
                self._scan(count_torn_tail=True)
            else:
                self.path.unlink()

    @staticmethod
    def _line_digest(key: str, payload: Any) -> str:
        blob = json.dumps([key, payload], sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _parse_line(self, raw: bytes) -> Optional[tuple]:
        line = raw.strip()
        if not line:
            return None
        self._lineno += 1
        try:
            doc = json.loads(line)
            if doc.get("schema") != JOURNAL_SCHEMA:
                raise ValueError(f"unknown schema {doc.get('schema')!r}")
            key, payload = doc["key"], doc["payload"]
            if self._line_digest(key, payload) != doc.get("sha256"):
                raise ValueError("line digest mismatch")
        except Exception as exc:
            if self._torn_counted:
                # The once-torn tail got terminated by a later writer's
                # fresh-line newline; it was already counted at load.
                self._torn_counted = False
            else:
                self.dropped_lines += 1
                logger.warning(
                    "journal %s: dropping corrupt line %d (%s)",
                    self.path.name,
                    self._lineno,
                    exc,
                )
            return None
        if self._torn_counted:
            # The "torn tail" counted at load was a live writer's
            # in-flight append that has since completed: roll back the
            # provisional drop.
            self._torn_counted = False
            self.dropped_lines -= 1
        return key, payload

    def _scan(self, count_torn_tail: bool = False) -> int:
        """Parse complete lines from the stored offset; returns #new keys.

        A trailing line with no newline is left unconsumed (the offset
        stays at its start): it is either a crash artifact — counted as
        dropped once when ``count_torn_tail`` — or another worker's
        in-flight append, completed by the time of the next scan.
        """
        if not self.path.exists():
            return 0
        new = 0
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            for raw in handle:
                if not raw.endswith(b"\n"):
                    if count_torn_tail and not self._torn_counted:
                        self._torn_counted = True
                        self.dropped_lines += 1
                        logger.warning(
                            "journal %s: dropping truncated tail line "
                            "(crash mid-append)",
                            self.path.name,
                        )
                    break
                self._offset += len(raw)
                parsed = self._parse_line(raw)
                if parsed is not None and parsed[0] not in self.entries:
                    self.entries[parsed[0]] = parsed[1]
                    new += 1
        return new

    def refresh(self) -> int:
        """Pick up entries appended by other processes since the last scan.

        Cheap enough for per-point polling: reads only bytes beyond the
        consumed offset.  Returns the number of new keys.
        """
        return self._scan(count_torn_tail=False)

    def __contains__(self, key: object) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, key: str) -> Any:
        return self.entries[key]

    def record(self, key: str, payload: Any) -> None:
        """Durably append one completed point (idempotent per key).

        Idempotence holds across *processes*: the append happens under
        an advisory file lock, after a re-scan for concurrently written
        lines, so racing workers produce one line per key — first
        writer wins, exactly as within a single process.
        """
        if key in self.entries:
            return
        line = json.dumps(
            {
                "schema": JOURNAL_SCHEMA,
                "key": key,
                "sha256": self._line_digest(key, payload),
                "payload": payload,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        from repro.io import file_lock

        with file_lock(self.path.with_name(self.path.name + ".lock")):
            self._scan(count_torn_tail=False)
            if key in self.entries:
                return
            # A crash mid-append leaves a torn final line with no
            # newline; appending straight after it would weld this
            # record onto the garbage and lose BOTH lines.  Start a
            # fresh line instead.
            torn_tail = False
            if self.path.exists() and self.path.stat().st_size:
                with open(self.path, "rb") as tail:
                    tail.seek(-1, os.SEEK_END)
                    torn_tail = tail.read(1) != b"\n"
            with open(self.path, "a") as handle:
                if torn_tail:
                    handle.write("\n")
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        self.entries[key] = payload
