"""End-to-end workflow of the paper's Fig. 5.

:class:`AgingAwareFramework` glues the pieces: software training (plain
or skewed), hardware mapping (fresh or aging-aware), online tuning, and
the lifetime simulation — and runs the three Table-I scenarios on one
workload for a like-for-like comparison (each scenario gets its own
freshly seeded hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.core.executor import (
    _MISS,
    ParallelExecutor,
    ResultCache,
    Task,
    fingerprint,
)
from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
from repro.core.results import LifetimeResult, ScenarioComparison
from repro.core.scenarios import SCENARIOS, Scenario
from repro.data.dataset import Dataset
from repro.device.config import DeviceConfig
from repro.exceptions import ConfigurationError
from repro.mapping.aging_aware import AgingAwareMapper
from repro.mapping.network import MappedNetwork, clone_model
from repro.nn.model import Sequential
from repro.rng import SeedLike, derive_rng, ensure_rng
from repro.training.skewed import SkewedTrainingConfig, skewed_train
from repro.training.trainer import TrainConfig, train_baseline


@dataclass
class FrameworkConfig:
    """Everything the framework needs besides network and data."""

    device: DeviceConfig = field(default_factory=DeviceConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    skewed: SkewedTrainingConfig = field(default_factory=SkewedTrainingConfig)
    lifetime: LifetimeConfig = field(default_factory=LifetimeConfig)
    tile_rows: int = 128
    tile_cols: int = 128
    trace_block: int = 3
    #: Tuning-set size drawn from the training partition.
    tune_samples: int = 256
    #: Target accuracy rule: fraction of the software accuracy that
    #: online tuning must restore (overridden by an explicit
    #: ``lifetime.tuning.target_accuracy`` when ``absolute_target``).
    target_fraction: float = 0.95
    absolute_target: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.target_fraction <= 1.0:
            raise ConfigurationError(
                f"target_fraction must be in (0, 1], got {self.target_fraction}"
            )
        if self.tune_samples < 1:
            raise ConfigurationError(f"tune_samples must be >= 1, got {self.tune_samples}")


class AgingAwareFramework:
    """Train → map → tune → simulate lifetime, per scenario."""

    def __init__(
        self,
        network_builder: Callable[[SeedLike], Sequential],
        dataset: Dataset,
        config: Optional[FrameworkConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        self.network_builder = network_builder
        self.dataset = dataset
        self.config = config if config is not None else FrameworkConfig()
        # One fixed entropy value; every subsystem stream is derived
        # from (entropy, purpose-key) so results are independent of the
        # order in which scenarios are run.
        self._entropy = int(ensure_rng(seed).integers(0, 2**63 - 1))
        #: Trained models cached per training style so T+T and T+AT (or
        #: ST+T and ST+AT) share identical software weights.
        self._trained: Dict[bool, Sequential] = {}
        self._software_accuracy: Dict[bool, float] = {}

    # -- training ---------------------------------------------------------
    def trained_model(self, skewed: bool) -> Sequential:
        """Train (once) and cache the model for a training style."""
        if skewed not in self._trained:
            model = self.network_builder(derive_rng(self._entropy, f"train-{skewed}"))
            if skewed:
                skewed_train(model, self.dataset, self.config.skewed)
            else:
                train_baseline(model, self.dataset, self.config.train)
            self._trained[skewed] = model
            self._software_accuracy[skewed] = model.score(
                self.dataset.x_test, self.dataset.y_test
            )
        return self._trained[skewed]

    def software_accuracy(self, skewed: bool) -> float:
        """Test accuracy of the (cached) software model."""
        self.trained_model(skewed)
        return self._software_accuracy[skewed]

    # -- tuning set ----------------------------------------------------------
    def _tuning_set(self):
        n = min(self.config.tune_samples, self.dataset.n_train)
        return self.dataset.x_train[:n], self.dataset.y_train[:n]

    def _resolve_target(self, skewed: bool) -> float:
        if self.config.absolute_target:
            return self.config.lifetime.tuning.target_accuracy
        return self.config.target_fraction * self.software_accuracy(skewed)

    # -- scenario execution -----------------------------------------------------
    def _resolve_scenario(self, scenario: Scenario | str) -> Scenario:
        if isinstance(scenario, str):
            try:
                return SCENARIOS[scenario]
            except KeyError:
                raise ConfigurationError(
                    f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
                ) from None
        return scenario

    def scenario_cache_key(
        self, scenario: Scenario | str, repeat: int = 0, extra=None
    ) -> str:
        """Content-hash cache key of one scenario run.

        Covers everything the run depends on: the scenario, the repeat
        index, the framework entropy (which seeds training, hardware and
        tuning streams), the full configuration tree and the dataset
        arrays — so any change to any of them is a cache miss.

        ``extra`` carries additional run inputs (e.g. a fault schedule
        and degradation policy); it is folded into the key only when
        present, so plain scenario runs keep their historical keys.
        """
        scenario = self._resolve_scenario(scenario)
        parts = [
            "scenario-run/v1",
            scenario,
            int(repeat),
            self._entropy,
            self.config,
            self.dataset,
        ]
        if extra is not None:
            parts.append(extra)
        return fingerprint(*parts)

    def run_scenario(
        self,
        scenario: Scenario | str,
        repeat: int = 0,
        cache: Optional[ResultCache] = None,
        fault_schedule=None,
        degradation=None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
    ) -> LifetimeResult:
        """Run one scenario's full lifetime simulation.

        ``repeat`` selects an independent hardware/tuning seed stream
        (the trained software weights are shared across repeats);
        lifetime is a heavy-tailed quantity, so experiments should
        aggregate a few repeats — see :meth:`run_scenario_repeats`.
        A hit in ``cache`` (keyed by :meth:`scenario_cache_key`) skips
        the simulation — and the training — entirely.

        ``fault_schedule`` (a :class:`repro.robustness.FaultSchedule`)
        injects field faults during the run; ``degradation`` (a
        :class:`repro.robustness.DegradationPolicy`) switches the
        graceful-degradation levers of tuning and mapping.  Both fold
        into the cache key when present.

        ``checkpoint_every``/``checkpoint_dir`` make the lifetime run
        resumable (see :mod:`repro.core.checkpoint`): a durable snapshot
        lands after every N windows under the run id
        ``<scenario>-r<repeat>``; resume with
        :meth:`LifetimeSimulator.resume`.  Snapshots never affect the
        result, so cache keys are unchanged.
        """
        scenario = self._resolve_scenario(scenario)
        if repeat < 0:
            raise ConfigurationError(f"repeat must be >= 0, got {repeat}")
        extra = (
            None
            if fault_schedule is None and degradation is None
            else ("robustness/v1", fault_schedule, degradation)
        )
        if cache is not None:
            key = self.scenario_cache_key(scenario, repeat, extra=extra)
            payload = cache.get(key)
            if payload is not _MISS:
                return LifetimeResult.from_dict(payload)
        cfg = self.config
        model = clone_model(self.trained_model(scenario.skewed_training))
        network = MappedNetwork(
            model,
            device_config=cfg.device,
            tile_rows=cfg.tile_rows,
            tile_cols=cfg.tile_cols,
            trace_block=cfg.trace_block,
            seed=derive_rng(self._entropy, f"hw-{scenario.key}-{repeat}"),
        )
        x_tune, y_tune = self._tuning_set()

        lifetime_cfg = cfg.lifetime.with_target(
            min(0.999, max(1e-6, self._resolve_target(scenario.skewed_training)))
        )
        if degradation is not None and degradation.mask_dead_devices:
            lifetime_cfg.tuning = replace(lifetime_cfg.tuning, mask_dead_devices=True)

        mapper = None
        if scenario.aging_aware_mapping:
            fault_aware = degradation is not None and degradation.fault_aware_mapping
            mapper = AgingAwareMapper(fault_aware=fault_aware)

        simulator = LifetimeSimulator(
            network,
            x_tune,
            y_tune,
            config=lifetime_cfg,
            aging_aware=scenario.aging_aware_mapping,
            mapper=mapper,
            seed=derive_rng(self._entropy, f"tune-{scenario.key}-{repeat}"),
            fault_schedule=fault_schedule,
        )
        # Stamped before the run (not patched on afterwards) so mid-run
        # snapshots carry it and a resumed run reports it identically.
        simulator.software_accuracy = self.software_accuracy(scenario.skewed_training)
        result = simulator.run(
            scenario.key,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            run_id=f"{scenario.key}-r{repeat}",
        )
        if cache is not None:
            cache.put(key, result.to_dict())
        return result

    def _scenario_tasks(
        self, pairs: Sequence[tuple[Scenario, int]], cache: Optional[ResultCache]
    ) -> list[Task]:
        """Executor tasks for (scenario, repeat) pairs.

        Training happens in the parent *before* fan-out so every worker
        inherits the same cached software weights instead of retraining
        (retraining would still be bit-identical — the training stream
        is derived from ``(entropy, "train-<style>")`` — just wasteful).
        """
        for scenario, _ in pairs:
            self.trained_model(scenario.skewed_training)
        return [
            Task(
                key=f"{scenario.key}#r{repeat}",
                fn=_run_scenario_in_worker,
                args=(self, scenario.key, repeat),
                cache_key=(
                    self.scenario_cache_key(scenario, repeat)
                    if cache is not None
                    else None
                ),
                encode=LifetimeResult.to_dict,
                decode=LifetimeResult.from_dict,
            )
            for scenario, repeat in pairs
        ]

    def run_scenario_repeats(
        self,
        scenario: Scenario | str,
        repeats: int = 3,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
    ) -> list[LifetimeResult]:
        """Run ``repeats`` independent hardware instantiations.

        The software training is shared (cached); only the hardware and
        tuning randomness differ, mirroring one chip design deployed on
        several dies.  ``workers > 1`` fans the repeats out over a
        process pool with bit-identical results (every repeat's streams
        are derived from ``(entropy, purpose-key)``, never consumed from
        a shared generator).
        """
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        scenario = self._resolve_scenario(scenario)
        if workers <= 1:
            return [
                self.run_scenario(scenario, repeat=i, cache=cache)
                for i in range(repeats)
            ]
        tasks = self._scenario_tasks([(scenario, i) for i in range(repeats)], cache)
        executor = ParallelExecutor(workers=workers, cache=cache)
        return [o.value for o in executor.run(tasks, reraise=True)]

    def compare(
        self,
        scenario_keys=("t+t", "st+t", "st+at"),
        repeats: int = 1,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
    ) -> ScenarioComparison:
        """Run several scenarios and collect a Table-I-style comparison.

        With ``repeats > 1`` each scenario's stored result is the one
        with the **median** lifetime among its repeats.  ``workers > 1``
        runs *all* (scenario, repeat) pairs concurrently — not scenario
        by scenario — and reassembles them in deterministic order, so
        the comparison is bit-identical to a serial run.
        """
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        comparison = ScenarioComparison(workload=self.dataset.name)
        scenarios = [self._resolve_scenario(k) for k in scenario_keys]
        if workers <= 1:
            grouped = [
                [self.run_scenario(s, repeat=i, cache=cache) for i in range(repeats)]
                for s in scenarios
            ]
        else:
            pairs = [(s, i) for s in scenarios for i in range(repeats)]
            tasks = self._scenario_tasks(pairs, cache)
            executor = ParallelExecutor(workers=workers, cache=cache)
            outcomes = executor.run(tasks, reraise=True)
            grouped = [
                [o.value for o in outcomes[j * repeats:(j + 1) * repeats]]
                for j in range(len(scenarios))
            ]
        for results in grouped:
            results.sort(key=lambda r: r.lifetime_applications)
            comparison.add(results[len(results) // 2])
        return comparison


def _run_scenario_in_worker(
    framework: AgingAwareFramework, scenario_key: str, repeat: int
) -> LifetimeResult:
    """Module-level task body so the executor can ship it to workers."""
    return framework.run_scenario(scenario_key, repeat=repeat)
