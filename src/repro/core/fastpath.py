"""Global switch between the vectorized and scalar lifetime hot loops.

The per-window map → tune → evaluate loop has two implementations that
are **bit-identical by contract** (see DESIGN.md §11):

* the **vectorized** path (default): batched ``program_pulses`` tuning
  sweeps, batched initial weight programming, stress-versioned
  aged-window caches, and memoized hardware reads inside a
  :meth:`repro.mapping.network.MappedNetwork.read_reuse` scope;
* the **scalar** path: the original per-call reference implementation,
  kept alive as the oracle the equivalence test battery
  (``tests/tuning/test_tuner_equivalence.py``) and the
  ``end_to_end_lifetime`` benchmark arm diff the vectorized path
  against.

Setting the environment variable ``REPRO_SCALAR_TUNER`` (to ``1``,
``true``, ``yes`` or ``on``) before the first hot-loop call selects the
scalar path for the whole process; :func:`set_vectorized_enabled`
toggles it programmatically (tests, benchmarks).

This module is deliberately import-light (stdlib only): it is imported
by the crossbar/device layer, which must not pull scipy in.
"""

from __future__ import annotations

import os
from typing import Optional

_TRUTHY = ("1", "true", "yes", "on")

#: Tri-state: ``None`` = not yet resolved from the environment.
_VECTORIZED: Optional[bool] = None


def _env_requests_scalar() -> bool:
    return os.environ.get("REPRO_SCALAR_TUNER", "").strip().lower() in _TRUTHY


def vectorized_enabled() -> bool:
    """Whether the vectorized hot-loop paths are active.

    Resolved lazily from ``REPRO_SCALAR_TUNER`` on first use, so test
    processes can set the variable before touching the simulator.
    """
    global _VECTORIZED
    if _VECTORIZED is None:
        _VECTORIZED = not _env_requests_scalar()
    return _VECTORIZED


def set_vectorized_enabled(enabled: bool) -> bool:
    """Select the vectorized (True) or scalar (False) hot loop.

    Returns the prior value so callers can restore it::

        prior = set_vectorized_enabled(False)
        try:
            ...   # scalar reference run
        finally:
            set_vectorized_enabled(prior)
    """
    global _VECTORIZED
    previous = vectorized_enabled()
    _VECTORIZED = bool(enabled)
    return previous
