"""The three evaluation scenarios of the paper's Table I."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Scenario:
    """A (training style, mapping policy) pair.

    ``skewed_training`` selects the Section IV-A two-segment regularizer
    during software training; ``aging_aware_mapping`` selects the
    Section IV-B common-range selection during every remap.
    """

    key: str
    label: str
    skewed_training: bool
    aging_aware_mapping: bool

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("scenario key must be non-empty")


#: Traditional training + online tuning (the baseline).
T_T = Scenario("t+t", "T+T", skewed_training=False, aging_aware_mapping=False)
#: Skewed training + online tuning.
ST_T = Scenario("st+t", "ST+T", skewed_training=True, aging_aware_mapping=False)
#: Skewed training + aging-aware mapping + online tuning (full framework).
ST_AT = Scenario("st+at", "ST+AT", skewed_training=True, aging_aware_mapping=True)
#: Traditional training + aging-aware mapping (extra ablation point, not
#: in the paper's table but useful to isolate the mapping contribution).
T_AT = Scenario("t+at", "T+AT", skewed_training=False, aging_aware_mapping=True)

SCENARIOS = {s.key: s for s in (T_T, ST_T, ST_AT, T_AT)}
