"""Parameter-sweep orchestration.

The ablation studies all share one shape: vary a parameter, rebuild the
relevant object, measure a few scalars, tabulate.  :class:`Sweep`
factors that out with deterministic per-point seeds and failure
isolation (one exploding point does not lose the rest of the sweep).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.ascii import render_table
from repro.exceptions import ConfigurationError
from repro.rng import derive_rng, ensure_rng


@dataclass
class SweepPoint:
    """One evaluated sweep point."""

    value: Any
    metrics: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All points of one sweep, with tabulation helpers."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def successful(self) -> List[SweepPoint]:
        return [p for p in self.points if p.ok]

    def metric(self, name: str) -> List[float]:
        """Values of one metric across successful points (in order)."""
        return [p.metrics[name] for p in self.successful()]

    def values(self) -> List[Any]:
        return [p.value for p in self.successful()]

    def to_table(self, title: str = "") -> str:
        """Render as an aligned text table."""
        ok = self.successful()
        if not ok:
            return f"{title}\n(no successful points)"
        metric_names = sorted(ok[0].metrics)
        headers = [self.parameter, *metric_names, "time (s)"]
        rows = []
        for p in self.points:
            if p.ok:
                rows.append(
                    [p.value, *(f"{p.metrics[m]:.4g}" for m in metric_names),
                     f"{p.seconds:.1f}"]
                )
            else:
                rows.append([p.value, *("ERROR" for _ in metric_names), f"{p.seconds:.1f}"])
        return render_table(headers, rows, title=title)


class Sweep:
    """Evaluate ``fn(value, rng)`` over a sequence of parameter values.

    ``fn`` returns a ``{metric_name: float}`` dict.  Each point gets a
    generator derived from ``(seed, parameter, repr(value))`` so adding
    or reordering points never changes another point's stream.
    """

    def __init__(self, parameter: str, fn: Callable[[Any, Any], Dict[str, float]],
                 seed=0) -> None:
        if not parameter:
            raise ConfigurationError("parameter name must be non-empty")
        self.parameter = parameter
        self.fn = fn
        self._entropy = int(ensure_rng(seed).integers(0, 2**63 - 1))

    def run(self, values: Sequence[Any], fail_fast: bool = False) -> SweepResult:
        """Evaluate all ``values``; errors are captured per point."""
        result = SweepResult(parameter=self.parameter)
        for value in values:
            rng = derive_rng(self._entropy, f"{self.parameter}={value!r}")
            start = time.time()
            point = SweepPoint(value=value)
            try:
                metrics = self.fn(value, rng)
                if not isinstance(metrics, dict):
                    raise ConfigurationError(
                        f"sweep fn must return a metrics dict, got {type(metrics)}"
                    )
                point.metrics = {k: float(v) for k, v in metrics.items()}
            except Exception:
                if fail_fast:
                    raise
                point.error = traceback.format_exc(limit=3)
            point.seconds = time.time() - start
            result.points.append(point)
        return result
