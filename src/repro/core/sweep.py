"""Parameter-sweep orchestration.

The ablation studies all share one shape: vary a parameter, rebuild the
relevant object, measure a few scalars, tabulate.  :class:`Sweep`
factors that out with deterministic per-point seeds and failure
isolation (one exploding point does not lose the rest of the sweep).

Every point's generator is derived from ``(entropy, parameter, value)``
only — no shared stream — so the evaluation order is irrelevant and the
sweep can fan out across worker processes
(:class:`repro.core.executor.ParallelExecutor`) with **bit-identical**
metrics: ``run(values, workers=4)`` equals ``run(values)`` except for
the wall-clock ``seconds`` field.  Point results can also be cached on
disk (``cache=ResultCache(...)``), keyed by the sweep configuration and
the point value, so re-running an unchanged sweep is instant.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.ascii import render_table
from repro.core.executor import ParallelExecutor, ResultCache, Task, fingerprint
from repro.exceptions import ConfigurationError
from repro.rng import derive_rng, ensure_rng


@dataclass
class SweepPoint:
    """One evaluated sweep point."""

    value: Any
    metrics: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    seconds: float = 0.0
    #: True when the metrics came from the on-disk result cache.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        """JSON-ready dict (``value`` must itself be JSON-serializable)."""
        return {
            "value": self.value,
            "metrics": dict(self.metrics),
            "error": self.error,
            "seconds": self.seconds,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepPoint":
        """Inverse of :meth:`to_dict`."""
        return cls(
            value=d["value"],
            metrics={str(k): float(v) for k, v in d.get("metrics", {}).items()},
            error=d.get("error"),
            seconds=float(d.get("seconds", 0.0)),
            cached=bool(d.get("cached", False)),
        )


@dataclass
class SweepResult:
    """All points of one sweep, with tabulation helpers."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def successful(self) -> List[SweepPoint]:
        return [p for p in self.points if p.ok]

    def metric(self, name: str) -> List[float]:
        """Values of one metric across successful points (in order)."""
        return [p.metrics[name] for p in self.successful()]

    def values(self) -> List[Any]:
        return [p.value for p in self.successful()]

    def to_dict(self) -> dict:
        """JSON-ready dict of the whole sweep."""
        return {
            "parameter": self.parameter,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            parameter=str(d["parameter"]),
            points=[SweepPoint.from_dict(p) for p in d.get("points", [])],
        )

    def to_table(self, title: str = "") -> str:
        """Render as an aligned text table."""
        ok = self.successful()
        if not ok:
            return f"{title}\n(no successful points)"
        metric_names = sorted(ok[0].metrics)
        headers = [self.parameter, *metric_names, "time (s)"]
        rows = []
        for p in self.points:
            if p.ok:
                rows.append(
                    [p.value, *(f"{p.metrics[m]:.4g}" for m in metric_names),
                     f"{p.seconds:.1f}"]
                )
            else:
                rows.append([p.value, *("ERROR" for _ in metric_names), f"{p.seconds:.1f}"])
        return render_table(headers, rows, title=title)


def _evaluate_point(fn, entropy: int, parameter: str, value, catch: bool) -> dict:
    """Evaluate one point; the shared task body for serial AND parallel.

    With ``catch=True`` an exception becomes an ``{"__error__": tb}``
    payload (failure isolation); with ``catch=False`` it propagates —
    that is the ``fail_fast`` path, where the executor re-raises the
    original exception in the parent.
    """
    rng = derive_rng(entropy, f"{parameter}={value!r}")

    def coerce(metrics) -> dict:
        if not isinstance(metrics, dict):
            raise ConfigurationError(
                f"sweep fn must return a metrics dict, got {type(metrics)}"
            )
        return {str(k): float(v) for k, v in metrics.items()}

    if not catch:
        return coerce(fn(value, rng))
    try:
        return coerce(fn(value, rng))
    except Exception:
        return {"__error__": traceback.format_exc(limit=3)}


class Sweep:
    """Evaluate ``fn(value, rng)`` over a sequence of parameter values.

    ``fn`` returns a ``{metric_name: float}`` dict.  Each point gets a
    generator derived from ``(seed, parameter, repr(value))`` so adding
    or reordering points never changes another point's stream.
    """

    def __init__(self, parameter: str, fn: Callable[[Any, Any], Dict[str, float]],
                 seed=0) -> None:
        if not parameter:
            raise ConfigurationError("parameter name must be non-empty")
        self.parameter = parameter
        self.fn = fn
        self._entropy = int(ensure_rng(seed).integers(0, 2**63 - 1))

    def point_cache_key(self, value: Any, cache_token: Optional[str] = None) -> str:
        """Cache key of one point: sweep identity + entropy + value.

        The sweep function itself is fingerprinted via its serialized
        form; pass an explicit ``cache_token`` (e.g. a version string
        plus the relevant config) for keys that must stay stable across
        interpreter versions.
        """
        token = cache_token if cache_token is not None else self.fn
        return fingerprint(
            "sweep-point/v1", self.parameter, repr(value), self._entropy, token
        )

    def run(
        self,
        values: Sequence[Any],
        fail_fast: bool = False,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        cache_token: Optional[str] = None,
        journal=None,
    ) -> SweepResult:
        """Evaluate all ``values``; errors are captured per point.

        ``workers > 1`` fans the points out over a process pool with
        bit-identical metrics (per-point seeds are derivation-based, not
        sequential).  ``cache`` short-circuits points whose key — see
        :meth:`point_cache_key` — already has a stored result.  With
        ``fail_fast=True`` the first failing point's original exception
        propagates instead of being captured.  ``journal`` (a
        :class:`repro.core.checkpoint.RunJournal`) makes the sweep
        crash-safe: completed points are appended durably as they
        finish, and a re-launched sweep over the same journal skips
        them (keyed by :meth:`point_cache_key`, so a config change
        still re-executes).
        """
        tasks = [
            Task(
                key=f"{self.parameter}={value!r}",
                fn=_evaluate_point,
                args=(self.fn, self._entropy, self.parameter, value, not fail_fast),
                cache_key=(
                    self.point_cache_key(value, cache_token)
                    if cache is not None
                    else None
                ),
                journal_key=(
                    self.point_cache_key(value, cache_token)
                    if journal is not None
                    else None
                ),
            )
            for value in values
        ]
        outcomes = ParallelExecutor(workers=workers, cache=cache, journal=journal).run(
            tasks, reraise=fail_fast
        )

        result = SweepResult(parameter=self.parameter)
        for value, outcome in zip(values, outcomes):
            point = SweepPoint(
                value=value,
                seconds=outcome.seconds,
                # Journal replay is storage too: the point did not execute.
                cached=outcome.cached or outcome.journaled,
            )
            if not outcome.ok:
                # Transport-level failure: the worker process died (e.g.
                # BrokenProcessPool) before the point could even report.
                point.error = outcome.error
            elif "__error__" in outcome.value:
                point.error = outcome.value["__error__"]
            else:
                point.metrics = outcome.value
            result.points.append(point)
        return result
