"""Command-line interface.

Exposes the main reproduction flows without writing Python::

    python -m repro list-presets
    python -m repro run --preset lenet-glyphs --scenario st+at --fast
    python -m repro run --fast --checkpoint-every 5 --checkpoint-dir ckpts
    python -m repro run --resume ckpts/st+at-r0-w00005.ckpt.json
    python -m repro compare --preset lenet-glyphs --fast --out results.json
    python -m repro campaign --fast --journal campaign.jsonl --resume
    python -m repro checkpoints ls --dir ckpts
    python -m repro train --preset lenet-glyphs --skewed --weights model.npz
    python -m repro serve --jobs jobs/ --port 8351 --workers 2
    python -m repro submit --server http://127.0.0.1:8351 --preset blobs-mini \
        --fast --watch
    python -m repro jobs ls --server http://127.0.0.1:8351
    python -m repro worker --jobs jobs/ --drain

All subcommands are deterministic for a given ``--seed``; a killed
``run`` resumed from its latest checkpoint is bit-identical to an
uninterrupted one (DESIGN.md §10).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.analysis import ascii_series, comparison_report, render_table
from repro.core import AgingAwareFramework, ResultCache, RunJournal
from repro.core.checkpoint import (
    CHECKPOINT_SUFFIX,
    CheckpointManager,
    inspect_checkpoint,
)
from repro.core.lifetime import LifetimeSimulator
from repro.core.presets import PRESETS
from repro.core.profiling import PROFILER
from repro.core.scenarios import SCENARIOS
from repro.io import load_comparison, save_comparison, save_result, save_weights


def _emit_profile(args) -> None:
    """Dump the perf-counter registry per ``--profile`` (see DESIGN.md §9).

    ``--profile`` alone prints the text table to stdout; ``--profile
    PATH`` writes the JSON snapshot to ``PATH``.
    """
    dest = getattr(args, "profile", None)
    if dest is None:
        return
    if dest == "-":
        print()
        print(PROFILER.render_text())
    else:
        PROFILER.export_json(dest)
        print(f"perf counters written to {dest}")


def _build_framework(args) -> AgingAwareFramework:
    preset = PRESETS[args.preset](fast=args.fast)
    dataset = preset.make_dataset()
    seed = args.seed if args.seed is not None else preset.seed
    return AgingAwareFramework(
        preset.build_network, dataset, preset.framework_config, seed=seed
    )


def _make_cache(args) -> Optional[ResultCache]:
    """Result cache from ``--cache-dir`` / ``--no-cache`` flags."""
    if getattr(args, "no_cache", False) or not getattr(args, "cache_dir", None):
        return None
    return ResultCache(args.cache_dir)


def cmd_list_presets(_args) -> int:
    rows = []
    for name, factory in PRESETS.items():
        preset = factory(fast=False)
        dataset = preset.make_dataset()
        rows.append([name, dataset.describe()])
    print(render_table(["preset", "workload"], rows))
    return 0


def cmd_train(args) -> int:
    framework = _build_framework(args)
    model = framework.trained_model(args.skewed)
    style = "skewed" if args.skewed else "baseline"
    print(f"{style} training done; test accuracy = "
          f"{framework.software_accuracy(args.skewed):.4f}")
    if args.weights:
        save_weights(model, args.weights)
        print(f"weights written to {args.weights}")
    return 0


def _resume_run_id(path: str) -> str:
    """Run id a snapshot file was saved under (``<run-id>-wNNNNN``)."""
    import pathlib

    name = pathlib.Path(path).name
    if name.endswith(CHECKPOINT_SUFFIX):
        name = name[: -len(CHECKPOINT_SUFFIX)]
    run_id, sep, tail = name.rpartition("-w")
    return run_id if sep and tail.isdigit() else name


def cmd_run(args) -> int:
    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; choose from {sorted(SCENARIOS)}")
        return 2
    start = time.time()
    if args.resume:
        # The snapshot carries the whole mid-run simulator (model,
        # configs, RNG streams); --preset/--scenario are not consulted.
        simulator = LifetimeSimulator.resume(args.resume)
        result = simulator.run(
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            run_id=_resume_run_id(args.resume),
        )
        scenario_label = result.scenario_key
    else:
        framework = _build_framework(args)
        result = framework.run_scenario(
            args.scenario,
            repeat=args.repeat,
            cache=_make_cache(args),
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
        )
        scenario_label = args.scenario
    elapsed = time.time() - start
    print(
        f"{scenario_label.upper()}: lifetime={result.lifetime_applications} applications "
        f"({len(result.windows)} windows, "
        f"{'failed' if result.failed else 'horizon reached'}) in {elapsed:.0f}s"
    )
    trace = [float(v) for v in result.iteration_trace()]
    if trace:
        print(ascii_series(trace, height=6, label="tuning iterations per window"))
    if args.out:
        save_result(result, args.out)
        print(f"result written to {args.out}")
    _emit_profile(args)
    return 0


def cmd_compare(args) -> int:
    framework = _build_framework(args)
    comparison = framework.compare(
        repeats=args.repeats, workers=args.workers, cache=_make_cache(args)
    )
    base = comparison.results[comparison.baseline_key].lifetime_applications or 1
    rows = [
        [
            key.upper(),
            f"{r.software_accuracy:.3f}",
            r.lifetime_applications,
            f"{r.lifetime_applications / base:.1f}x",
        ]
        for key, r in comparison.results.items()
    ]
    print(
        render_table(
            ["scenario", "software acc", "lifetime (apps)", "vs T+T"],
            rows,
            title=f"Lifetime comparison — {comparison.workload}",
        )
    )
    if args.out:
        save_comparison(comparison, args.out)
        print(f"comparison written to {args.out}")
    _emit_profile(args)
    return 0


def cmd_campaign(args) -> int:
    from repro.robustness import FaultCampaign, build_grid

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; choose from {sorted(SCENARIOS)}")
        return 2
    grid = _parse_grid_args(args)
    if grid is None:
        return 2
    kinds, rates = grid
    points = build_grid(
        kinds=kinds,
        rates=rates,
        window=args.window,
        with_degradation=not args.no_degradation,
    )
    if args.resume and not args.journal:
        print("--resume requires --journal PATH (the journal to resume from)")
        return 2
    journal = (
        RunJournal(args.journal, resume=args.resume) if args.journal else None
    )
    framework = _build_framework(args)
    campaign = FaultCampaign(
        framework,
        scenario=args.scenario,
        repeat=args.repeat,
        workers=args.workers,
        cache=_make_cache(args),
        journal=journal,
    )
    start = time.time()
    report = campaign.run(points)
    elapsed = time.time() - start
    print(report.render_text())
    print(f"\n{len(points)} grid points in {elapsed:.0f}s")
    if journal is not None:
        print(
            f"journal {args.journal}: {journal.skipped} replayed, "
            f"{len(points) - journal.skipped} executed"
        )
    if args.out:
        import json

        with open(args.out, "w") as handle:
            json.dump(report.to_dict(include_perf=True), handle, indent=2)
        print(f"report written to {args.out}")
    _emit_profile(args)
    return 0


def _parse_grid_args(args):
    """``--kinds``/``--rates`` strings -> validated tuples (or an error)."""
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    try:
        rates = tuple(float(r) for r in args.rates.split(",") if r.strip())
    except ValueError:
        print(f"could not parse --rates {args.rates!r} as comma-separated floats")
        return None
    return kinds, rates


def cmd_serve(args) -> int:
    from repro.service import CampaignService

    service = CampaignService(
        args.jobs,
        host=args.host,
        port=args.port,
        workers=args.workers,
        lease_ttl=args.lease_ttl,
    )
    service.start()
    print(
        f"campaign service on {service.url} "
        f"(jobs in {args.jobs}, {args.workers} local worker(s))"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.stop()
    return 0


def cmd_submit(args) -> int:
    from repro.robustness import SurvivabilityReport
    from repro.service import CampaignJobSpec, ServiceClient

    grid = _parse_grid_args(args)
    if grid is None:
        return 2
    kinds, rates = grid
    spec = CampaignJobSpec(
        preset=args.preset,
        fast=args.fast,
        seed=args.seed,
        scenario=args.scenario,
        repeat=args.repeat,
        kinds=kinds,
        rates=rates,
        window=args.window,
        with_degradation=not args.no_degradation,
    )
    client = ServiceClient(args.server)
    job_id = client.submit(spec)
    status = client.status(job_id)
    print(
        f"submitted {job_id}: {status['total']} grid point(s), "
        f"{status['done']} already done"
    )
    if not args.watch:
        return 0
    seen = [-1]

    def progress(s) -> None:
        if s["done"] != seen[0]:
            seen[0] = s["done"]
            print(f"  {s['done']}/{s['total']} points done [{s['status']}]")

    status = client.wait(
        job_id, timeout=args.timeout, poll_interval=1.0, on_progress=progress
    )
    if status["status"] == "completed_with_failures":
        print(
            f"job completed with failures: {status.get('failed', '?')} of "
            f"{status['total']} point(s) quarantined (partial report below)"
        )
    elif status["status"] != "done":
        print(f"job ended {status['status']}: {status.get('error', '')}")
        return 1
    result = client.result(job_id)
    print(SurvivabilityReport.from_dict(result).render_text())
    if args.out:
        import json

        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"report written to {args.out}")
    return 1 if status["status"] == "completed_with_failures" else 0


def cmd_jobs(args) -> int:
    import json

    from repro.robustness import SurvivabilityReport
    from repro.service import ServiceClient

    client = ServiceClient(args.server)
    if args.jobs_command == "ls":
        jobs = client.jobs()
        if not jobs:
            print("no jobs")
            return 0
        rows = [
            [
                j["job_id"],
                j["status"],
                f"{j['done']}/{j['total']}"
                + (f" ({j['failed']} failed)" if j.get("failed") else ""),
                j["workload"],
                j["scenario_key"],
            ]
            for j in jobs
        ]
        print(render_table(["job", "status", "points", "workload", "scenario"], rows))
        return 0
    if args.jobs_command == "status":
        from repro.exceptions import ServiceError

        payload = client.status(args.job_id)
        quarantined = payload.get("leases", {}).get("quarantined", 0)
        if quarantined or payload.get("failed"):
            payload["containment"] = {
                "failed_points": payload.get("failed", 0),
                "quarantined_chunks": quarantined,
            }
        try:
            payload["healthz"] = client.healthz()
        except ServiceError:  # a pre-/healthz server; status still works
            pass
        print(json.dumps(payload, indent=2))
        return 0
    if args.jobs_command == "result":
        result = client.result(args.job_id)
        if args.out:
            with open(args.out, "w") as handle:
                json.dump(result, handle, indent=2)
            print(f"report written to {args.out}")
        else:
            print(SurvivabilityReport.from_dict(result).render_text())
        return 0
    if args.jobs_command == "cancel":
        print(json.dumps(client.cancel(args.job_id), indent=2))
        return 0
    raise AssertionError(f"unhandled jobs subcommand {args.jobs_command!r}")


def cmd_worker(args) -> int:
    from repro.exceptions import ServiceUnavailableError
    from repro.service import ServiceClient, worker_main

    jobs_root = args.jobs
    if jobs_root is None:
        if not args.server:
            print("worker needs --jobs DIR or --server URL")
            return 2
        # The server advertises its jobs directory; attaching this way
        # assumes it is reachable from here (same host or a shared
        # filesystem mount).  The client already retries with jittered
        # backoff; if the server stays unreachable, exit with a message
        # instead of a traceback.
        try:
            jobs_root = ServiceClient(args.server).jobs_root()
        except ServiceUnavailableError as exc:
            print(f"cannot attach worker: {exc}")
            return 1
        print(f"attached to {args.server} (jobs in {jobs_root})")
    return worker_main(
        jobs_root,
        drain=args.drain,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval,
    )


def cmd_checkpoints(args) -> int:
    import json

    if args.ckpt_command == "ls":
        manager = CheckpointManager(args.dir)
        entries = manager.entries()
        if not entries:
            print(f"no checkpoints under {args.dir}")
            return 0
        rows = [
            [
                e.run_id,
                e.window,
                f"{e.bytes / 1024:.1f}",
                time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(e.modified_unix)),
                str(e.path),
            ]
            for e in entries
        ]
        print(
            render_table(
                ["run", "window", "KiB", "modified", "path"],
                rows,
                title=f"checkpoints in {args.dir}",
            )
        )
        latest = manager.latest(run_id=args.run_id)
        if latest is not None:
            print(f"\nlatest{f' for {args.run_id}' if args.run_id else ''}: {latest}")
        return 0
    if args.ckpt_command == "inspect":
        print(json.dumps(inspect_checkpoint(args.path), indent=2))
        return 0
    if args.ckpt_command == "gc":
        removed = CheckpointManager(args.dir).gc(keep=args.keep, run_id=args.run_id)
        for path in removed:
            print(f"removed {path}")
        print(f"{len(removed)} snapshot(s) removed (keep={args.keep})")
        return 0
    raise AssertionError(f"unhandled checkpoints subcommand {args.ckpt_command!r}")


def cmd_report(args) -> int:
    comparison = load_comparison(args.comparison)
    text = comparison_report(comparison)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aging-aware lifetime enhancement for memristor crossbars "
        "(DATE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-presets", help="list available workloads").set_defaults(
        func=cmd_list_presets
    )

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--preset", default="lenet-glyphs", choices=sorted(PRESETS))
        p.add_argument("--fast", action="store_true", help="use the fast preset variant")
        p.add_argument("--seed", type=int, default=None)

    def profiling(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile",
            nargs="?",
            const="-",
            default=None,
            metavar="PATH",
            help="after the run, print the kernel perf counters (or write "
            "them to PATH as JSON)",
        )

    def caching(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            default=".repro-cache",
            help="on-disk result cache directory (re-runs of unchanged "
            "configs are instant); default: %(default)s",
        )
        p.add_argument(
            "--no-cache", action="store_true", help="disable the result cache"
        )

    p_train = sub.add_parser("train", help="software-train a model")
    common(p_train)
    p_train.add_argument("--skewed", action="store_true", help="use skewed training")
    p_train.add_argument("--weights", default=None, help="write weights to .npz")
    p_train.set_defaults(func=cmd_train)

    p_run = sub.add_parser("run", help="run one lifetime scenario")
    common(p_run)
    caching(p_run)
    profiling(p_run)
    p_run.add_argument("--scenario", default="st+at", choices=sorted(SCENARIOS))
    p_run.add_argument("--repeat", type=int, default=0, help="hardware seed index")
    p_run.add_argument("--out", default=None, help="write result JSON here")
    p_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write a durable snapshot after every N completed windows "
        "(resumable with --resume; bit-identical to a plain run)",
    )
    p_run.add_argument(
        "--checkpoint-dir",
        default=".repro-checkpoints",
        help="directory for --checkpoint-every snapshots; default: %(default)s",
    )
    p_run.add_argument(
        "--resume",
        default=None,
        metavar="SNAPSHOT",
        help="continue a killed run from this .ckpt.json snapshot "
        "(--preset/--scenario are ignored: the snapshot carries them)",
    )
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="run T+T / ST+T / ST+AT")
    common(p_cmp)
    caching(p_cmp)
    profiling(p_cmp)
    p_cmp.add_argument("--repeats", type=int, default=1)
    p_cmp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for scenario fan-out (results are "
        "bit-identical to --workers 1)",
    )
    p_cmp.add_argument("--out", default=None, help="write comparison JSON here")
    p_cmp.set_defaults(func=cmd_compare)

    def grid(p: argparse.ArgumentParser) -> None:
        """Campaign grid flags shared by `campaign` and `submit`."""
        p.add_argument("--scenario", default="st+at", choices=sorted(SCENARIOS))
        p.add_argument(
            "--kinds",
            default="stuck_at",
            help="comma-separated fault kinds (stuck_at, drift, read_noise, "
            "pulse_miss); default: %(default)s",
        )
        p.add_argument(
            "--rates",
            default="0.005,0.01,0.02",
            help="comma-separated fault severities; default: %(default)s",
        )
        p.add_argument(
            "--window",
            type=int,
            default=1,
            help="application window at which faults strike; default: %(default)s",
        )
        p.add_argument("--repeat", type=int, default=0, help="hardware seed index")
        p.add_argument(
            "--no-degradation",
            action="store_true",
            help="skip the graceful-degradation half of the grid",
        )

    p_camp = sub.add_parser(
        "campaign",
        help="fault-injection campaign: sweep a fault grid over one scenario",
    )
    common(p_camp)
    caching(p_camp)
    profiling(p_camp)
    grid(p_camp)
    p_camp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for grid fan-out (results are bit-identical "
        "to --workers 1)",
    )
    p_camp.add_argument("--out", default=None, help="write SurvivabilityReport JSON here")
    p_camp.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append completed grid points durably to this JSONL journal "
        "(crash-safe: combine with --resume to relaunch a killed campaign)",
    )
    p_camp.add_argument(
        "--resume",
        action="store_true",
        help="skip grid points already recorded in --journal "
        "(without it, an existing journal is started over)",
    )
    p_camp.set_defaults(func=cmd_campaign)

    p_ckpt = sub.add_parser(
        "checkpoints", help="list, inspect and garbage-collect run snapshots"
    )
    ckpt_sub = p_ckpt.add_subparsers(dest="ckpt_command", required=True)
    p_ls = ckpt_sub.add_parser("ls", help="list snapshots in a directory")
    p_ls.add_argument("--dir", default=".repro-checkpoints")
    p_ls.add_argument("--run-id", default=None, help="restrict `latest` to one run")
    p_ls.set_defaults(func=cmd_checkpoints)
    p_ins = ckpt_sub.add_parser(
        "inspect", help="verified summary of one snapshot (no unpickling)"
    )
    p_ins.add_argument("path", help="a .ckpt.json snapshot file")
    p_ins.set_defaults(func=cmd_checkpoints)
    p_gc = ckpt_sub.add_parser(
        "gc", help="delete all but the newest snapshots per run"
    )
    p_gc.add_argument("--dir", default=".repro-checkpoints")
    p_gc.add_argument(
        "--keep", type=int, default=3, help="snapshots to keep per run; default: %(default)s"
    )
    p_gc.add_argument("--run-id", default=None, help="only collect this run's snapshots")
    p_gc.set_defaults(func=cmd_checkpoints)

    p_srv = sub.add_parser(
        "serve",
        help="run the campaign service: HTTP job API + optional local workers",
    )
    p_srv.add_argument(
        "--jobs",
        default=".repro-jobs",
        help="jobs directory shared with workers; default: %(default)s",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=8351, help="0 binds an ephemeral port"
    )
    p_srv.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes to spawn alongside the server "
        "(more can attach with `repro worker`); default: %(default)s",
    )
    p_srv.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        help="seconds before an unrenewed chunk lease can be stolen; "
        "default: %(default)s",
    )
    p_srv.set_defaults(func=cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit a campaign to a running `repro serve`"
    )
    common(p_sub)
    grid(p_sub)
    p_sub.add_argument(
        "--server",
        default="http://127.0.0.1:8351",
        help="campaign service base URL; default: %(default)s",
    )
    p_sub.add_argument(
        "--watch",
        action="store_true",
        help="poll until the job finishes and print the report",
    )
    p_sub.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up on --watch after this many seconds",
    )
    p_sub.add_argument(
        "--out", default=None, help="with --watch: write the report JSON here"
    )
    p_sub.set_defaults(func=cmd_submit)

    p_jobs = sub.add_parser("jobs", help="inspect jobs on a running `repro serve`")
    p_jobs.add_argument(
        "--server",
        default="http://127.0.0.1:8351",
        help="campaign service base URL; default: %(default)s",
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)
    jobs_sub.add_parser("ls", help="list all jobs").set_defaults(func=cmd_jobs)
    p_jst = jobs_sub.add_parser("status", help="progress of one job")
    p_jst.add_argument("job_id")
    p_jst.set_defaults(func=cmd_jobs)
    p_jre = jobs_sub.add_parser("result", help="fetch a finished job's report")
    p_jre.add_argument("job_id")
    p_jre.add_argument("--out", default=None, help="write the report JSON here")
    p_jre.set_defaults(func=cmd_jobs)
    p_jca = jobs_sub.add_parser("cancel", help="cancel a job")
    p_jca.add_argument("job_id")
    p_jca.set_defaults(func=cmd_jobs)

    p_wrk = sub.add_parser(
        "worker", help="drain campaign jobs from a shared jobs directory"
    )
    p_wrk.add_argument(
        "--jobs",
        default=None,
        help="jobs directory (the `repro serve --jobs` path)",
    )
    p_wrk.add_argument(
        "--server",
        default=None,
        help="resolve the jobs directory from this service URL instead "
        "(same host or shared filesystem)",
    )
    p_wrk.add_argument(
        "--drain",
        action="store_true",
        help="exit once no claimable work remains (default: poll forever)",
    )
    p_wrk.add_argument("--worker-id", default=None, help="override the lease id")
    p_wrk.add_argument("--lease-ttl", type=float, default=60.0)
    p_wrk.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="idle sleep between job-store polls; default: %(default)s",
    )
    p_wrk.set_defaults(func=cmd_worker)

    p_rep = sub.add_parser("report", help="render a saved comparison as Markdown")
    p_rep.add_argument("comparison", help="comparison JSON from `compare --out`")
    p_rep.add_argument("--out", default=None, help="write Markdown here (default: stdout)")
    p_rep.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
