"""Plain-text rendering for the benchmark harness.

The benchmarks run in a terminal with no plotting stack, so every
figure of the paper is reproduced as an ASCII rendering: histograms as
horizontal bar charts, trajectories as sparkline-style series, tables as
aligned columns.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def ascii_histogram(
    edges: np.ndarray,
    counts: np.ndarray,
    width: int = 50,
    label: str = "",
) -> str:
    """Horizontal bar chart of a histogram.

    >>> print(ascii_histogram(np.array([0., 1., 2.]), np.array([2, 4]), width=4))
    [ 0.000,  1.000) ##   (2)
    [ 1.000,  2.000) #### (4)
    """
    edges = np.asarray(edges, dtype=np.float64)
    counts = np.asarray(counts)
    if len(edges) != len(counts) + 1:
        raise ConfigurationError("need len(edges) == len(counts) + 1")
    peak = max(1, int(counts.max())) if counts.size else 1
    lines: List[str] = []
    if label:
        lines.append(label)
    bar_width = max(len(str(int(c))) for c in counts) if counts.size else 1
    for i, c in enumerate(counts):
        bar = "#" * max(0, round(width * int(c) / peak))
        lines.append(
            f"[{edges[i]:>7.3f}, {edges[i+1]:>7.3f}) {bar:<{width}} ({int(c):>{bar_width}})"
        )
    return "\n".join(lines)


def ascii_series(
    values: Sequence[float],
    height: int = 10,
    width: int = 70,
    label: str = "",
) -> str:
    """Line-ish plot of a numeric series using a character grid."""
    values = [float(v) for v in values]
    if not values:
        raise ConfigurationError("cannot plot an empty series")
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    n = len(values)
    # Downsample/stretch to the plot width.
    cols = min(width, n)
    idx = np.linspace(0, n - 1, cols).round().astype(int)
    sampled = [values[i] for i in idx]
    grid = [[" "] * cols for _ in range(height)]
    for c, v in enumerate(sampled):
        row = height - 1 - int(round((v - lo) / span * (height - 1)))
        grid[row][c] = "*"
    lines: List[str] = []
    if label:
        lines.append(label)
    lines.append(f"max={hi:.4g}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * cols)
    lines.append(f"min={lo:.4g}   n={n}")
    return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Aligned plain-text table.

    >>> print(render_table(["a", "b"], [[1, "x"]]))
    a  b
    -  -
    1  x
    """
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
