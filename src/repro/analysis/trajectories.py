"""Trajectory analyses over lifetime results (Fig. 10/11)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.results import LifetimeResult
from repro.mapping.network import MappedNetwork


def iteration_knee(
    iterations: Sequence[int], factor: float = 2.0, floor: float = 25.0
) -> int:
    """Index of the failure knee in an iteration-count series.

    The knee is the first window whose iteration count exceeds **both**
    ``factor`` times the median of the preceding windows and the
    absolute ``floor`` (Fig. 10's sudden increase).  The floor keeps
    ordinary maintenance noise — e.g. a 10-iteration window after a
    string of zeros — from registering as a knee.  Returns
    ``len(iterations)`` when no knee exists.
    """
    iterations = list(iterations)
    for i, value in enumerate(iterations):
        history = iterations[:i]
        median = float(np.median(history)) if history else 0.0
        threshold = max(factor * max(median, 1.0), floor)
        if value > threshold:
            return i
    return len(iterations)


def layer_type_aging(
    result: LifetimeResult, network: MappedNetwork
) -> Dict[str, List[float]]:
    """Average aged upper bound per *layer type* over windows (Fig. 11).

    Groups the per-layer traces of ``result`` into ``"conv"`` and
    ``"dense"`` using the mapped network's layer kinds, weighting each
    layer by its device count.
    """
    kind_of = {m.layer_index: m.kind for m in network.layers}
    size_of = {
        m.layer_index: m.matrix_shape[0] * m.matrix_shape[1] for m in network.layers
    }
    traces = result.layer_aging_trace()
    out: Dict[str, List[float]] = {}
    n_windows = len(result.windows)
    for kind in ("conv", "dense"):
        members = [idx for idx in traces if kind_of.get(idx) == kind]
        if not members:
            continue
        weights = np.array([size_of[idx] for idx in members], dtype=np.float64)
        series = []
        for w in range(n_windows):
            values = np.array([traces[idx][w] for idx in members])
            series.append(float(np.average(values, weights=weights)))
        out[kind] = series
    return out
