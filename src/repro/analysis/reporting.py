"""Markdown report generation from experiment results.

Turns :class:`~repro.core.results.ScenarioComparison` objects (and
per-scenario traces) into a self-contained Markdown document — the
artefact a user hands to colleagues after running the reproduction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.trajectories import iteration_knee
from repro.core.results import LifetimeResult, ScenarioComparison
from repro.exceptions import ConfigurationError


def _md_table(headers: List[str], rows: Iterable[List[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def scenario_section(result: LifetimeResult) -> str:
    """Markdown section for one scenario's lifetime trajectory."""
    trace = result.iteration_trace()
    knee = iteration_knee(trace)
    lines = [
        f"### Scenario `{result.scenario_key.upper()}`",
        "",
        f"* software accuracy: **{result.software_accuracy:.3f}**"
        f" (tuning target {result.target_accuracy:.3f})",
        f"* lifetime: **{result.lifetime_applications:,} applications**"
        f" over {len(result.windows)} windows"
        f" ({'failed' if result.failed else 'horizon reached'})",
        f"* failure knee at window {knee}/{len(trace)}"
        if knee < len(trace)
        else "* no failure knee within the horizon",
    ]
    if result.windows:
        last = result.windows[-1]
        lines.append(
            f"* end state: {last.pulses_total:,} total pulses, "
            f"{last.dead_fraction:.1%} dead devices"
        )
    return "\n".join(lines)


def comparison_report(
    comparison: ScenarioComparison,
    title: Optional[str] = None,
) -> str:
    """Full Markdown report for a scenario comparison.

    Raises if the comparison is empty (nothing to report).
    """
    if not comparison.results:
        raise ConfigurationError("comparison has no results to report")
    title = title or f"Lifetime comparison — {comparison.workload}"
    base_key = comparison.baseline_key
    rows = []
    for key, result in comparison.results.items():
        ratio = comparison.improvement(key)
        rows.append(
            [
                f"`{key.upper()}`",
                f"{result.software_accuracy:.3f}",
                f"{result.lifetime_applications:,}",
                f"{ratio:.1f}x" if ratio is not None else "-",
            ]
        )
    parts = [
        f"# {title}",
        "",
        f"Workload: **{comparison.workload}** — baseline scenario `{base_key.upper()}`.",
        "",
        _md_table(["scenario", "software acc", "lifetime (apps)", "vs baseline"], rows),
        "",
    ]
    for result in comparison.results.values():
        parts.append(scenario_section(result))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
