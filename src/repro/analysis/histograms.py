"""Weight/resistance/conductance distribution extraction (Fig. 3/6/9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mapping.linear import LinearWeightMapping
from repro.training.skewed import distribution_skewness


@dataclass
class DistributionSummary:
    """Moments + skewness of a sample, for table output."""

    mean: float
    std: float
    minimum: float
    maximum: float
    skewness: float
    n: int


def summarize_distribution(values: np.ndarray) -> DistributionSummary:
    """Summary statistics of a flat sample."""
    v = np.asarray(values, dtype=np.float64).ravel()
    if v.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    return DistributionSummary(
        mean=float(v.mean()),
        std=float(v.std()),
        minimum=float(v.min()),
        maximum=float(v.max()),
        skewness=distribution_skewness(v),
        n=int(v.size),
    )


def weight_histogram(
    weights: np.ndarray, bins: int = 40
) -> Tuple[np.ndarray, np.ndarray]:
    """``(bin_edges, counts)`` of a weight sample — Fig. 3(a)/6(a)/9."""
    w = np.asarray(weights, dtype=np.float64).ravel()
    counts, edges = np.histogram(w, bins=bins)
    return edges, counts


def resistance_histogram(
    weights: np.ndarray, mapping: LinearWeightMapping, bins: int = 40
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of the mapped resistances — Fig. 3(b)/6(b)."""
    r = np.asarray(mapping.weight_to_resistance(np.asarray(weights).ravel()))
    counts, edges = np.histogram(r, bins=bins)
    return edges, counts


def conductance_histogram(
    weights: np.ndarray, mapping: LinearWeightMapping, bins: int = 40
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of the mapped conductances — Fig. 3(c)."""
    g = np.asarray(mapping.weight_to_conductance(np.asarray(weights).ravel()))
    counts, edges = np.histogram(g, bins=bins)
    return edges, counts
