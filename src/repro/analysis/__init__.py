"""Analysis and reporting utilities for the benchmark harness."""

from repro.analysis.ascii import ascii_histogram, ascii_series, render_table
from repro.analysis.histograms import (
    DistributionSummary,
    conductance_histogram,
    resistance_histogram,
    summarize_distribution,
    weight_histogram,
)
from repro.analysis.reporting import comparison_report, scenario_section
from repro.analysis.statistics import BootstrapResult, bootstrap_ci, bootstrap_ratio_ci
from repro.analysis.trajectories import iteration_knee, layer_type_aging

__all__ = [
    "BootstrapResult",
    "DistributionSummary",
    "bootstrap_ci",
    "bootstrap_ratio_ci",
    "comparison_report",
    "scenario_section",
    "ascii_histogram",
    "ascii_series",
    "conductance_histogram",
    "iteration_knee",
    "layer_type_aging",
    "render_table",
    "resistance_histogram",
    "summarize_distribution",
    "weight_histogram",
]
