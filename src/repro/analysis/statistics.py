"""Statistics helpers for heavy-tailed lifetime data.

Lifetime experiments produce few, noisy samples.  These helpers provide
the two tools the analysis actually needs: bootstrap confidence
intervals for a statistic of one sample, and for the *ratio of medians*
between two samples (the form every Table-I claim takes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimate:.3g} "
            f"[{self.low:.3g}, {self.high:.3g}] @{self.confidence:.0%}"
        )


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: SeedLike = None,
) -> BootstrapResult:
    """Percentile bootstrap interval for ``statistic`` of ``sample``."""
    data = np.asarray(list(sample), dtype=np.float64)
    if data.size < 2:
        raise ConfigurationError("bootstrap needs at least 2 observations")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if n_boot < 100:
        raise ConfigurationError(f"n_boot must be >= 100, got {n_boot}")
    rng = ensure_rng(seed)
    idx = rng.integers(0, data.size, size=(n_boot, data.size))
    stats = np.apply_along_axis(statistic, 1, data[idx])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(statistic(data)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_ratio_ci(
    numerator: Sequence[float],
    denominator: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: SeedLike = None,
) -> BootstrapResult:
    """Bootstrap interval for ``stat(numerator) / stat(denominator)``.

    This is the quantity behind every "ST+T extends lifetime by N×"
    claim; resampling both groups independently propagates both
    groups' uncertainty.
    """
    num = np.asarray(list(numerator), dtype=np.float64)
    den = np.asarray(list(denominator), dtype=np.float64)
    if num.size < 2 or den.size < 2:
        raise ConfigurationError("bootstrap needs at least 2 observations per group")
    if np.any(den <= 0) or statistic(den) == 0:
        raise ConfigurationError("denominator sample must be positive")
    rng = ensure_rng(seed)
    num_stats = np.apply_along_axis(
        statistic, 1, num[rng.integers(0, num.size, size=(n_boot, num.size))]
    )
    den_stats = np.apply_along_axis(
        statistic, 1, den[rng.integers(0, den.size, size=(n_boot, den.size))]
    )
    ratios = num_stats / np.maximum(den_stats, 1e-300)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(statistic(num) / statistic(den)),
        low=float(np.quantile(ratios, alpha)),
        high=float(np.quantile(ratios, 1.0 - alpha)),
        confidence=confidence,
    )
