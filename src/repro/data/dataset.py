"""Dataset container and split/encoding helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.rng import SeedLike, ensure_rng


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector.

    >>> one_hot(np.array([0, 2]), 3).tolist()
    [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ConfigurationError(
            f"labels out of range [0, {n_classes}): [{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], n_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into ``(x_train, y_train, x_test, y_test)``."""
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if len(x) != len(y):
        raise ShapeError(f"x has {len(x)} samples, y has {len(y)}")
    rng = ensure_rng(seed)
    order = rng.permutation(len(x))
    n_test = max(1, int(round(test_fraction * len(x))))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


@dataclass
class Dataset:
    """A labelled classification dataset with train/test partitions.

    ``x_*`` arrays keep their natural shape (NCHW images or flat
    vectors); ``y_*`` are one-hot.  ``class_names`` is optional metadata
    used in reports.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    class_names: List[str] = field(default_factory=list)
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.x_train) != len(self.y_train):
            raise ShapeError("x_train/y_train length mismatch")
        if len(self.x_test) != len(self.y_test):
            raise ShapeError("x_test/y_test length mismatch")
        if self.y_train.ndim != 2:
            raise ShapeError("y_train must be one-hot (2-D)")

    @property
    def n_classes(self) -> int:
        """Number of classes (width of the one-hot labels)."""
        return int(self.y_train.shape[1])

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Shape of one input sample (no batch dim)."""
        return tuple(self.x_train.shape[1:])

    @property
    def n_train(self) -> int:
        return int(len(self.x_train))

    @property
    def n_test(self) -> int:
        return int(len(self.x_test))

    def batches(
        self, batch_size: int, shuffle: bool = True, seed: SeedLike = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate minibatches of the training partition."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        rng = ensure_rng(seed)
        order = rng.permutation(self.n_train) if shuffle else np.arange(self.n_train)
        for start in range(0, self.n_train, batch_size):
            idx = order[start : start + batch_size]
            yield self.x_train[idx], self.y_train[idx]

    def subset(self, n_train: int, n_test: Optional[int] = None) -> "Dataset":
        """First-``n`` subset (useful for fast tests)."""
        n_test = n_test if n_test is not None else self.n_test
        return Dataset(
            x_train=self.x_train[:n_train],
            y_train=self.y_train[:n_train],
            x_test=self.x_test[:n_test],
            y_test=self.y_test[:n_test],
            class_names=self.class_names,
            name=f"{self.name}[:{n_train}]",
        )

    def normalized(self) -> "Dataset":
        """Zero-mean/unit-std copy using *training* statistics."""
        mean = self.x_train.mean()
        std = self.x_train.std() or 1.0
        return Dataset(
            x_train=(self.x_train - mean) / std,
            y_train=self.y_train,
            x_test=(self.x_test - mean) / std,
            y_test=self.y_test,
            class_names=self.class_names,
            name=self.name,
        )

    def describe(self) -> str:
        """One-line summary used by the benchmark harness."""
        return (
            f"{self.name}: {self.n_train} train / {self.n_test} test, "
            f"{self.n_classes} classes, sample shape {self.sample_shape}"
        )
