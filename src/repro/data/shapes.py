"""Procedural textured-shapes dataset (the VGG-16/Cifar100 stand-in).

Each class is a (shape, texture) pair: one of five geometric masks —
circle, square, triangle, cross, ring — filled with one of four textures
(horizontal, vertical and diagonal stripes, or solid), for 20 classes by
default.  Samples are 16x16 single-channel images with random shape
position/size, texture phase and Gaussian noise.  The larger class count
and the texture/shape factorization make it meaningfully harder than the
glyph digits, mirroring the Cifar10 → Cifar100 difficulty step in the
paper, while remaining solvable by a small VGG-style CNN in minutes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.dataset import Dataset, one_hot, train_test_split
from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, ensure_rng

SHAPES = ("circle", "square", "triangle", "cross", "ring")
TEXTURES = ("hstripe", "vstripe", "diag", "solid")

SHAPE_CLASS_NAMES: List[str] = [f"{s}/{t}" for s in SHAPES for t in TEXTURES]

CANVAS = 16


def _shape_mask(shape: str, cy: float, cx: float, r: float) -> np.ndarray:
    """Boolean mask of the given shape centred at (cy, cx) radius r."""
    yy, xx = np.mgrid[0:CANVAS, 0:CANVAS].astype(np.float64)
    dy, dx = yy - cy, xx - cx
    if shape == "circle":
        return dy * dy + dx * dx <= r * r
    if shape == "square":
        return (np.abs(dy) <= r) & (np.abs(dx) <= r)
    if shape == "triangle":
        # Upward triangle: inside if below the apex lines and above the base.
        return (dy >= -r) & (dy <= r) & (np.abs(dx) <= (dy + r) / 2.0)
    if shape == "cross":
        arm = max(1.0, r / 2.5)
        return ((np.abs(dy) <= arm) & (np.abs(dx) <= r)) | (
            (np.abs(dx) <= arm) & (np.abs(dy) <= r)
        )
    if shape == "ring":
        rr = dy * dy + dx * dx
        inner = max(1.0, r - 2.0)
        return (rr <= r * r) & (rr >= inner * inner)
    raise ConfigurationError(f"unknown shape {shape!r}")


def _texture(texture: str, phase: int, period: int = 3) -> np.ndarray:
    """Texture field over the whole canvas, values in {0.35, 1.0}."""
    yy, xx = np.mgrid[0:CANVAS, 0:CANVAS]
    if texture == "hstripe":
        field = ((yy + phase) // (period // 2 + 1)) % 2
    elif texture == "vstripe":
        field = ((xx + phase) // (period // 2 + 1)) % 2
    elif texture == "diag":
        field = ((yy + xx + phase) // (period // 2 + 1)) % 2
    elif texture == "solid":
        field = np.ones((CANVAS, CANVAS), dtype=np.int64)
    else:
        raise ConfigurationError(f"unknown texture {texture!r}")
    return np.where(field > 0, 1.0, 0.35)


def render_shape(
    class_index: int,
    rng: SeedLike = None,
    noise: float = 0.1,
) -> np.ndarray:
    """Render one ``(1, 16, 16)`` sample of ``class_index``."""
    n_classes = len(SHAPES) * len(TEXTURES)
    if not 0 <= class_index < n_classes:
        raise ConfigurationError(f"class_index must be in [0, {n_classes}), got {class_index}")
    rng = ensure_rng(rng)
    shape = SHAPES[class_index // len(TEXTURES)]
    texture = TEXTURES[class_index % len(TEXTURES)]
    r = float(rng.uniform(3.5, 5.5))
    cy = float(rng.uniform(r, CANVAS - 1 - r))
    cx = float(rng.uniform(r, CANVAS - 1 - r))
    mask = _shape_mask(shape, cy, cx, r)
    field = _texture(texture, phase=int(rng.integers(0, 4)))
    img = np.where(mask, field, 0.0)
    img = img + rng.normal(0.0, noise, size=img.shape)
    return np.clip(img, 0.0, 1.0)[None, :, :]


def make_textured_shapes(
    n_train: int = 3000,
    n_test: int = 600,
    noise: float = 0.1,
    seed: SeedLike = None,
) -> Dataset:
    """Balanced 20-class textured-shapes dataset of ``(1, 16, 16)`` images."""
    n_classes = len(SHAPES) * len(TEXTURES)
    if n_train < n_classes or n_test < n_classes:
        raise ConfigurationError("need at least one sample per class in each split")
    rng = ensure_rng(seed)
    total = n_train + n_test
    labels = np.arange(total) % n_classes
    rng.shuffle(labels)
    x = np.stack([render_shape(int(c), rng, noise=noise) for c in labels])
    y = one_hot(labels, n_classes)
    x_tr, y_tr, x_te, y_te = train_test_split(x, y, test_fraction=n_test / total, seed=rng)
    return Dataset(
        x_tr, y_tr, x_te, y_te, class_names=SHAPE_CLASS_NAMES, name="textured-shapes"
    )
