"""Dataset substrate.

The paper evaluates on Cifar10/Cifar100, which cannot be downloaded in
this offline environment.  This package provides procedurally generated
substitutes that preserve the properties the paper's method relies on:

* image classification workloads that train to a quasi-normal weight
  distribution (the starting point of the skewed-training argument);
* a *small/easy* task (:func:`make_glyph_digits`, 10 classes — the
  LeNet-5/Cifar10 role) and a *harder, more-classes* task
  (:func:`make_textured_shapes` — the VGG-16/Cifar100 role);
* laptop-scale sizes so the full lifetime simulations run in minutes on
  one CPU core.

Toy vector datasets (blobs, spirals, XOR, rings) support the unit tests
and the quickstart example.
"""

from repro.data.dataset import Dataset, one_hot, train_test_split
from repro.data.glyphs import GLYPH_CLASS_NAMES, make_glyph_digits, render_glyph
from repro.data.shapes import SHAPE_CLASS_NAMES, make_textured_shapes, render_shape
from repro.data.synthetic import make_blobs, make_rings, make_spirals, make_xor

__all__ = [
    "Dataset",
    "GLYPH_CLASS_NAMES",
    "SHAPE_CLASS_NAMES",
    "make_blobs",
    "make_glyph_digits",
    "make_rings",
    "make_spirals",
    "make_textured_shapes",
    "make_xor",
    "one_hot",
    "render_glyph",
    "render_shape",
    "train_test_split",
]
