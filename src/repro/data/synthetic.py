"""Toy vector datasets for unit tests and quick demos."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset, one_hot, train_test_split
from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, ensure_rng


def _to_dataset(
    x: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    name: str,
    test_fraction: float,
    rng: np.random.Generator,
) -> Dataset:
    y = one_hot(labels, n_classes)
    x_tr, y_tr, x_te, y_te = train_test_split(x, y, test_fraction, rng)
    return Dataset(x_tr, y_tr, x_te, y_te, name=name)


def make_blobs(
    n_samples: int = 300,
    n_classes: int = 3,
    n_features: int = 2,
    spread: float = 0.5,
    test_fraction: float = 0.25,
    seed: SeedLike = None,
) -> Dataset:
    """Isotropic Gaussian clusters, one per class."""
    if n_classes < 2:
        raise ConfigurationError(f"need >= 2 classes, got {n_classes}")
    rng = ensure_rng(seed)
    centers = rng.uniform(-3.0, 3.0, size=(n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_samples)
    x = centers[labels] + rng.normal(0.0, spread, size=(n_samples, n_features))
    return _to_dataset(x, labels, n_classes, "blobs", test_fraction, rng)


def make_spirals(
    n_samples: int = 300,
    n_classes: int = 2,
    noise: float = 0.1,
    turns: float = 1.5,
    test_fraction: float = 0.25,
    seed: SeedLike = None,
) -> Dataset:
    """Interleaved 2-D spirals (a classic nonlinear benchmark)."""
    rng = ensure_rng(seed)
    per_class = n_samples // n_classes
    xs, labels = [], []
    for c in range(n_classes):
        t = np.linspace(0.1, 1.0, per_class)
        angle = turns * 2 * np.pi * t + 2 * np.pi * c / n_classes
        r = t
        pts = np.stack([r * np.cos(angle), r * np.sin(angle)], axis=1)
        pts += rng.normal(0.0, noise, size=pts.shape)
        xs.append(pts)
        labels.append(np.full(per_class, c, dtype=np.int64))
    x = np.concatenate(xs)
    labels = np.concatenate(labels)
    return _to_dataset(x, labels, n_classes, "spirals", test_fraction, rng)


def make_xor(
    n_samples: int = 200,
    noise: float = 0.1,
    test_fraction: float = 0.25,
    seed: SeedLike = None,
) -> Dataset:
    """2-class XOR: quadrant parity with Gaussian jitter."""
    rng = ensure_rng(seed)
    x = rng.uniform(-1.0, 1.0, size=(n_samples, 2))
    labels = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
    x = x + rng.normal(0.0, noise, size=x.shape)
    return _to_dataset(x, labels, 2, "xor", test_fraction, rng)


def make_rings(
    n_samples: int = 300,
    n_classes: int = 3,
    noise: float = 0.05,
    test_fraction: float = 0.25,
    seed: SeedLike = None,
) -> Dataset:
    """Concentric rings, one radius band per class."""
    rng = ensure_rng(seed)
    labels = rng.integers(0, n_classes, size=n_samples)
    radius = (labels + 1).astype(np.float64) + rng.normal(0.0, noise, n_samples)
    angle = rng.uniform(0.0, 2 * np.pi, n_samples)
    x = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
    return _to_dataset(x, labels, n_classes, "rings", test_fraction, rng)
