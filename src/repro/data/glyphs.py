"""Procedural digit-glyph image dataset (the MNIST/Cifar10 stand-in).

Each sample is a 12x12 grayscale image (NCHW, one channel) of a 5x7
digit glyph placed at a random offset, with random stroke intensity,
pixel dropout, optional blur and Gaussian noise.  Ten classes, laptop
scale, nontrivial (augmentations overlap the classes), and — the
property the paper relies on — CNNs trained on it end up with
quasi-normal weight distributions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.dataset import Dataset, one_hot, train_test_split
from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, ensure_rng

GLYPH_CLASS_NAMES: List[str] = [str(d) for d in range(10)]

# 5x7 bitmap font for digits 0-9 (rows top to bottom).
_FONT = {
    0: ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    1: ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    2: ["01110", "10001", "00001", "00010", "00100", "01000", "11111"],
    3: ["11111", "00010", "00100", "00010", "00001", "10001", "01110"],
    4: ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    5: ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    6: ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    7: ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    8: ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    9: ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
}

GLYPH_H, GLYPH_W = 7, 5
CANVAS = 12

_BLUR_KERNEL = np.array([[0.05, 0.1, 0.05], [0.1, 0.4, 0.1], [0.05, 0.1, 0.05]])


def _glyph_bitmap(digit: int) -> np.ndarray:
    rows = _FONT[digit]
    return np.array([[float(c) for c in row] for row in rows])


def _blur(img: np.ndarray) -> np.ndarray:
    """3x3 normalized blur with zero padding."""
    padded = np.pad(img, 1)
    out = np.zeros_like(img)
    for di in range(3):
        for dj in range(3):
            out += _BLUR_KERNEL[di, dj] * padded[di : di + img.shape[0], dj : dj + img.shape[1]]
    return out


def render_glyph(
    digit: int,
    rng: SeedLike = None,
    noise: float = 0.08,
    dropout: float = 0.05,
    blur_prob: float = 0.5,
) -> np.ndarray:
    """Render one augmented digit image of shape ``(1, 12, 12)``.

    Augmentations: random placement on the canvas, per-sample stroke
    intensity, random pixel dropout on the stroke, optional blur, and
    additive Gaussian noise, clipped to ``[0, 1]``.
    """
    if digit not in _FONT:
        raise ConfigurationError(f"digit must be 0-9, got {digit}")
    rng = ensure_rng(rng)
    canvas = np.zeros((CANVAS, CANVAS), dtype=np.float64)
    bitmap = _glyph_bitmap(digit)
    dy = int(rng.integers(0, CANVAS - GLYPH_H + 1))
    dx = int(rng.integers(0, CANVAS - GLYPH_W + 1))
    stroke = float(rng.uniform(0.7, 1.0))
    keep = rng.random(bitmap.shape) >= dropout
    canvas[dy : dy + GLYPH_H, dx : dx + GLYPH_W] = bitmap * keep * stroke
    if rng.random() < blur_prob:
        canvas = _blur(canvas)
    canvas = canvas + rng.normal(0.0, noise, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)[None, :, :]


def make_glyph_digits(
    n_train: int = 2000,
    n_test: int = 500,
    noise: float = 0.08,
    dropout: float = 0.05,
    seed: SeedLike = None,
) -> Dataset:
    """Balanced 10-class digit dataset of ``(1, 12, 12)`` images."""
    if n_train < 10 or n_test < 10:
        raise ConfigurationError("need at least one sample per class in each split")
    rng = ensure_rng(seed)
    total = n_train + n_test
    labels = np.arange(total) % 10
    rng.shuffle(labels)
    x = np.stack(
        [render_glyph(int(d), rng, noise=noise, dropout=dropout) for d in labels]
    )
    y = one_hot(labels, 10)
    x_tr, y_tr, x_te, y_te = train_test_split(
        x, y, test_fraction=n_test / total, seed=rng
    )
    return Dataset(x_tr, y_tr, x_te, y_te, class_names=GLYPH_CLASS_NAMES, name="glyph-digits")
