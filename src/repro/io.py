"""Persistence: model weights, experiment results and the result cache.

* Model weights go to ``.npz`` (exact float64 round trip).
* Lifetime results, sweep results and scenario comparisons go to JSON,
  so downstream analysis (or the paper tables) can be regenerated
  without re-running multi-minute simulations.
* :func:`save_json_atomic` / :func:`load_json` back the execution
  engine's on-disk result cache (:class:`repro.core.executor.ResultCache`):
  writes go through a same-directory temp file + ``os.replace`` so a
  killed worker can never leave a truncated cache entry behind.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import time
from typing import Any, Iterator, Union

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback path
    _fcntl = None

import numpy as np

from repro.core.results import LifetimeResult, ScenarioComparison, WindowRecord
from repro.exceptions import ConfigurationError, CorruptStateError, ShapeError
from repro.nn.model import Sequential

PathLike = Union[str, pathlib.Path]


# -- generic JSON persistence (cache backend) ---------------------------------
def save_json_atomic(payload: Any, path: PathLike, durable: bool = False) -> None:
    """Write ``payload`` as JSON via an atomic same-directory rename.

    With ``durable=True`` the temp file is fsync'd before the rename (and
    the directory after), so a crash can leave either the old file or the
    complete new one — never a torn write that *looks* committed.  The
    checkpoint subsystem requires this; the result cache does not (a lost
    cache entry is only a re-computation).
    """
    path = pathlib.Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    text = json.dumps(payload, sort_keys=True)
    if durable:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
    else:
        tmp.write_text(text)
    os.replace(tmp, path)
    if durable:
        _fsync_dir(path.parent)


def _guarded_digest(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def save_json_guarded(payload: Any, path: PathLike, durable: bool = True) -> None:
    """Atomically write ``payload`` wrapped with a SHA-256 content hash.

    The campaign service persists its mutable coordination files
    (``leases.json``, ``state.json``) through this wrapper so that *any*
    corruption — a torn write that still parses, bit rot, a hostile
    chaos test — is detected at load time instead of being acted on.
    """
    save_json_atomic(
        {"sha256": _guarded_digest(payload), "payload": payload},
        path,
        durable=durable,
    )


def load_json_guarded(path: PathLike) -> Any:
    """Read a document written by :func:`save_json_guarded`.

    Raises :class:`~repro.exceptions.CorruptStateError` when the file
    does not parse, is not a guarded document, or fails its checksum —
    one exception type for callers that rebuild from a better source.
    """
    path = pathlib.Path(path)
    try:
        document = load_json(path)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CorruptStateError(f"{path} does not parse: {exc}") from exc
    if not isinstance(document, dict) or "payload" not in document:
        raise CorruptStateError(f"{path} is not a guarded JSON document")
    if _guarded_digest(document["payload"]) != document.get("sha256"):
        raise CorruptStateError(f"{path} failed its content checksum")
    return document["payload"]


@contextlib.contextmanager
def file_lock(path: PathLike, timeout: float = 30.0) -> Iterator[None]:
    """Exclusive advisory lock guarding cross-process read-modify-write.

    The multi-worker campaign service serializes journal appends and
    lease-table updates through these locks.  On POSIX the lock is
    ``flock`` on ``path`` itself (created empty if missing) — released
    automatically when the holder dies, so a killed worker can never
    wedge its fleet.  Elsewhere a best-effort ``O_CREAT|O_EXCL`` spin
    lock is used, with ``timeout`` bounding the wait (a stale lock file
    older than the timeout is broken rather than waited on forever).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if _fcntl is None:  # pragma: no cover - platforms without fcntl
        with _spin_lock(path, timeout):
            yield
        return
    fd = os.open(path, os.O_RDWR | os.O_CREAT)
    try:
        _fcntl.flock(fd, _fcntl.LOCK_EX)
        yield
    finally:
        try:
            _fcntl.flock(fd, _fcntl.LOCK_UN)
        finally:
            os.close(fd)


@contextlib.contextmanager
def _spin_lock(path: pathlib.Path, timeout: float):  # pragma: no cover
    """``O_CREAT|O_EXCL`` fallback lock for platforms without ``flock``."""
    spin = pathlib.Path(f"{path}.excl")
    deadline = time.monotonic() + timeout
    while True:
        try:
            fd = os.open(spin, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
            break
        except FileExistsError:
            if time.monotonic() > deadline:
                try:  # break a stale lock left by a dead holder
                    if time.time() - spin.stat().st_mtime > timeout:
                        spin.unlink(missing_ok=True)
                        continue
                except OSError:
                    pass
                raise TimeoutError(f"could not acquire lock {spin}")
            time.sleep(0.01)
    try:
        yield
    finally:
        spin.unlink(missing_ok=True)


def _fsync_dir(directory: pathlib.Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. non-POSIX directory handles
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load_json(path: PathLike) -> Any:
    """Read a JSON document (raises on missing/corrupt files)."""
    return json.loads(pathlib.Path(path).read_text())


# -- model weights ------------------------------------------------------------
def save_weights(model: Sequential, path: PathLike) -> None:
    """Save every layer's parameters to an ``.npz`` archive."""
    arrays = {}
    for i, layer in enumerate(model.layers):
        for name, value in layer.params.items():
            arrays[f"layer{i}.{name}"] = value
    np.savez(path, **arrays)


def load_weights(model: Sequential, path: PathLike) -> Sequential:
    """Restore parameters saved by :func:`save_weights` (in place).

    The model must have the same architecture (same layer parameter
    names and shapes).
    """
    with np.load(path) as archive:
        for i, layer in enumerate(model.layers):
            for name, param in layer.params.items():
                key = f"layer{i}.{name}"
                if key not in archive:
                    raise ConfigurationError(f"archive missing parameter {key!r}")
                value = archive[key]
                if value.shape != param.shape:
                    raise ShapeError(
                        f"{key}: archive shape {value.shape} != model {param.shape}"
                    )
                param[...] = value
    return model


# -- lifetime results ----------------------------------------------------------
def _window_to_dict(w: WindowRecord) -> dict:
    return w.to_dict()


def _window_from_dict(d: dict) -> WindowRecord:
    return WindowRecord.from_dict(d)


def result_to_dict(result: LifetimeResult) -> dict:
    """JSON-ready dict of a lifetime result."""
    return result.to_dict()


def result_from_dict(d: dict) -> LifetimeResult:
    """Inverse of :func:`result_to_dict`."""
    return LifetimeResult.from_dict(d)


def save_result(result: LifetimeResult, path: PathLike) -> None:
    """Write a lifetime result to JSON."""
    pathlib.Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: PathLike) -> LifetimeResult:
    """Read a lifetime result from JSON."""
    return result_from_dict(json.loads(pathlib.Path(path).read_text()))


def save_comparison(comparison: ScenarioComparison, path: PathLike) -> None:
    """Write a scenario comparison to JSON."""
    payload = {
        "workload": comparison.workload,
        "baseline_key": comparison.baseline_key,
        "results": {k: result_to_dict(r) for k, r in comparison.results.items()},
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def save_sweep_result(result, path: PathLike) -> None:
    """Write a :class:`repro.core.sweep.SweepResult` to JSON."""
    save_json_atomic(result.to_dict(), path)


def load_sweep_result(path: PathLike):
    """Read a :class:`repro.core.sweep.SweepResult` from JSON."""
    from repro.core.sweep import SweepResult

    return SweepResult.from_dict(load_json(path))


def load_comparison(path: PathLike) -> ScenarioComparison:
    """Read a scenario comparison from JSON."""
    payload = json.loads(pathlib.Path(path).read_text())
    comparison = ScenarioComparison(
        workload=str(payload["workload"]),
        baseline_key=str(payload.get("baseline_key", "t+t")),
    )
    for key, d in payload.get("results", {}).items():
        comparison.results[key] = result_from_dict(d)
    return comparison
