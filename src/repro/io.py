"""Persistence: model weights and experiment results.

* Model weights go to ``.npz`` (exact float64 round trip).
* Lifetime results and scenario comparisons go to JSON, so downstream
  analysis (or the paper tables) can be regenerated without re-running
  multi-minute simulations.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from repro.core.results import LifetimeResult, ScenarioComparison, WindowRecord
from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.model import Sequential

PathLike = Union[str, pathlib.Path]


# -- model weights ------------------------------------------------------------
def save_weights(model: Sequential, path: PathLike) -> None:
    """Save every layer's parameters to an ``.npz`` archive."""
    arrays = {}
    for i, layer in enumerate(model.layers):
        for name, value in layer.params.items():
            arrays[f"layer{i}.{name}"] = value
    np.savez(path, **arrays)


def load_weights(model: Sequential, path: PathLike) -> Sequential:
    """Restore parameters saved by :func:`save_weights` (in place).

    The model must have the same architecture (same layer parameter
    names and shapes).
    """
    with np.load(path) as archive:
        for i, layer in enumerate(model.layers):
            for name, param in layer.params.items():
                key = f"layer{i}.{name}"
                if key not in archive:
                    raise ConfigurationError(f"archive missing parameter {key!r}")
                value = archive[key]
                if value.shape != param.shape:
                    raise ShapeError(
                        f"{key}: archive shape {value.shape} != model {param.shape}"
                    )
                param[...] = value
    return model


# -- lifetime results ----------------------------------------------------------
def _window_to_dict(w: WindowRecord) -> dict:
    return {
        "window_index": w.window_index,
        "applications_total": w.applications_total,
        "tuning_iterations": w.tuning_iterations,
        "converged": w.converged,
        "accuracy_after": w.accuracy_after,
        "pulses_total": w.pulses_total,
        "dead_fraction": w.dead_fraction,
        "aged_upper_by_layer": {str(k): v for k, v in w.aged_upper_by_layer.items()},
    }


def _window_from_dict(d: dict) -> WindowRecord:
    return WindowRecord(
        window_index=int(d["window_index"]),
        applications_total=int(d["applications_total"]),
        tuning_iterations=int(d["tuning_iterations"]),
        converged=bool(d["converged"]),
        accuracy_after=float(d["accuracy_after"]),
        pulses_total=int(d["pulses_total"]),
        dead_fraction=float(d["dead_fraction"]),
        aged_upper_by_layer={int(k): float(v) for k, v in d["aged_upper_by_layer"].items()},
    )


def result_to_dict(result: LifetimeResult) -> dict:
    """JSON-ready dict of a lifetime result."""
    return {
        "scenario_key": result.scenario_key,
        "lifetime_applications": result.lifetime_applications,
        "failed": result.failed,
        "software_accuracy": result.software_accuracy,
        "target_accuracy": result.target_accuracy,
        "windows": [_window_to_dict(w) for w in result.windows],
    }


def result_from_dict(d: dict) -> LifetimeResult:
    """Inverse of :func:`result_to_dict`."""
    return LifetimeResult(
        scenario_key=str(d["scenario_key"]),
        lifetime_applications=int(d["lifetime_applications"]),
        failed=bool(d["failed"]),
        software_accuracy=float(d.get("software_accuracy", 0.0)),
        target_accuracy=float(d.get("target_accuracy", 0.0)),
        windows=[_window_from_dict(w) for w in d.get("windows", [])],
    )


def save_result(result: LifetimeResult, path: PathLike) -> None:
    """Write a lifetime result to JSON."""
    pathlib.Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: PathLike) -> LifetimeResult:
    """Read a lifetime result from JSON."""
    return result_from_dict(json.loads(pathlib.Path(path).read_text()))


def save_comparison(comparison: ScenarioComparison, path: PathLike) -> None:
    """Write a scenario comparison to JSON."""
    payload = {
        "workload": comparison.workload,
        "baseline_key": comparison.baseline_key,
        "results": {k: result_to_dict(r) for k, r in comparison.results.items()},
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_comparison(path: PathLike) -> ScenarioComparison:
    """Read a scenario comparison from JSON."""
    payload = json.loads(pathlib.Path(path).read_text())
    comparison = ScenarioComparison(
        workload=str(payload["workload"]),
        baseline_key=str(payload.get("baseline_key", "t+t")),
    )
    for key, d in payload.get("results", {}).items():
        comparison.results[key] = result_from_dict(d)
    return comparison
