"""Row-swapping wear levelling (paper ref [12]).

Cai et al. extend training-in-memory lifetime by letting lightly-aged
rows take over for heavily-aged ones.  The hardware realization is a
row-routing permutation: logical weight row *i* is stored on physical
row ``perm[i]``, and the input wiring follows the permutation, so the
computation is unchanged while the programming traffic lands on
different devices.

:class:`RowSwapper` implements the maintenance step for a
:class:`~repro.mapping.network.MappedLayer`: rank physical rows by
accumulated stress, and swap the hottest rows with the coldest ones
whenever their stress differs by more than ``threshold`` of the hottest
row's stress.  Swapping is *logical*: the layer's row permutation is
updated and both rows are reprogrammed to their (new) targets at the
next mapping.

This is the "gross granularity" the paper contrasts with: whole rows
move, no individual device is spared, and every swap costs a full
reprogram of two rows.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


class RowSwapper:
    """Wear-levelling row permutations for mapped layers."""

    def __init__(self, max_swaps_per_cycle: int = 4, threshold: float = 0.25) -> None:
        if max_swaps_per_cycle < 1:
            raise ConfigurationError(
                f"max_swaps_per_cycle must be >= 1, got {max_swaps_per_cycle}"
            )
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(f"threshold must be in [0, 1], got {threshold}")
        self.max_swaps_per_cycle = int(max_swaps_per_cycle)
        self.threshold = float(threshold)
        #: Per-layer-index logical->physical row permutation.
        self.permutations: Dict[int, np.ndarray] = {}
        #: Total swaps performed (diagnostics).
        self.total_swaps = 0

    def permutation_for(self, layer) -> np.ndarray:
        """Current logical→physical permutation for ``layer``."""
        n_rows = layer.matrix_shape[0]
        perm = self.permutations.get(layer.layer_index)
        if perm is None or perm.size != n_rows:
            perm = np.arange(n_rows)
            self.permutations[layer.layer_index] = perm
        return perm

    def row_stress(self, layer) -> np.ndarray:
        """Mean accumulated stress per *physical* row of ``layer``."""
        stress = np.empty(layer.matrix_shape, dtype=np.float64)
        for rs, cs, tile in layer.tiles.iter_tiles():
            stress[rs, cs] = tile.stress_time
        return stress.mean(axis=1)

    def plan_swaps(self, layer) -> List[Tuple[int, int]]:
        """Hot/cold physical row pairs worth swapping this cycle."""
        stress = self.row_stress(layer)
        order = np.argsort(stress)
        swaps: List[Tuple[int, int]] = []
        n = stress.size
        for k in range(min(self.max_swaps_per_cycle, n // 2)):
            cold, hot = int(order[k]), int(order[n - 1 - k])
            if stress[hot] <= 0:
                break
            if (stress[hot] - stress[cold]) / stress[hot] < self.threshold:
                break
            swaps.append((hot, cold))
        return swaps

    def maintain(self, layer) -> int:
        """Update ``layer``'s permutation; returns the number of swaps.

        Call between windows, *before* remapping: the next ``program``
        then writes each logical row onto its new physical row.
        """
        perm = self.permutation_for(layer).copy()
        swaps = self.plan_swaps(layer)
        inverse = np.argsort(perm)  # physical -> logical
        for hot, cold in swaps:
            li, lj = int(inverse[hot]), int(inverse[cold])
            perm[li], perm[lj] = perm[lj], perm[li]
            inverse[hot], inverse[cold] = lj, li
        self.permutations[layer.layer_index] = perm
        self.total_swaps += len(swaps)
        return len(swaps)

    def apply_to_network(self, network) -> int:
        """Maintenance for every mapped layer of ``network``.

        Usable directly as a
        :class:`~repro.core.lifetime.LifetimeSimulator` maintenance
        hook.  Returns the number of swaps performed this cycle.
        """
        swaps = 0
        for layer in network.layers:
            swaps += self.maintain(layer)
            layer.set_row_permutation(self.permutations[layer.layer_index])
        return swaps

    def permuted_targets(self, layer, targets: np.ndarray) -> np.ndarray:
        """Reorder logical-row ``targets`` onto physical rows."""
        perm = self.permutation_for(layer)
        out = np.empty_like(targets)
        out[perm] = targets
        return out

    def unpermute_matrix(self, layer, physical: np.ndarray) -> np.ndarray:
        """Read-back: physical-row matrix → logical-row matrix."""
        perm = self.permutation_for(layer)
        return physical[perm]
