"""Counter-aging baselines from the paper's related work (Section I).

The paper positions its framework against three prior mitigation
families and argues they act "with a gross granularity" or cost extra
hardware.  To make that comparison runnable, this package implements
behavioural models of each:

* :class:`PulseShaping` — programming with triangular/sinusoidal
  voltage waveforms (paper ref [9]): the average applied voltage is
  lower, so each pulse stresses less, but reaching the target takes
  more pulses.
* :class:`SeriesResistor` — a resistor in series with each cell (paper
  ref [11]) suppresses irregular voltage overshoot: write noise and
  stress drop, at the cost of a compressed usable conductance range
  (part of the voltage headroom is lost across the resistor).
* :class:`RowSwapper` — wear levelling by swapping heavily-aged rows
  with lightly-aged rows (paper ref [12]): a logical row permutation
  per layer, realized in routing, that spreads programming stress.

All three compose with the lifetime engine, so
``benchmarks/test_ext_mitigation_comparison.py`` can put them on the
same axis as the paper's ST/AT techniques.
"""

from repro.mitigation.pulse_shaping import PULSE_SHAPES, PulseShaping
from repro.mitigation.row_swap import RowSwapper
from repro.mitigation.series_resistor import SeriesResistor

__all__ = ["PULSE_SHAPES", "PulseShaping", "RowSwapper", "SeriesResistor"]
