"""Series-resistor endurance protection (paper ref [11]).

Kim et al. add a resistor in series with each TaOx cell so that sudden
drops of the cell resistance during SET do not produce current
overshoot: the divider limits the worst-case current and improves both
variability and endurance.  Costs: the divider eats voltage headroom,
which compresses the usable conductance range, and the extra resistance
appears in every read.

Behavioural model with series resistance ``r_s``:

* the minimum reachable cell resistance rises — the controller cannot
  push the cell below a state where the divider still leaves enough
  programming voltage, modelled as ``r_min' = r_min + r_s``;
* write noise shrinks by ``r_min / (r_min + r_s)`` (overshoot
  suppression);
* the per-pulse stress at resistance ``R`` is evaluated against the
  *total* path resistance ``R + r_s`` (the divider limits the current).

The last effect is folded in by keeping the quadratic current exponent
but measuring stress with the shifted ``r_min'`` — which the modified
config does automatically since ``stress_factor`` normalizes at its own
``r_min``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.device.config import DeviceConfig
from repro.exceptions import ConfigurationError


class SeriesResistor:
    """Fold a per-cell series resistor into a device class."""

    def __init__(self, r_series: float) -> None:
        if r_series < 0:
            raise ConfigurationError(f"r_series must be >= 0, got {r_series}")
        self.r_series = float(r_series)

    def apply(self, config: DeviceConfig) -> DeviceConfig:
        """Return a copy of ``config`` with the divider's effects.

        The worst-case power dissipated *in the cell* drops by
        ``(r_min / (r_min + r_s))^2`` (voltage divider at the
        low-resistance state); this is folded into the effective pulse
        width with the Arrhenius calibration frozen at the unprotected
        device, so the protection shows up as slower stress
        accumulation — same pattern as
        :class:`~repro.mitigation.pulse_shaping.PulseShaping`.
        """
        if self.r_series == 0.0:
            return replace(config)
        r_min = config.r_min + self.r_series
        r_max = config.r_max + self.r_series
        if r_max <= r_min:
            raise ConfigurationError("series resistor collapsed the window")
        noise_scale = config.r_min / r_min
        power_scale = (config.r_min / r_min) ** 2
        bare_calibration = config.make_aging_model().params
        return replace(
            config,
            r_min=r_min,
            r_max=r_max,
            write_noise=config.write_noise * noise_scale,
            pulse_width=config.pulse_width * power_scale,
            aging_params=bare_calibration,
        )

    def conductance_compression(self, config: DeviceConfig) -> float:
        """Fraction of the fresh conductance span that survives.

        The divider compresses ``[1/r_max, 1/r_min]``; this returns the
        protected span over the unprotected one (< 1).
        """
        g_span = 1.0 / config.r_min - 1.0 / config.r_max
        protected = self.apply(config)
        g_span_p = 1.0 / protected.r_min - 1.0 / protected.r_max
        return float(g_span_p / g_span)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeriesResistor(r_series={self.r_series:g})"
