"""Programming-pulse shaping (paper ref [9]).

Chen et al. observed that triangular and sinusoidal programming
waveforms age memristors less than constant (DC) pulses because the
*average* applied voltage — and therefore the average dissipated power —
is lower.  The flip side is programming speed: a lower average drive
moves the filament less per pulse, so reaching a target state takes
more pulses.

Behavioural model: a shaped pulse contributes ``stress_scale`` of a DC
pulse's stress but only ``1/pulses_per_op`` of its programming action,
i.e. every logical program/tune operation issues ``pulses_per_op``
physical pulses.  For a triangular wave the average of ``|V|`` is half
the peak, so the average power scale is roughly ``(1/2)^2`` relative to
a DC pulse at peak voltage (with the quadratic stress exponent of
:class:`~repro.device.config.DeviceConfig`); a sinusoid averages
``2/pi`` of peak.

The net endurance win per operation is
``benefit = 1 / (stress_scale * pulses_per_op)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.device.config import DeviceConfig
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PulseShape:
    """Stress/speed trade of one waveform."""

    name: str
    #: Per-pulse stress relative to a DC pulse at the same peak voltage.
    stress_scale: float
    #: Physical pulses needed per logical programming operation.
    pulses_per_op: int

    def __post_init__(self) -> None:
        if not 0.0 < self.stress_scale <= 1.0:
            raise ConfigurationError(
                f"stress_scale must be in (0, 1], got {self.stress_scale}"
            )
        if self.pulses_per_op < 1:
            raise ConfigurationError(
                f"pulses_per_op must be >= 1, got {self.pulses_per_op}"
            )

    @property
    def net_benefit(self) -> float:
        """Endurance gain per logical operation vs DC (>1 is a win)."""
        return 1.0 / (self.stress_scale * self.pulses_per_op)


#: The waveforms of ref [9].  Average-|V| heuristics: triangular = V/2,
#: sinusoidal = 2V/pi; power scales quadratically.
PULSE_SHAPES: Dict[str, PulseShape] = {
    "dc": PulseShape("dc", stress_scale=1.0, pulses_per_op=1),
    "triangular": PulseShape("triangular", stress_scale=0.25, pulses_per_op=2),
    "sinusoidal": PulseShape("sinusoidal", stress_scale=0.41, pulses_per_op=2),
}


class PulseShaping:
    """Apply a pulse shape to a device class.

    Produces a modified :class:`DeviceConfig` whose *effective* stress
    accounting folds the waveform in: the per-operation stress becomes
    ``pulse_width * stress_scale * pulses_per_op`` (each logical
    operation still counts as ``pulses_per_op`` pulses against any
    pulse-count budget).

    The endurance calibration target (``pulses_to_collapse``) is defined
    for DC pulses and left untouched — the shaped waveform's benefit
    shows up as slower stress accumulation.
    """

    def __init__(self, shape: str | PulseShape = "triangular") -> None:
        if isinstance(shape, str):
            try:
                shape = PULSE_SHAPES[shape]
            except KeyError:
                raise ConfigurationError(
                    f"unknown pulse shape {shape!r}; choose from {sorted(PULSE_SHAPES)}"
                ) from None
        self.shape = shape

    def apply(self, config: DeviceConfig) -> DeviceConfig:
        """Return a copy of ``config`` with the waveform folded in.

        The returned config's ``pulse_width`` is rescaled so that one
        *logical* operation (what the crossbar counts as one pulse)
        carries the shaped waveform's total stress.  The Arrhenius
        calibration is frozen first (computed at the DC pulse width) so
        rescaling the width changes stress *accumulation*, not the
        endurance definition.
        """
        dc_calibrated = config.make_aging_model().params
        effective_width = (
            config.pulse_width * self.shape.stress_scale * self.shape.pulses_per_op
        )
        return replace(config, pulse_width=effective_width, aging_params=dc_calibrated)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PulseShaping({self.shape.name!r})"
