"""Persistent campaign jobs: specs, the on-disk store, and finalization.

A *job* is one fault campaign turned into a durable, restartable unit of
work.  Submitting a :class:`CampaignJobSpec` materializes a directory
under the store root::

    <root>/<job-id>/
        job.json      spec + grid metadata (point names, content-hash keys,
                      lease chunking) — immutable after submit
        state.json    status machine: queued -> running -> done
                      (or cancelled / failed)
        journal.jsonl shared :class:`~repro.core.checkpoint.RunJournal` of
                      completed points (the ground truth of progress)
        leases.json   :class:`~repro.service.scheduler.LeaseBoard` chunk
                      lease table (an optimization, never the correctness
                      mechanism)
        result.json   the finalized ``SurvivabilityReport`` (written once,
                      when every point is journaled)

Job ids are content hashes of the spec, so re-submitting the same
campaign **resumes** it instead of duplicating work — the same
idempotence the result cache gives individual scenario runs.  Any
number of workers (processes today, hosts over a shared filesystem
tomorrow) drain one job through the journal; the finalized report is
assembled from journal entries in grid order, which makes it
bit-identical to a serial :class:`~repro.robustness.FaultCampaign` run
over the same spec.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import logging

from repro.core.checkpoint import RunJournal
from repro.core.executor import ResultCache, adaptive_chunk_size, fingerprint
from repro.core.framework import AgingAwareFramework
from repro.core.presets import PRESETS
from repro.core.results import LifetimeResult
from repro.core.scenarios import SCENARIOS
from repro.exceptions import ConfigurationError, CorruptStateError, ServiceError
from repro.io import (
    file_lock,
    load_json,
    load_json_guarded,
    save_json_atomic,
    save_json_guarded,
)
from repro.robustness.campaign import (
    CampaignPoint,
    FaultCampaign,
    build_grid,
    record_from_result,
)
from repro.robustness.report import SurvivabilityRecord, SurvivabilityReport
from repro.service import chaos
from repro.service.scheduler import DEFAULT_MAX_ATTEMPTS, LeaseBoard, fresh_entry

logger = logging.getLogger(__name__)

#: Job document format version.
JOB_SCHEMA = 1

#: Terminal job states (no further execution happens).
#: ``completed_with_failures`` is the graceful-degradation terminal:
#: every point is resolved, but some only as quarantined failures.
TERMINAL_STATES = ("done", "completed_with_failures", "cancelled", "failed")


def failure_key(point_key: str) -> str:
    """Journal key under which a point's *failure record* is stored.

    Success results live under the point's content-hash key; terminal
    failures (quarantined poison work) live under this derived key, so
    the journal stays the single source of truth for both outcomes
    while a later healthy re-run of the same spec (fresh job directory)
    is still free to succeed.
    """
    return point_key + "#failed"


@dataclass(frozen=True)
class CampaignJobSpec:
    """Everything needed to reconstruct a campaign grid deterministically.

    The spec is the job's identity: its content hash is the job id, and
    every worker rebuilds the identical framework and grid from it, so
    point keys (and therefore journal/cache entries) agree across
    processes and hosts without shipping any Python objects.
    """

    preset: str = "blobs-mini"
    fast: bool = True
    seed: Optional[int] = None
    scenario: str = "st+at"
    repeat: int = 0
    kinds: Tuple[str, ...] = ("stuck_at",)
    rates: Tuple[float, ...] = (0.005, 0.01, 0.02)
    window: int = 1
    with_degradation: bool = True
    include_baseline: bool = True
    #: Grid points per lease chunk (``None`` = auto from grid size).
    chunk_points: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(self.kinds))
        object.__setattr__(self, "rates", tuple(float(r) for r in self.rates))

    def validate(self) -> None:
        if self.preset not in PRESETS:
            raise ConfigurationError(
                f"unknown preset {self.preset!r}; choose from {sorted(PRESETS)}"
            )
        if self.scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; choose from {sorted(SCENARIOS)}"
            )
        if self.repeat < 0:
            raise ConfigurationError(f"repeat must be >= 0, got {self.repeat}")
        if self.chunk_points is not None and self.chunk_points < 1:
            raise ConfigurationError(
                f"chunk_points must be >= 1 (or None), got {self.chunk_points}"
            )
        self.build_points()  # build_grid validates kinds/rates/window

    def to_dict(self) -> dict:
        return {
            "preset": self.preset,
            "fast": self.fast,
            "seed": self.seed,
            "scenario": self.scenario,
            "repeat": self.repeat,
            "kinds": list(self.kinds),
            "rates": list(self.rates),
            "window": self.window,
            "with_degradation": self.with_degradation,
            "include_baseline": self.include_baseline,
            "chunk_points": self.chunk_points,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignJobSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(d) - known
        if unknown:
            raise ConfigurationError(
                f"unknown job spec field(s): {sorted(unknown)}"
            )
        return cls(**{k: v for k, v in d.items() if k in known})

    def job_id(self) -> str:
        """Deterministic content-hash id: same spec, same job."""
        return "job-" + fingerprint("campaign-job/v1", self.to_dict())[:16]

    def build_framework(self) -> AgingAwareFramework:
        preset = PRESETS[self.preset](fast=self.fast)
        dataset = preset.make_dataset()
        seed = self.seed if self.seed is not None else preset.seed
        return AgingAwareFramework(
            preset.build_network, dataset, preset.framework_config, seed=seed
        )

    def build_points(self) -> List[CampaignPoint]:
        return build_grid(
            kinds=self.kinds,
            rates=self.rates,
            window=self.window,
            with_degradation=self.with_degradation,
            include_baseline=self.include_baseline,
        )

    def build_campaign(self, **kwargs: Any) -> FaultCampaign:
        """Serial-equivalent campaign over this spec (for golden runs)."""
        return FaultCampaign(
            self.build_framework(),
            scenario=self.scenario,
            repeat=self.repeat,
            **kwargs,
        )


@dataclass
class JobStatus:
    """Progress snapshot of one job (JSON-ready via :meth:`to_dict`)."""

    job_id: str
    status: str
    total: int
    done: int
    workload: str
    scenario_key: str
    leases: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    #: Points terminally failed (quarantined poison work).
    failed: int = 0

    def to_dict(self) -> dict:
        out = {
            "job_id": self.job_id,
            "status": self.status,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "workload": self.workload,
            "scenario_key": self.scenario_key,
            "leases": dict(self.leases),
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class JobStore:
    """Directory-backed job registry shared by server and workers.

    All cross-process coordination happens through files: the journal
    (completion ledger), the lease board (work assignment) and the
    state file (status machine, guarded by an advisory lock).  Nothing
    in the store assumes a single writer, so the HTTP server and any
    number of workers can operate on one root concurrently — including
    from different machines over a shared filesystem.
    """

    def __init__(
        self,
        root,
        lease_ttl: float = 60.0,
        max_chunk_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.lease_ttl = float(lease_ttl)
        self.max_chunk_attempts = int(max_chunk_attempts)
        #: Corrupt coordination files rebuilt from the journal by this
        #: instance (lease tables + state files) — observability for
        #: the chaos battery and `/metrics`.
        self.recoveries = 0

    # -- paths -------------------------------------------------------------
    def job_dir(self, job_id: str) -> pathlib.Path:
        return self.root / job_id

    def _job_path(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "job.json"

    def _state_path(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "state.json"

    def _result_path(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "result.json"

    def journal(self, job_id: str) -> RunJournal:
        return RunJournal(self.job_dir(job_id) / "journal.jsonl")

    def leases(self, job_id: str, clock=None) -> LeaseBoard:
        board = LeaseBoard(
            self.job_dir(job_id) / "leases.json",
            ttl=self.lease_ttl,
            clock=clock,
            max_attempts=self.max_chunk_attempts,
            recover=lambda: self._rebuild_lease_chunks(job_id),
        )
        return board

    def _rebuild_lease_chunks(self, job_id: str) -> Dict[str, dict]:
        """Reconstruct lease-table entries from the journal (ground truth).

        Called by the :class:`LeaseBoard` when ``leases.json`` is torn
        or corrupt.  Chunks whose every point succeeded come back
        ``done``; chunks fully resolved but containing failure records
        come back ``quarantined`` (their terminal verdict lives in the
        journal, so corruption cannot resurrect poison work); everything
        else returns to ``pending`` with a fresh attempt budget — the
        worst case is re-execution, never lost or wrong results.
        """
        self.recoveries += 1
        document = self.load(job_id)
        journal = self.journal(job_id)
        entries: Dict[str, dict] = {}
        for chunk_id, chunk in enumerate(document["chunks"]):
            keys = [document["points"][i]["key"] for i in chunk]
            if all(k in journal for k in keys):
                entry = fresh_entry(state="done")
            elif all(
                k in journal or failure_key(k) in journal for k in keys
            ):
                entry = fresh_entry(
                    state="quarantined",
                    error="rebuilt from journal after lease-table corruption",
                )
            else:
                entry = fresh_entry()
            entries[str(chunk_id)] = entry
        return entries

    def cache(self) -> ResultCache:
        """Store-wide result cache shared by every job's workers."""
        return ResultCache(self.root / ".cache")

    # -- submission --------------------------------------------------------
    def submit(self, spec: CampaignJobSpec) -> str:
        """Persist a job; idempotent (same spec resumes the same job)."""
        spec.validate()
        job_id = spec.job_id()
        job_path = self._job_path(job_id)
        if job_path.exists():
            return job_id
        framework = spec.build_framework()
        points = spec.build_points()
        # Keys come from the same fingerprint FaultCampaign uses, so the
        # journal/cache written by service workers is interchangeable
        # with one written by a serial `repro campaign` run.
        campaign = FaultCampaign(
            framework, scenario=spec.scenario, repeat=spec.repeat
        )
        chunk = spec.chunk_points or adaptive_chunk_size(len(points), workers=4)
        chunks = [
            list(range(i, min(i + chunk, len(points))))
            for i in range(0, len(points), chunk)
        ]
        document = {
            "schema": JOB_SCHEMA,
            "job_id": job_id,
            "spec": spec.to_dict(),
            "workload": framework.dataset.name,
            "scenario_key": campaign.scenario.key,
            "points": [
                {
                    "name": p.name,
                    "fault_kind": p.fault_kind,
                    "fault_rate": p.fault_rate,
                    "key": campaign.point_key(p),
                }
                for p in points
            ],
            "chunks": chunks,
            "created_unix": time.time(),
        }
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        LeaseBoard.initialize(
            self.job_dir(job_id) / "leases.json", n_chunks=len(chunks)
        )
        save_json_guarded(
            {"status": "queued", "updated_unix": time.time()},
            self._state_path(job_id),
        )
        # job.json lands last: its presence marks a fully submitted job.
        save_json_atomic(document, job_path, durable=True)
        return job_id

    # -- lookup ------------------------------------------------------------
    def list_ids(self) -> List[str]:
        return sorted(
            p.parent.name for p in self.root.glob("job-*/job.json")
        )

    def load(self, job_id: str) -> dict:
        path = self._job_path(job_id)
        if not path.exists():
            raise ServiceError(f"unknown job {job_id!r}")
        document = load_json(path)
        if document.get("schema") != JOB_SCHEMA:
            raise ServiceError(
                f"job {job_id}: unknown schema {document.get('schema')!r}"
            )
        return document

    def spec(self, job_id: str) -> CampaignJobSpec:
        return CampaignJobSpec.from_dict(self.load(job_id)["spec"])

    # -- state machine -----------------------------------------------------
    def _read_state(self, job_id: str) -> dict:
        path = self._state_path(job_id)
        if not path.exists():
            return {"status": "queued"}
        try:
            return load_json_guarded(path)
        except CorruptStateError as exc:
            logger.warning(
                "state file for %s unreadable (%s); rebuilding from the "
                "journal",
                job_id,
                exc,
            )
            return self._rebuild_state(job_id)

    def _rebuild_state(self, job_id: str) -> dict:
        """Reconstruct ``state.json`` from durable evidence.

        A finalized result implies a terminal status; journal entries
        imply ``running``; a bare job is ``queued``.  Explicit
        ``cancelled``/``failed`` verdicts cannot be reconstructed (they
        lived only in the lost file) — the job resumes instead, which
        re-executes at most the unjournaled points and never corrupts a
        result.
        """
        self.recoveries += 1
        result_path = self._result_path(job_id)
        if result_path.exists():
            try:
                report = load_json(result_path)
                status = (
                    "completed_with_failures"
                    if report.get("failures")
                    else "done"
                )
            except Exception:
                status = "running"
        elif len(self.journal(job_id)):
            status = "running"
        else:
            status = "queued"
        state = {
            "status": status,
            "updated_unix": time.time(),
            "recovered": True,
        }
        save_json_guarded(state, self._state_path(job_id))
        return state

    def _write_state(self, job_id: str, status: str, **extra: Any) -> None:
        with file_lock(self._state_path(job_id).with_suffix(".lock")):
            state = self._read_state(job_id)
            # Terminal states are sticky: a worker finishing its chunk
            # after a cancel must not resurrect the job.
            if state.get("status") in TERMINAL_STATES:
                return
            state.update({"status": status, "updated_unix": time.time()})
            state.update(extra)
            save_json_guarded(state, self._state_path(job_id))
            chaos.controller().corrupt_file(self._state_path(job_id))

    def mark_running(self, job_id: str) -> None:
        if self._read_state(job_id).get("status") == "queued":
            self._write_state(job_id, "running")

    def mark_failed(self, job_id: str, error: str) -> None:
        self._write_state(job_id, "failed", error=str(error))

    def cancel(self, job_id: str) -> JobStatus:
        self.load(job_id)  # raise on unknown id
        self._write_state(job_id, "cancelled")
        return self.status(job_id)

    def is_active(self, job_id: str) -> bool:
        """True while workers should keep executing points."""
        return self._read_state(job_id).get("status") not in TERMINAL_STATES

    # -- progress / results ------------------------------------------------
    def status(self, job_id: str) -> JobStatus:
        document = self.load(job_id)
        state = self._read_state(job_id)
        journal = self.journal(job_id)
        board = self.leases(job_id)
        leases = board.snapshot()
        keys = [p["key"] for p in document["points"]]
        chunk_of = {
            index: chunk_id
            for chunk_id, chunk in enumerate(document["chunks"])
            for index in chunk
        }
        quarantined: Optional[Dict[int, dict]] = None
        done = 0
        failed = 0
        for index, key in enumerate(keys):
            if key in journal:
                done += 1
                continue
            if failure_key(key) in journal:
                failed += 1
                continue
            # A point in a quarantined chunk counts as failed even when
            # its holders died before journaling a failure record.
            if leases["quarantined"]:
                if quarantined is None:
                    quarantined = board.quarantined_chunks()
                if chunk_of[index] in quarantined:
                    failed += 1
        return JobStatus(
            job_id=job_id,
            status=state.get("status", "queued"),
            total=len(keys),
            done=done,
            failed=failed,
            workload=document["workload"],
            scenario_key=document["scenario_key"],
            leases=leases,
            error=state.get("error"),
        )

    def result(self, job_id: str) -> Optional[dict]:
        """The finalized report dict, finalizing first if now complete."""
        path = self._result_path(job_id)
        if path.exists():
            return load_json(path)
        report = self.finalize_if_complete(job_id)
        return None if report is None else report.to_dict()

    def finalize_if_complete(self, job_id: str) -> Optional[SurvivabilityReport]:
        """Assemble the report once every point is *resolved*.

        A point is resolved by a journaled success, a journaled failure
        record, or membership in a quarantined chunk.  The report is
        rebuilt from journal entries **in grid order**, so the
        surviving points are bit-identical to the serial campaign's —
        regardless of which worker finished which point, in what order.
        Failed points appear as ``failed`` marker records (zeros), with
        the structured failure details carried in ``report.failures``.
        The job lands on ``done`` (all survived) or
        ``completed_with_failures`` (partial), never hangs on poison
        work.  Returns ``None`` while points are outstanding or the job
        is cancelled/failed.
        """
        document = self.load(job_id)
        state = self._read_state(job_id)
        if state.get("status") in ("cancelled", "failed"):
            return None
        journal = self.journal(job_id)
        keys = [p["key"] for p in document["points"]]
        chunk_of = {
            index: chunk_id
            for chunk_id, chunk in enumerate(document["chunks"])
            for index in chunk
        }
        quarantined: Optional[Dict[int, dict]] = None
        failures: Dict[int, dict] = {}
        for index, key in enumerate(keys):
            if key in journal:
                continue
            if failure_key(key) in journal:
                failures[index] = dict(journal.get(failure_key(key)))
                continue
            if quarantined is None:
                quarantined = self.leases(job_id).quarantined_chunks()
            verdict = quarantined.get(chunk_of[index])
            if verdict is None:
                return None  # still outstanding: keep waiting
            # Quarantined without a failure record: the chunk's holders
            # kept dying before reporting (e.g. hard crashes).
            failures[index] = {
                "point": document["points"][index]["name"],
                "error": verdict.get("error")
                or "chunk quarantined: holders died repeatedly",
                "attempts": verdict.get("attempts", 0),
                "worker": verdict.get("worker"),
            }
        points = CampaignJobSpec.from_dict(document["spec"]).build_points()
        report = SurvivabilityReport(
            workload=document["workload"],
            scenario_key=document["scenario_key"],
        )
        for index, (point, key) in enumerate(zip(points, keys)):
            if index in failures:
                report.add(SurvivabilityRecord.failed_point(point))
                report.failures[point.name] = failures[index]
            else:
                result = LifetimeResult.from_dict(journal.get(key))
                report.add(record_from_result(point, result))
        path = self._result_path(job_id)
        if not path.exists():
            save_json_atomic(report.to_dict(), path, durable=True)
        self._write_state(
            job_id, "completed_with_failures" if failures else "done"
        )
        return report
