"""Chunk leasing with TTL expiry, work stealing and poison quarantine.

The :class:`LeaseBoard` is a tiny on-disk lease table — one entry per
chunk of grid-point indices — that lets any number of worker processes
(or hosts, over a shared filesystem) partition a job without a central
scheduler process.  Workers *claim* a chunk, *renew* its lease while
executing (a heartbeat), and *complete* it when every point is
journaled.  A worker that dies simply stops renewing: once the lease
TTL passes, an idle worker **steals** the chunk and re-runs it.

Leases are an optimization, never the correctness mechanism.  Points
are idempotent (derivation-seeded, content-hash keyed) and the shared
:class:`~repro.core.checkpoint.RunJournal` admits each key exactly
once, so the worst a stale lease can cause is duplicate *computation* —
never duplicate or divergent *results*.  That separation is what keeps
the failure-mode analysis short: lose the lease file entirely and the
job still finishes correctly, just with more re-execution.

Two failure-containment layers ride on top of the basic lifecycle:

* **Poison-work quarantine.**  Every claim (including a steal) counts
  as an *attempt*.  A chunk that keeps failing — a worker reports the
  failure via :meth:`fail`, or its holders keep dying until a thief
  finds the attempt budget spent — moves to a terminal ``quarantined``
  state after ``max_attempts`` tries instead of being re-leased
  forever.  A single deterministically-crashing point can therefore
  never stall a job: its chunk is quarantined, the job finalizes with
  the surviving points, and the poison point is reported, not retried.

* **Corruption recovery.**  The table is written through
  :func:`~repro.io.save_json_guarded` (atomic rename + embedded
  SHA-256), so a torn or bit-rotted file is *detected* on load; when a
  ``recover`` callback is installed (the :class:`~repro.service.jobs
  .JobStore` wires one up), the table is rebuilt from the flock-guarded
  journal — the single source of truth — and the job keeps going.

Every read-modify-write of the table runs under the advisory
:func:`~repro.io.file_lock`, and the table itself is rewritten
atomically, so a killed worker can neither corrupt the file nor hold a
lock forever.
"""

from __future__ import annotations

import logging
import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import ConfigurationError, CorruptStateError, ServiceError
from repro.io import file_lock, load_json_guarded, save_json_guarded
from repro.service import chaos

logger = logging.getLogger(__name__)

#: Lease table format version (2: guarded checksum wrapper, per-chunk
#: attempt counts, the quarantined state).
LEASE_SCHEMA = 2

_PENDING = "pending"
_LEASED = "leased"
_DONE = "done"
_QUARANTINED = "quarantined"

#: Claims (first lease, re-lease after failure, steal) a chunk may
#: consume before it is quarantined instead of re-leased.
DEFAULT_MAX_ATTEMPTS = 3


def fresh_entry(state: str = _PENDING, error: Optional[str] = None) -> dict:
    """A lease-table entry in its unleased form."""
    return {
        "state": state,
        "worker": None,
        "deadline": None,
        "attempts": 0,
        "error": error,
    }


@dataclass(frozen=True)
class Lease:
    """A claimed chunk: execute, renew while working, then complete."""

    chunk_id: int
    worker_id: str
    deadline: float
    #: True when this claim took over another worker's expired lease.
    stolen: bool = False
    #: How many claims (this one included) the chunk has consumed.
    attempts: int = 1


class LeaseBoard:
    """On-disk lease table over a job's chunks.

    The table is created once at submit time (:meth:`initialize`) with
    every chunk ``pending``; thereafter all transitions go through
    :meth:`claim` / :meth:`renew` / :meth:`complete` / :meth:`release`
    / :meth:`fail`, each a single locked read-modify-write.  ``clock``
    is injectable so tests can expire leases without sleeping (and so
    the chaos harness can skew one worker's view of time).  ``recover``
    — when given — turns an unreadable table into a rebuilt one instead
    of an error.
    """

    def __init__(
        self,
        path,
        ttl: float = 60.0,
        clock: Optional[Callable[[], float]] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        recover: Optional[Callable[[], Dict[str, dict]]] = None,
    ) -> None:
        if ttl <= 0:
            raise ConfigurationError(f"lease ttl must be > 0, got {ttl}")
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.path = pathlib.Path(path)
        self.ttl = float(ttl)
        self.max_attempts = int(max_attempts)
        self._clock = clock if clock is not None else time.time
        self._recover = recover
        #: Times this instance rebuilt a corrupt/unreadable table.
        self.recovered = 0

    @classmethod
    def initialize(cls, path, n_chunks: int) -> "LeaseBoard":
        """Create the table with ``n_chunks`` pending chunks."""
        if n_chunks < 1:
            raise ConfigurationError(f"need at least one chunk, got {n_chunks}")
        table = {
            "schema": LEASE_SCHEMA,
            "chunks": {str(i): fresh_entry() for i in range(n_chunks)},
            "stolen": 0,
        }
        save_json_guarded(table, path)
        return cls(path)

    # -- table I/O (callers hold the lock) ---------------------------------
    def _lock(self):
        return file_lock(self.path.with_name(self.path.name + ".lock"))

    def _load(self) -> dict:
        if not self.path.exists():
            raise ServiceError(f"no lease table at {self.path}")
        try:
            table = load_json_guarded(self.path)
            if not isinstance(table, dict) or table.get("schema") != LEASE_SCHEMA:
                raise CorruptStateError(
                    f"unknown lease table schema "
                    f"{table.get('schema') if isinstance(table, dict) else table!r}"
                )
        except CorruptStateError as exc:
            if self._recover is None:
                raise ServiceError(
                    f"unreadable lease table {self.path}: {exc}"
                ) from exc
            logger.warning(
                "lease table %s unreadable (%s); rebuilding from the journal",
                self.path,
                exc,
            )
            table = {
                "schema": LEASE_SCHEMA,
                "chunks": self._recover(),
                # The steal counter is observability, not correctness;
                # a rebuild restarts it.
                "stolen": 0,
            }
            self.recovered += 1
            self._save(table)
        return table

    def _save(self, table: dict) -> None:
        save_json_guarded(table, self.path)
        chaos.controller().corrupt_file(self.path)

    # -- lease lifecycle ---------------------------------------------------
    def claim(self, worker_id: str) -> Optional[Lease]:
        """Lease the first pending — or expired — chunk, if any.

        Expired leases (their holder stopped heartbeating for longer
        than the TTL) are stolen in preference order after all pending
        chunks, so a healthy fleet drains fresh work before re-running
        a dead worker's chunk.  Each claim consumes one attempt; a
        candidate whose budget is already spent is quarantined on the
        spot and skipped.
        """
        now = self._clock()
        with self._lock():
            table = self._load()
            chunks = table["chunks"]
            candidate = None
            stolen = False
            quarantined_now = False
            for chunk_id in sorted(chunks, key=int):
                entry = chunks[chunk_id]
                if entry["state"] != _PENDING:
                    continue
                if self._spent(entry):
                    self._quarantine(entry)
                    quarantined_now = True
                    continue
                candidate = chunk_id
                break
            if candidate is None:
                for chunk_id in sorted(chunks, key=int):
                    entry = chunks[chunk_id]
                    if entry["state"] != _LEASED or entry["deadline"] >= now:
                        continue
                    if self._spent(entry):
                        # The holder died (or stalled) on the chunk's
                        # last allowed attempt: poison, not bad luck.
                        self._quarantine(entry)
                        quarantined_now = True
                        continue
                    candidate, stolen = chunk_id, True
                    break
            if candidate is None:
                if quarantined_now:
                    self._save(table)
                return None
            entry = chunks[candidate]
            deadline = now + self.ttl
            attempts = int(entry.get("attempts", 0)) + 1
            chunks[candidate] = {
                "state": _LEASED,
                "worker": worker_id,
                "deadline": deadline,
                "attempts": attempts,
                "error": entry.get("error"),
            }
            if stolen:
                table["stolen"] = int(table.get("stolen", 0)) + 1
            self._save(table)
        return Lease(
            chunk_id=int(candidate),
            worker_id=worker_id,
            deadline=deadline,
            stolen=stolen,
            attempts=attempts,
        )

    def _spent(self, entry: dict) -> bool:
        return int(entry.get("attempts", 0)) >= self.max_attempts

    @staticmethod
    def _quarantine(entry: dict, error: Optional[str] = None) -> None:
        entry["state"] = _QUARANTINED
        entry["deadline"] = None
        if error is not None:
            entry["error"] = error
        logger.warning(
            "quarantining chunk after %s attempt(s): %s",
            entry.get("attempts"),
            entry.get("error") or "holder died repeatedly",
        )

    def renew(self, chunk_id: int, worker_id: str) -> bool:
        """Heartbeat: extend the lease; False if it was lost (stolen)."""
        with self._lock():
            table = self._load()
            entry = table["chunks"].get(str(chunk_id))
            if (
                entry is None
                or entry["state"] != _LEASED
                or entry["worker"] != worker_id
            ):
                return False
            entry["deadline"] = self._clock() + self.ttl
            self._save(table)
        return True

    def complete(self, chunk_id: int, worker_id: str) -> None:
        """Mark a chunk done (first finisher wins; stale holders no-op)."""
        with self._lock():
            table = self._load()
            entry = table["chunks"].get(str(chunk_id))
            if entry is None or entry["state"] == _DONE:
                return
            # A stale holder completing after a steal is fine: the
            # journal already de-duplicated the points themselves.
            table["chunks"][str(chunk_id)] = {
                "state": _DONE,
                "worker": worker_id,
                "deadline": None,
                "attempts": int(entry.get("attempts", 0)),
                "error": None,
            }
            self._save(table)

    def release(self, chunk_id: int, worker_id: str) -> None:
        """Give a held chunk back (e.g. on cancel) without completing it."""
        with self._lock():
            table = self._load()
            entry = table["chunks"].get(str(chunk_id))
            if (
                entry is None
                or entry["state"] != _LEASED
                or entry["worker"] != worker_id
            ):
                return
            table["chunks"][str(chunk_id)] = {
                "state": _PENDING,
                "worker": None,
                "deadline": None,
                "attempts": int(entry.get("attempts", 0)),
                "error": entry.get("error"),
            }
            self._save(table)

    def fail(self, chunk_id: int, worker_id: str, error: str) -> bool:
        """Report a failed execution attempt; True if now quarantined.

        The holder calls this when a point in the chunk failed
        permanently (retries exhausted).  While the attempt budget
        lasts the chunk goes back to ``pending`` for another worker (or
        another day); once it is spent the chunk is quarantined with
        the failure recorded — the caller then journals structured
        failure records so the job can finalize without it.
        """
        with self._lock():
            table = self._load()
            entry = table["chunks"].get(str(chunk_id))
            if (
                entry is None
                or entry["state"] != _LEASED
                or entry["worker"] != worker_id
            ):
                # Lost the lease while failing: the thief owns the
                # chunk's fate now.  Quarantine state, if any, will
                # come from its attempts.
                return entry is not None and entry["state"] == _QUARANTINED
            entry["error"] = str(error)
            if self._spent(entry):
                self._quarantine(entry)
                quarantined = True
            else:
                entry["state"] = _PENDING
                entry["worker"] = None
                entry["deadline"] = None
                quarantined = False
            self._save(table)
        return quarantined

    # -- introspection -----------------------------------------------------
    def chunk_points(self, chunks: List[List[int]], lease: Lease) -> List[int]:
        """Point indices of a leased chunk (from the job's chunk list)."""
        return list(chunks[lease.chunk_id])

    def snapshot(self) -> Dict[str, int]:
        """Summary counts: pending/leased/expired/done/quarantined/stolen."""
        now = self._clock()
        counts = {
            "pending": 0,
            "leased": 0,
            "expired": 0,
            "done": 0,
            "quarantined": 0,
        }
        table = self._load()
        for entry in table["chunks"].values():
            if entry["state"] == _LEASED and entry["deadline"] < now:
                counts["expired"] += 1
            else:
                counts[entry["state"]] += 1
        counts["stolen"] = int(table.get("stolen", 0))
        return counts

    def quarantined_chunks(self) -> Dict[int, dict]:
        """Quarantined chunk ids -> {attempts, error, worker}."""
        table = self._load()
        return {
            int(chunk_id): {
                "attempts": int(entry.get("attempts", 0)),
                "error": entry.get("error"),
                "worker": entry.get("worker"),
            }
            for chunk_id, entry in table["chunks"].items()
            if entry["state"] == _QUARANTINED
        }

    def all_done(self) -> bool:
        """True when every chunk completed successfully."""
        table = self._load()
        return all(e["state"] == _DONE for e in table["chunks"].values())

    def all_resolved(self) -> bool:
        """True when no chunk can make further progress (done/quarantined)."""
        table = self._load()
        return all(
            e["state"] in (_DONE, _QUARANTINED)
            for e in table["chunks"].values()
        )
