"""Chunk leasing with TTL expiry and work stealing.

The :class:`LeaseBoard` is a tiny on-disk lease table — one entry per
chunk of grid-point indices — that lets any number of worker processes
(or hosts, over a shared filesystem) partition a job without a central
scheduler process.  Workers *claim* a chunk, *renew* its lease while
executing (a heartbeat), and *complete* it when every point is
journaled.  A worker that dies simply stops renewing: once the lease
TTL passes, an idle worker **steals** the chunk and re-runs it.

Leases are an optimization, never the correctness mechanism.  Points
are idempotent (derivation-seeded, content-hash keyed) and the shared
:class:`~repro.core.checkpoint.RunJournal` admits each key exactly
once, so the worst a stale lease can cause is duplicate *computation* —
never duplicate or divergent *results*.  That separation is what keeps
the failure-mode analysis short: lose the lease file entirely and the
job still finishes correctly, just with more re-execution.

Every read-modify-write of the table runs under the advisory
:func:`~repro.io.file_lock`, and the table itself is rewritten
atomically, so a killed worker can neither corrupt the file nor hold a
lock forever.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import ConfigurationError, ServiceError
from repro.io import file_lock, load_json, save_json_atomic

#: Lease table format version.
LEASE_SCHEMA = 1

_PENDING = "pending"
_LEASED = "leased"
_DONE = "done"


@dataclass(frozen=True)
class Lease:
    """A claimed chunk: execute, renew while working, then complete."""

    chunk_id: int
    worker_id: str
    deadline: float
    #: True when this claim took over another worker's expired lease.
    stolen: bool = False


class LeaseBoard:
    """On-disk lease table over a job's chunks.

    The table is created once at submit time (:meth:`initialize`) with
    every chunk ``pending``; thereafter all transitions go through
    :meth:`claim` / :meth:`renew` / :meth:`complete` / :meth:`release`,
    each a single locked read-modify-write.  ``clock`` is injectable so
    tests can expire leases without sleeping.
    """

    def __init__(
        self, path, ttl: float = 60.0, clock: Callable[[], float] = time.time
    ) -> None:
        if ttl <= 0:
            raise ConfigurationError(f"lease ttl must be > 0, got {ttl}")
        self.path = pathlib.Path(path)
        self.ttl = float(ttl)
        self._clock = clock

    @classmethod
    def initialize(cls, path, n_chunks: int) -> "LeaseBoard":
        """Create the table with ``n_chunks`` pending chunks."""
        if n_chunks < 1:
            raise ConfigurationError(f"need at least one chunk, got {n_chunks}")
        table = {
            "schema": LEASE_SCHEMA,
            "chunks": {
                str(i): {"state": _PENDING, "worker": None, "deadline": None}
                for i in range(n_chunks)
            },
            "stolen": 0,
        }
        save_json_atomic(table, path, durable=True)
        return cls(path)

    # -- table I/O (callers hold the lock) ---------------------------------
    def _lock(self):
        return file_lock(self.path.with_name(self.path.name + ".lock"))

    def _load(self) -> dict:
        if not self.path.exists():
            raise ServiceError(f"no lease table at {self.path}")
        table = load_json(self.path)
        if table.get("schema") != LEASE_SCHEMA:
            raise ServiceError(
                f"unknown lease table schema {table.get('schema')!r} in {self.path}"
            )
        return table

    def _save(self, table: dict) -> None:
        save_json_atomic(table, self.path, durable=True)

    # -- lease lifecycle ---------------------------------------------------
    def claim(self, worker_id: str) -> Optional[Lease]:
        """Lease the first pending — or expired — chunk, if any.

        Expired leases (their holder stopped heartbeating for longer
        than the TTL) are stolen in preference order after all pending
        chunks, so a healthy fleet drains fresh work before re-running
        a dead worker's chunk.
        """
        now = self._clock()
        with self._lock():
            table = self._load()
            chunks = table["chunks"]
            candidate = None
            stolen = False
            for chunk_id in sorted(chunks, key=int):
                entry = chunks[chunk_id]
                if entry["state"] == _PENDING:
                    candidate = chunk_id
                    break
            if candidate is None:
                for chunk_id in sorted(chunks, key=int):
                    entry = chunks[chunk_id]
                    if entry["state"] == _LEASED and entry["deadline"] < now:
                        candidate, stolen = chunk_id, True
                        break
            if candidate is None:
                return None
            deadline = now + self.ttl
            chunks[candidate] = {
                "state": _LEASED,
                "worker": worker_id,
                "deadline": deadline,
            }
            if stolen:
                table["stolen"] = int(table.get("stolen", 0)) + 1
            self._save(table)
        return Lease(
            chunk_id=int(candidate),
            worker_id=worker_id,
            deadline=deadline,
            stolen=stolen,
        )

    def renew(self, chunk_id: int, worker_id: str) -> bool:
        """Heartbeat: extend the lease; False if it was lost (stolen)."""
        with self._lock():
            table = self._load()
            entry = table["chunks"].get(str(chunk_id))
            if (
                entry is None
                or entry["state"] != _LEASED
                or entry["worker"] != worker_id
            ):
                return False
            entry["deadline"] = self._clock() + self.ttl
            self._save(table)
        return True

    def complete(self, chunk_id: int, worker_id: str) -> None:
        """Mark a chunk done (first finisher wins; stale holders no-op)."""
        with self._lock():
            table = self._load()
            entry = table["chunks"].get(str(chunk_id))
            if entry is None or entry["state"] == _DONE:
                return
            # A stale holder completing after a steal is fine: the
            # journal already de-duplicated the points themselves.
            table["chunks"][str(chunk_id)] = {
                "state": _DONE,
                "worker": worker_id,
                "deadline": None,
            }
            self._save(table)

    def release(self, chunk_id: int, worker_id: str) -> None:
        """Give a held chunk back (e.g. on cancel) without completing it."""
        with self._lock():
            table = self._load()
            entry = table["chunks"].get(str(chunk_id))
            if (
                entry is None
                or entry["state"] != _LEASED
                or entry["worker"] != worker_id
            ):
                return
            table["chunks"][str(chunk_id)] = {
                "state": _PENDING,
                "worker": None,
                "deadline": None,
            }
            self._save(table)

    # -- introspection -----------------------------------------------------
    def chunk_points(self, chunks: List[List[int]], lease: Lease) -> List[int]:
        """Point indices of a leased chunk (from the job's chunk list)."""
        return list(chunks[lease.chunk_id])

    def snapshot(self) -> Dict[str, int]:
        """Summary counts: pending / leased / expired / done / stolen."""
        now = self._clock()
        counts = {"pending": 0, "leased": 0, "expired": 0, "done": 0}
        table = self._load()
        for entry in table["chunks"].values():
            if entry["state"] == _LEASED and entry["deadline"] < now:
                counts["expired"] += 1
            else:
                counts[entry["state"]] += 1
        counts["stolen"] = int(table.get("stolen", 0))
        return counts

    def all_done(self) -> bool:
        table = self._load()
        return all(e["state"] == _DONE for e in table["chunks"].values())
