"""Stdlib-only HTTP API over the job store (``repro serve``).

Endpoints (all JSON)::

    GET  /api/info                service identity + the jobs root, so
                                  `repro worker --server URL` can attach
    GET  /api/jobs                status of every job
    POST /api/jobs                submit a CampaignJobSpec -> {"job_id": ...}
    GET  /api/jobs/<id>           progress snapshot
    GET  /api/jobs/<id>/result    finalized SurvivabilityReport
                                  (409 + progress while points remain)
    POST /api/jobs/<id>/cancel    stop further execution (journal kept)
    GET  /healthz                 liveness: job/worker counts + uptime
    GET  /metrics                 request/error counters, corruption
                                  recoveries, chaos injection tallies

The server holds no job state of its own — every request reads or
writes the shared on-disk :class:`~repro.service.jobs.JobStore`, which
is why it can restart freely, why requests are cheap, and why workers
never need to talk to it (they share the directory instead).  Built on
``http.server.ThreadingHTTPServer``: zero dependencies, good enough for
a lab fleet; it is explicitly not an internet-facing service.

:class:`CampaignService` bundles the server with an optional in-host
worker fleet (``workers=N`` forks N draining processes), which is what
``repro serve --workers N`` runs.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import pathlib
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

from repro.exceptions import ConfigurationError, ReproError, ServiceError
from repro.service import chaos
from repro.service.jobs import CampaignJobSpec, JobStore
from repro.service.worker import worker_main

logger = logging.getLogger(__name__)

#: API document version reported by /api/info.
API_SCHEMA = 1


class _JobsAPIHandler(BaseHTTPRequestHandler):
    """Routes requests to the :class:`JobStore` attached to the server."""

    server_version = "repro-serve/1"
    #: Set on the server instance by CampaignService.
    store: JobStore

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        logger.debug("%s - %s", self.address_string(), fmt % args)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            return {}
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise ConfigurationError("request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0].strip("/")
        return tuple(p for p in path.split("/") if p)

    def _count(self, route: Tuple[str, ...], method: str, error: bool) -> None:
        """Tally the request in the server's /metrics counters.

        Job ids are collapsed to ``<id>`` so the route table stays
        bounded no matter how many jobs pass through.
        """
        parts = [
            "<id>" if i == 2 and route[:2] == ("api", "jobs") else p
            for i, p in enumerate(route)
        ]
        label = f"{method} /" + "/".join(parts)
        server = self.server
        lock = getattr(server, "metrics_lock", None)
        if lock is None:  # handler mounted on a bare HTTPServer
            return
        with lock:
            metrics = server.metrics  # type: ignore[attr-defined]
            metrics["requests_total"] += 1
            if error:
                metrics["errors_total"] += 1
            metrics["routes"][label] = metrics["routes"].get(label, 0) + 1

    # -- request handling --------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _healthz(self, store: JobStore) -> dict:
        job_ids = store.list_ids()
        active = sum(1 for job_id in job_ids if store.is_active(job_id))
        started = getattr(self.server, "started_at", None)
        return {
            "status": "ok",
            "service": "repro-campaign-service",
            "schema": API_SCHEMA,
            "uptime_s": 0.0 if started is None else round(time.time() - started, 3),
            "jobs": {"total": len(job_ids), "active": active},
            "workers": getattr(self.server, "n_workers", 0),
        }

    def _metrics(self, store: JobStore) -> dict:
        server = self.server
        with server.metrics_lock:  # type: ignore[attr-defined]
            metrics = server.metrics  # type: ignore[attr-defined]
            requests = {
                "requests_total": metrics["requests_total"],
                "errors_total": metrics["errors_total"],
                "routes": dict(metrics["routes"]),
            }
        ctrl = chaos.controller()
        return {
            "requests": requests,
            "store": {
                "jobs": len(store.list_ids()),
                "recoveries": store.recoveries,
            },
            "chaos": {
                "enabled": ctrl.enabled,
                "modes": list(ctrl.config.modes),
                "injected": dict(ctrl.injected),
            },
        }

    def _dispatch(self, method: str) -> None:
        store = self.server.store  # type: ignore[attr-defined]
        route = self._route()
        error = False
        try:
            if method == "GET" and route == ("healthz",):
                self._send_json(self._healthz(store))
            elif method == "GET" and route == ("metrics",):
                self._send_json(self._metrics(store))
            elif method == "GET" and route == ("api", "info"):
                self._send_json(
                    {
                        "service": "repro-campaign-service",
                        "schema": API_SCHEMA,
                        "jobs_root": str(store.root.resolve()),
                    }
                )
            elif method == "GET" and route == ("api", "jobs"):
                self._send_json(
                    {
                        "jobs": [
                            store.status(job_id).to_dict()
                            for job_id in store.list_ids()
                        ]
                    }
                )
            elif method == "POST" and route == ("api", "jobs"):
                spec = CampaignJobSpec.from_dict(self._read_json())
                job_id = store.submit(spec)
                self._send_json(store.status(job_id).to_dict(), status=201)
            elif method == "GET" and len(route) == 3 and route[:2] == ("api", "jobs"):
                self._send_json(store.status(route[2]).to_dict())
            elif (
                method == "GET"
                and len(route) == 4
                and route[:2] == ("api", "jobs")
                and route[3] == "result"
            ):
                result = store.result(route[2])
                if result is None:
                    status = store.status(route[2]).to_dict()
                    status["error"] = "job is not complete"
                    self._send_json(status, status=409)
                else:
                    self._send_json(result)
            elif (
                method == "POST"
                and len(route) == 4
                and route[:2] == ("api", "jobs")
                and route[3] == "cancel"
            ):
                self._send_json(store.cancel(route[2]).to_dict())
            else:
                error = True
                self._send_json({"error": f"no such endpoint: {self.path}"}, 404)
        except (ConfigurationError, json.JSONDecodeError) as exc:
            error = True
            self._send_json({"error": str(exc)}, 400)
        except ServiceError as exc:
            error = True
            self._send_json({"error": str(exc)}, 404)
        except ReproError as exc:  # pragma: no cover - defensive catch-all
            error = True
            self._send_json({"error": str(exc)}, 500)
        finally:
            self._count(route, method, error)


class CampaignService:
    """HTTP API + optional worker fleet over one jobs directory.

    Usable as a context manager in tests (``with CampaignService(...) as
    svc:``) or driven by ``repro serve``.  ``port=0`` binds an ephemeral
    port, exposed via :attr:`address` once started.
    """

    def __init__(
        self,
        jobs_root,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        lease_ttl: float = 60.0,
        poll_interval: float = 0.2,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.store = JobStore(jobs_root, lease_ttl=lease_ttl)
        self.n_workers = int(workers)
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = float(poll_interval)
        self._httpd = ThreadingHTTPServer((host, port), _JobsAPIHandler)
        self._httpd.store = self.store  # type: ignore[attr-defined]
        self._httpd.n_workers = self.n_workers  # type: ignore[attr-defined]
        self._httpd.started_at = time.time()  # type: ignore[attr-defined]
        self._httpd.metrics_lock = threading.Lock()  # type: ignore[attr-defined]
        self._httpd.metrics = {  # type: ignore[attr-defined]
            "requests_total": 0,
            "errors_total": 0,
            "routes": {},
        }
        self._thread: Optional[threading.Thread] = None
        self._workers: List[multiprocessing.Process] = []

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "CampaignService":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        for i in range(self.n_workers):
            proc = multiprocessing.Process(
                target=worker_main,
                kwargs={
                    "jobs_root": str(pathlib.Path(self.store.root)),
                    "worker_id": f"serve-w{i}",
                    "lease_ttl": self.lease_ttl,
                    "poll_interval": self.poll_interval,
                },
                daemon=True,
                name=f"repro-worker-{i}",
            )
            proc.start()
            self._workers.append(proc)
        logger.info(
            "campaign service on %s (%d worker(s), jobs in %s)",
            self.url,
            self.n_workers,
            self.store.root,
        )
        return self

    def stop(self) -> None:
        for proc in self._workers:
            proc.terminate()
        for proc in self._workers:
            proc.join(timeout=5.0)
        self._workers.clear()
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
