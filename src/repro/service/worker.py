"""Worker loop: lease chunks, run lifetime points, journal the results.

A :class:`ServiceWorker` drains jobs from a :class:`~repro.service.jobs.JobStore`
it shares with the HTTP server and any number of sibling workers.  The
loop per claimed chunk:

1. rebuild the job's framework from its spec (cached per job — training
   happens once per worker process, then every point reuses it);
2. for each point index in the chunk: skip it if another worker already
   journaled its key — success *or* failure record (``journal.refresh()``
   picks up siblings' appends incrementally), otherwise run the lifetime
   simulation — retrying transient failures on the seeded-jitter
   :class:`~repro.core.executor.RetryPolicy` schedule — and
   ``journal.record`` the result (exactly-once across processes);
3. renew the chunk's lease after every point (the heartbeat that keeps
   work stealing at bay), and stop early if the job was cancelled or
   the lease was lost to a thief;
4. complete the chunk and finalize the job if it was the last one.

Poison work is contained, not fatal: a point whose retries are
exhausted no longer fails the whole job.  The worker keeps executing
the rest of the chunk (healthy neighbours still journal their results),
then reports the chunk to :meth:`LeaseBoard.fail` — which either
returns it to ``pending`` for another attempt or, once the attempt
budget is spent, quarantines it.  The quarantining worker journals one
structured failure record per dead point, and
:meth:`~repro.service.jobs.JobStore.finalize_if_complete` assembles a
partial report instead of hanging forever.

Because every point is derivation-seeded and content-hash keyed, *any*
interleaving of workers — including crashes, steals and duplicated
execution — produces a journal whose entries are bit-identical to a
serial campaign's.  The worker needs no network: it operates directly
on the shared jobs directory, which is what makes ``repro worker
--jobs DIR`` work across machines over a shared filesystem.
"""

from __future__ import annotations

import hashlib
import logging
import os
import socket
import time
from typing import Dict, Optional

from repro.core.executor import ResultCache, RetryPolicy
from repro.core.framework import AgingAwareFramework
from repro.service import chaos
from repro.service.jobs import CampaignJobSpec, JobStore, failure_key

logger = logging.getLogger(__name__)


def default_worker_id() -> str:
    """Host-qualified id so leases are attributable across machines."""
    return f"{socket.gethostname()}-{os.getpid()}"


class ServiceWorker:
    """One draining loop over a shared job store."""

    def __init__(
        self,
        store: JobStore,
        worker_id: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        use_cache: bool = True,
        max_cached_frameworks: int = 2,
    ) -> None:
        self.store = store
        self.worker_id = worker_id or default_worker_id()
        # Seeded jitter decorrelates simultaneous retries across the
        # fleet: each worker derives its own deterministic schedule, so
        # a shared-cache hiccup does not produce a synchronized stampede.
        if retry is None:
            seed = int.from_bytes(
                hashlib.sha256(self.worker_id.encode("utf-8")).digest()[:4], "big"
            )
            retry = RetryPolicy(
                max_retries=2, backoff_base=0.05, jitter=0.5, jitter_seed=seed
            )
        self.retry = retry
        self.cache: Optional[ResultCache] = store.cache() if use_cache else None
        #: Points actually simulated by this worker (not replayed/stolen).
        self.points_executed = 0
        self.chunks_completed = 0
        #: Drain-loop iterations that raised in a row (store unreachable,
        #: unrecoverable corruption, ...).  Reset on every clean pass.
        self.consecutive_failures = 0
        #: Give up draining after this many consecutive loop failures.
        self.max_consecutive_failures = 5
        self._frameworks: Dict[str, AgingAwareFramework] = {}
        self._max_cached = max(1, max_cached_frameworks)

    def _leases(self, job_id: str):
        """The job's lease board, viewed through this worker's clock.

        Under chaos clock-skew the worker sees wall time shifted by a
        deterministic per-identity offset — deadlines it writes and
        expiry checks it makes are all skewed together, exactly like a
        host with a drifted clock.
        """
        return self.store.leases(
            job_id, clock=chaos.controller().skewed_clock(self.worker_id)
        )

    # -- framework reuse ---------------------------------------------------
    def _framework(self, job_id: str, spec: CampaignJobSpec) -> AgingAwareFramework:
        if job_id not in self._frameworks:
            if len(self._frameworks) >= self._max_cached:
                self._frameworks.pop(next(iter(self._frameworks)))
            self._frameworks[job_id] = spec.build_framework()
        return self._frameworks[job_id]

    # -- the drain loop ----------------------------------------------------
    def run_once(self) -> bool:
        """Claim and execute at most one chunk; False when idle."""
        for job_id in self.store.list_ids():
            if not self.store.is_active(job_id):
                continue
            lease = self._leases(job_id).claim(self.worker_id)
            if lease is None:
                # Every chunk is leased or done; opportunistically
                # finalize (covers the race where the last chunk's
                # worker died right after journaling its points).
                self.store.finalize_if_complete(job_id)
                continue
            if lease.stolen:
                logger.info(
                    "worker %s: stole expired chunk %d of %s",
                    self.worker_id,
                    lease.chunk_id,
                    job_id,
                )
            self._execute_chunk(job_id, lease)
            return True
        return False

    def _note_loop_failure(self, exc: Exception) -> float:
        """Count a drain-loop failure; return the bounded backoff delay.

        An unreachable store (network filesystem down, directory briefly
        gone) or unrecoverable corruption must not crash-loop the
        worker: log, back off on the seeded-jitter schedule (bounded so
        a long outage never produces an unbounded sleep), and let the
        caller decide whether to keep going.
        """
        self.consecutive_failures += 1
        logger.warning(
            "worker %s: drain-loop failure #%d: %s",
            self.worker_id,
            self.consecutive_failures,
            exc,
        )
        failures = min(self.consecutive_failures, 6)
        return min(self.retry.delay(failures, token=self.worker_id), 30.0)

    def drain(self) -> int:
        """Execute chunks until no claimable work remains; #points run.

        Loop failures are retried with bounded jittered backoff; after
        ``max_consecutive_failures`` in a row the drain gives up (the
        count stays set for the caller's exit message).
        """
        before = self.points_executed
        while True:
            try:
                busy = self.run_once()
            except Exception as exc:
                delay = self._note_loop_failure(exc)
                if self.consecutive_failures >= self.max_consecutive_failures:
                    logger.error(
                        "worker %s: giving up after %d consecutive failures",
                        self.worker_id,
                        self.consecutive_failures,
                    )
                    break
                time.sleep(delay)
                continue
            self.consecutive_failures = 0
            if not busy:
                break
        return self.points_executed - before

    def run_forever(self, poll_interval: float = 0.5, stop=None) -> None:
        """Poll the store until ``stop`` (an Event-like) is set.

        Never exits on error: failures back off (bounded, jittered) and
        the loop keeps polling — a service worker outlives outages.
        """
        while stop is None or not stop.is_set():
            try:
                busy = self.run_once()
            except Exception as exc:
                time.sleep(self._note_loop_failure(exc))
                continue
            self.consecutive_failures = 0
            if not busy:
                time.sleep(poll_interval)

    # -- chunk execution ---------------------------------------------------
    def _execute_chunk(self, job_id: str, lease) -> None:
        document = self.store.load(job_id)
        spec = CampaignJobSpec.from_dict(document["spec"])
        leases = self._leases(job_id)
        journal = self.store.journal(job_id)
        self.store.mark_running(job_id)
        try:
            framework = self._framework(job_id, spec)
        except Exception as exc:
            # A spec that cannot build will fail identically everywhere:
            # fail the job instead of bouncing the chunk between workers.
            logger.exception("worker %s: job %s is unbuildable", self.worker_id, job_id)
            self.store.mark_failed(job_id, f"framework build failed: {exc}")
            leases.release(lease.chunk_id, self.worker_id)
            return
        points = spec.build_points()
        failed = []  # (key, point, exc): poison points seen this attempt
        for index in document["chunks"][lease.chunk_id]:
            if not self.store.is_active(job_id):
                leases.release(lease.chunk_id, self.worker_id)
                return
            key = document["points"][index]["key"]
            journal.refresh()
            if key in journal or failure_key(key) in journal:
                continue  # a sibling (or a previous life) resolved it
            point = points[index]
            try:
                result = self._run_point(framework, spec, point, key)
            except Exception as exc:
                # Poison point: keep executing the rest of the chunk so
                # healthy neighbours still journal their results; report
                # the chunk once at the end and let the lease board
                # decide between another attempt and quarantine.
                logger.exception(
                    "worker %s: point %s of %s failed permanently",
                    self.worker_id,
                    point.name,
                    job_id,
                )
                failed.append((key, point, exc))
                if not leases.renew(lease.chunk_id, self.worker_id):
                    self._lost_lease(lease, job_id)
                    return
                continue
            if not self.store.is_active(job_id):
                # Cancelled while simulating: drop the result — terminal
                # states admit no further journal writes.
                leases.release(lease.chunk_id, self.worker_id)
                return
            journal.record(key, result.to_dict())
            self.points_executed += 1
            if not leases.renew(lease.chunk_id, self.worker_id):
                # Lease stolen mid-chunk (we stalled past the TTL).  The
                # points journaled so far are safe; leave the rest to
                # the thief instead of double-running them.
                self._lost_lease(lease, job_id)
                return
        if failed:
            summary = (
                f"{len(failed)} point(s) failed; "
                f"first: {failed[0][1].name}: {failed[0][2]}"
            )
            if leases.fail(lease.chunk_id, self.worker_id, error=summary):
                # Attempt budget spent — the chunk is quarantined and
                # this worker owns writing the terminal failure records.
                for key, point, exc in failed:
                    journal.record(
                        failure_key(key),
                        {
                            "point": point.name,
                            "error": str(exc),
                            "worker": self.worker_id,
                            "attempts": lease.attempts,
                        },
                    )
                self.store.finalize_if_complete(job_id)
            return
        leases.complete(lease.chunk_id, self.worker_id)
        self.chunks_completed += 1
        self.store.finalize_if_complete(job_id)

    def _lost_lease(self, lease, job_id: str) -> None:
        logger.warning(
            "worker %s: lost lease on chunk %d of %s",
            self.worker_id,
            lease.chunk_id,
            job_id,
        )

    def _run_point(self, framework, spec: CampaignJobSpec, point, key: str):
        """One lifetime simulation with seeded-jitter retries."""

        def attempt():
            chaos.controller().crash_point(key)
            return framework.run_scenario(
                spec.scenario,
                repeat=spec.repeat,
                cache=self.cache,
                fault_schedule=point.schedule,
                degradation=point.degradation,
            )

        return self.retry.call(attempt, token=f"{self.worker_id}/{key}")


def worker_main(
    jobs_root,
    drain: bool = False,
    worker_id: Optional[str] = None,
    lease_ttl: float = 60.0,
    poll_interval: float = 0.5,
    use_cache: bool = True,
) -> int:
    """Process entry point (``repro worker`` and spawned service workers)."""
    store = JobStore(jobs_root, lease_ttl=lease_ttl)
    worker = ServiceWorker(store, worker_id=worker_id, use_cache=use_cache)
    if drain:
        executed = worker.drain()
        logger.info(
            "worker %s: drained %d point(s) across %d chunk(s); "
            "%d consecutive loop failure(s) at exit",
            worker.worker_id,
            executed,
            worker.chunks_completed,
            worker.consecutive_failures,
        )
        return 1 if worker.consecutive_failures else 0
    worker.run_forever(poll_interval=poll_interval)
    return 0  # pragma: no cover - run_forever only exits via stop/signal
