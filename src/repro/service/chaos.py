"""Seeded fault injection for the campaign service (the chaos harness).

The service's failure-containment guarantees — poison-work quarantine,
corruption recovery, retrying HTTP clients, clock-skew tolerance — are
only worth having if something exercises them continuously.  This
module injects the four failure modes the containment layer claims to
survive, each behind an *inactive-by-default* hook at the exact layer
the real failure would hit:

``crash-point``
    :meth:`ChaosController.crash_point` raises :class:`ChaosError`
    inside the worker's point execution.  Selection is a pure function
    of ``(seed, point key)``, so a doomed point crashes on **every**
    attempt, on every worker — the deterministic poison-work case the
    lease board's quarantine exists for.

``corrupt-write``
    :meth:`ChaosController.corrupt_file` garbles ``leases.json`` /
    ``state.json`` right after an atomic save (truncation or mid-file
    byte stomp, alternating) — the torn-write/bit-rot case the guarded
    checksums and journal-rebuild recovery exist for.

``drop-response``
    :meth:`ChaosController.drop_response` raises :class:`ChaosError`
    in the HTTP client per ``(route, attempt)``, so a dropped response
    is transient: the retry schedule eventually gets through — the
    flaky-network case typed retryable errors exist for.

``clock-skew``
    :meth:`ChaosController.skewed_clock` offsets a worker's view of
    wall time by a deterministic per-identity amount, shifting every
    lease deadline it writes or reads — the NTP-drift case the
    journal-not-leases correctness rule exists for.

Every decision derives from SHA-256 over ``(seed, site, token)`` — no
global RNG state, no ordering sensitivity — so a chaos run is
reproducible from its seed alone, across processes and hosts.  Workers
spawned by :class:`~repro.service.server.CampaignService` inherit the
configuration through the environment (``REPRO_CHAOS``,
``REPRO_CHAOS_SEED``, per-mode rate variables); tests configure it
in-process via :func:`configure`/:func:`reset`.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.exceptions import ChaosError, ConfigurationError

#: Every failure mode the harness can inject.
CHAOS_MODES = ("crash-point", "corrupt-write", "drop-response", "clock-skew")

#: Files corrupt-write is allowed to touch.  The journal is expressly
#: NOT on this list: it is the single source of truth the service
#: rebuilds everything else from (its own torn-tail tolerance is
#: exercised separately by tests/core/test_checkpoint.py).
_CORRUPTIBLE = ("leases.json", "state.json")


@dataclass(frozen=True)
class ChaosConfig:
    """Which failure modes are armed, and how hard they bite."""

    modes: Tuple[str, ...] = ()
    seed: int = 0
    #: Fraction of grid points that deterministically crash.
    crash_rate: float = 0.5
    #: Probability that one guarded-file save is garbled afterwards.
    corrupt_rate: float = 0.25
    #: Probability that one HTTP attempt loses its response.
    drop_rate: float = 0.5
    #: Clock-skew magnitude (seconds); per-identity offset in [-s, +s].
    skew_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "modes", tuple(self.modes))
        unknown = set(self.modes) - set(CHAOS_MODES)
        if unknown:
            raise ConfigurationError(
                f"unknown chaos mode(s) {sorted(unknown)}; "
                f"choose from {list(CHAOS_MODES)}"
            )
        for name in ("crash_rate", "corrupt_rate", "drop_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.skew_s < 0:
            raise ConfigurationError(f"skew_s must be >= 0, got {self.skew_s}")

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None) -> "ChaosConfig":
        """Parse ``REPRO_CHAOS*`` variables (empty/absent = disabled)."""
        env = dict(os.environ) if env is None else env
        spec = env.get("REPRO_CHAOS", "").strip()
        if not spec:
            return cls()
        modes = tuple(m.strip() for m in spec.split(",") if m.strip())

        def _rate(name: str, default: float) -> float:
            raw = env.get(name)
            return default if raw is None else float(raw)

        return cls(
            modes=modes,
            seed=int(env.get("REPRO_CHAOS_SEED", "0")),
            crash_rate=_rate("REPRO_CHAOS_CRASH_RATE", cls.crash_rate),
            corrupt_rate=_rate("REPRO_CHAOS_CORRUPT_RATE", cls.corrupt_rate),
            drop_rate=_rate("REPRO_CHAOS_DROP_RATE", cls.drop_rate),
            skew_s=_rate("REPRO_CHAOS_SKEW", cls.skew_s),
        )


@dataclass
class ChaosController:
    """Applies one :class:`ChaosConfig` at the service's injection sites.

    Stateless apart from bookkeeping: ``injected`` counts firings per
    mode (tests assert the harness actually did something), and a
    per-file save counter sequences corrupt-write decisions within one
    process.
    """

    config: ChaosConfig = field(default_factory=ChaosConfig)
    injected: Dict[str, int] = field(default_factory=dict)
    _save_seq: Dict[str, int] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        return bool(self.config.modes)

    def active(self, mode: str) -> bool:
        return mode in self.config.modes

    def _unit(self, site: str, token: str) -> float:
        """Deterministic uniform [0, 1) from (seed, site, token)."""
        blob = f"{self.config.seed}/{site}/{token}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2.0**64

    def _fired(self, mode: str) -> None:
        self.injected[mode] = self.injected.get(mode, 0) + 1

    # -- crash-point -------------------------------------------------------
    def point_is_doomed(self, key: str) -> bool:
        """True when this grid point crashes (same answer every attempt)."""
        return (
            self.active("crash-point")
            and self._unit("crash-point", key) < self.config.crash_rate
        )

    def crash_point(self, key: str) -> None:
        """Raise inside point execution for doomed points."""
        if self.point_is_doomed(key):
            self._fired("crash-point")
            raise ChaosError(f"chaos: injected crash for point {key[:16]}…")

    # -- corrupt-write -----------------------------------------------------
    def corrupt_file(self, path) -> bool:
        """Maybe garble a just-saved coordination file; True if it did.

        Alternates between truncation (a torn write) and stomping bytes
        mid-file (bit rot that still has the right length) so both
        parse-failure and checksum-failure detection paths get traffic.
        """
        path = pathlib.Path(path)
        if not self.active("corrupt-write") or path.name not in _CORRUPTIBLE:
            return False
        seq = self._save_seq.get(path.name, 0)
        self._save_seq[path.name] = seq + 1
        roll = self._unit("corrupt-write", f"{path.name}/{seq}")
        if roll >= self.config.corrupt_rate:
            return False
        try:
            raw = path.read_bytes()
        except OSError:
            return False
        if len(raw) < 8:
            return False
        if self._unit("corrupt-style", f"{path.name}/{seq}") < 0.5:
            path.write_bytes(raw[: len(raw) // 2])  # torn write
        else:
            mid = len(raw) // 2
            path.write_bytes(raw[:mid] + b"\x00CHAOS\x00" + raw[mid + 7 :])
        self._fired("corrupt-write")
        return True

    # -- drop-response -----------------------------------------------------
    def drop_response(self, route: str, attempt: int) -> None:
        """Raise per (route, attempt): transient, retries get through."""
        if (
            self.active("drop-response")
            and self._unit("drop-response", f"{route}/{attempt}")
            < self.config.drop_rate
        ):
            self._fired("drop-response")
            raise ChaosError(f"chaos: dropped HTTP response for {route}")

    # -- clock-skew --------------------------------------------------------
    def skew_for(self, identity: str) -> float:
        """Deterministic offset in [-skew_s, +skew_s] for one identity."""
        if not self.active("clock-skew") or self.config.skew_s == 0.0:
            return 0.0
        return (2.0 * self._unit("clock-skew", identity) - 1.0) * self.config.skew_s

    def skewed_clock(self, identity: str) -> Callable[[], float]:
        """A wall clock shifted by this identity's skew (0 when inactive)."""
        offset = self.skew_for(identity)
        if offset == 0.0:
            return time.time
        self._fired("clock-skew")
        return lambda: time.time() + offset


#: Lazily built process-wide controller (None = not yet resolved).
_controller: Optional[ChaosController] = None


def controller() -> ChaosController:
    """The process's chaos controller (env-configured on first use)."""
    global _controller
    if _controller is None:
        _controller = ChaosController(ChaosConfig.from_env())
    return _controller


def configure(config: ChaosConfig) -> ChaosController:
    """Install a controller programmatically (tests); returns it."""
    global _controller
    _controller = ChaosController(config)
    return _controller


def reset() -> None:
    """Forget the installed controller; next use re-reads the env."""
    global _controller
    _controller = None
