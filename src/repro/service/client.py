"""Thin urllib client for the campaign service HTTP API.

Everything the CLI's ``repro submit`` / ``repro jobs`` subcommands do
goes through this class, and it is the supported way to drive the
service from Python::

    client = ServiceClient("http://127.0.0.1:8351")
    job_id = client.submit(CampaignJobSpec(preset="blobs-mini", fast=True))
    client.wait(job_id)
    report = SurvivabilityReport.from_dict(client.result(job_id))

Stdlib-only (``urllib``), mirroring the server's zero-dependency
stance.  HTTP errors surface as :class:`~repro.exceptions.ServiceError`
with the server's JSON ``error`` message attached.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, List, Optional, Union

from repro.exceptions import ServiceError
from repro.service.jobs import CampaignJobSpec

#: States in which a job will make no further progress.
_TERMINAL = ("done", "cancelled", "failed")


class ServiceClient:
    """JSON-over-HTTP client bound to one ``repro serve`` base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                message = ""
            raise ServiceError(
                f"{method} {path} failed: HTTP {exc.code}"
                + (f" ({message})" if message else "")
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach campaign service at {self.base_url}: {exc.reason}"
            ) from exc

    # -- API surface -------------------------------------------------------
    def info(self) -> dict:
        return self._request("GET", "/api/info")

    def jobs_root(self) -> str:
        """Jobs directory the server schedules from (for local workers)."""
        return str(self.info()["jobs_root"])

    def submit(self, spec: Union[CampaignJobSpec, dict]) -> str:
        """Submit (or resume) a campaign job; returns its id."""
        payload = spec.to_dict() if isinstance(spec, CampaignJobSpec) else dict(spec)
        return str(self._request("POST", "/api/jobs", payload)["job_id"])

    def jobs(self) -> List[dict]:
        return list(self._request("GET", "/api/jobs")["jobs"])

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finalized report dict (raises while points remain)."""
        return self._request("GET", f"/api/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/api/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.5,
        on_progress: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the status.

        ``on_progress`` (used by ``repro submit --watch``) is invoked
        with each status snapshot.  Raises :class:`ServiceError` if the
        job is still running when ``timeout`` elapses.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if on_progress is not None:
                on_progress(status)
            if status["status"] in _TERMINAL:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for {job_id} "
                    f"({status['done']}/{status['total']} points done)"
                )
            time.sleep(poll_interval)
