"""Thin urllib client for the campaign service HTTP API.

Everything the CLI's ``repro submit`` / ``repro jobs`` subcommands do
goes through this class, and it is the supported way to drive the
service from Python::

    client = ServiceClient("http://127.0.0.1:8351")
    job_id = client.submit(CampaignJobSpec(preset="blobs-mini", fast=True))
    client.wait(job_id)
    report = SurvivabilityReport.from_dict(client.result(job_id))

Stdlib-only (``urllib``), mirroring the server's zero-dependency
stance.  Failures are *typed*: transport faults and HTTP 5xx raise
:class:`~repro.exceptions.ServiceUnavailableError` (``retryable=True``)
and are retried on a seeded-jitter
:class:`~repro.core.executor.RetryPolicy` schedule before surfacing;
HTTP 4xx raises plain :class:`~repro.exceptions.ServiceError`
(``retryable=False``) immediately — a bad request does not get better
by asking again.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.error
import urllib.request
from typing import Callable, List, Optional, Union

from repro.core.executor import RetryPolicy
from repro.exceptions import ChaosError, ServiceError, ServiceUnavailableError
from repro.service import chaos
from repro.service.jobs import TERMINAL_STATES, CampaignJobSpec


def _retryable(exc: Exception) -> bool:
    """Retry typed-retryable errors and injected (transient) drops."""
    return isinstance(exc, ChaosError) or bool(getattr(exc, "retryable", False))


class ServiceClient:
    """JSON-over-HTTP client bound to one ``repro serve`` base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        if retry is None:
            # Seeded jitter (per base URL) keeps retry schedules
            # deterministic for tests while decorrelating clients that
            # hammer the same server from different URLs/processes.
            seed = int.from_bytes(
                hashlib.sha256(self.base_url.encode("utf-8")).digest()[:4], "big"
            )
            retry = RetryPolicy(
                max_retries=4, backoff_base=0.1, jitter=0.5, jitter_seed=seed
            )
        self.retry = retry

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        """One API call with retries on retryable (transport/5xx) errors."""
        route = f"{method} {path}"
        state = {"attempt": 0}

        def once() -> dict:
            state["attempt"] += 1
            return self._attempt(method, path, payload, route, state["attempt"])

        return self.retry.call(once, token=route, retryable=_retryable)

    def _attempt(
        self, method: str, path: str, payload: Optional[dict], route: str, attempt: int
    ) -> dict:
        chaos.controller().drop_response(route, attempt)
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                message = ""
            detail = f"{route} failed: HTTP {exc.code}" + (
                f" ({message})" if message else ""
            )
            if exc.code >= 500:
                raise ServiceUnavailableError(detail) from exc
            raise ServiceError(detail) from exc
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"cannot reach campaign service at {self.base_url}: {exc.reason}"
            ) from exc
        except (ConnectionResetError, ConnectionRefusedError, TimeoutError) as exc:
            raise ServiceUnavailableError(
                f"connection to campaign service at {self.base_url} "
                f"failed: {exc}"
            ) from exc

    # -- API surface -------------------------------------------------------
    def info(self) -> dict:
        return self._request("GET", "/api/info")

    def healthz(self) -> dict:
        """Liveness snapshot (job counts, worker fleet, uptime)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """Request/error counters plus recovery and chaos tallies."""
        return self._request("GET", "/metrics")

    def jobs_root(self) -> str:
        """Jobs directory the server schedules from (for local workers)."""
        return str(self.info()["jobs_root"])

    def submit(self, spec: Union[CampaignJobSpec, dict]) -> str:
        """Submit (or resume) a campaign job; returns its id."""
        payload = spec.to_dict() if isinstance(spec, CampaignJobSpec) else dict(spec)
        return str(self._request("POST", "/api/jobs", payload)["job_id"])

    def jobs(self) -> List[dict]:
        return list(self._request("GET", "/api/jobs")["jobs"])

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finalized report dict (raises while points remain)."""
        return self._request("GET", f"/api/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/api/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.5,
        on_progress: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the status.

        ``on_progress`` (used by ``repro submit --watch``) is invoked
        with each status snapshot.  Raises :class:`ServiceError` if the
        job is still running when ``timeout`` elapses.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if on_progress is not None:
                on_progress(status)
            if status["status"] in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for {job_id} "
                    f"({status['done']}/{status['total']} points done)"
                )
            time.sleep(poll_interval)
