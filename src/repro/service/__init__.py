"""Campaign service: persistent jobs, leased chunks, multi-worker drain.

This package turns fault campaigns into durable *jobs* that any number
of workers drain cooperatively (DESIGN.md §12):

* :mod:`~repro.service.jobs` — the on-disk :class:`JobStore`
  (content-hash job ids, state machine, finalization) and the
  :class:`CampaignJobSpec` that deterministically reconstructs a grid;
* :mod:`~repro.service.scheduler` — TTL chunk leases with work
  stealing (:class:`LeaseBoard`);
* :mod:`~repro.service.worker` — the draining loop
  (:class:`ServiceWorker`, ``repro worker``);
* :mod:`~repro.service.server` — the stdlib HTTP API + worker fleet
  (:class:`CampaignService`, ``repro serve``);
* :mod:`~repro.service.client` — the urllib client
  (:class:`ServiceClient`, ``repro submit`` / ``repro jobs``);
* :mod:`~repro.service.chaos` — seeded fault injection
  (:class:`ChaosConfig`, ``REPRO_CHAOS`` env config) exercising the
  failure-containment layer (DESIGN.md §13).

The invariant everything here leans on: grid points are
derivation-seeded and content-hash keyed, so a service-drained campaign
is **bit-identical** to a serial one no matter how work is split,
stolen, or re-run.
"""

from repro.service.chaos import CHAOS_MODES, ChaosConfig, ChaosController
from repro.service.client import ServiceClient
from repro.service.jobs import CampaignJobSpec, JobStatus, JobStore
from repro.service.scheduler import Lease, LeaseBoard
from repro.service.server import CampaignService
from repro.service.worker import ServiceWorker, worker_main

__all__ = [
    "CHAOS_MODES",
    "CampaignJobSpec",
    "CampaignService",
    "ChaosConfig",
    "ChaosController",
    "JobStatus",
    "JobStore",
    "Lease",
    "LeaseBoard",
    "ServiceClient",
    "ServiceWorker",
    "worker_main",
]
