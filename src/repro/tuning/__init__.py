"""Online tuning of mapped crossbars (paper Section II-C, Eq. (5))."""

from repro.tuning.online import OnlineTuner, TuningConfig, TuningResult

__all__ = ["OnlineTuner", "TuningConfig", "TuningResult"]
