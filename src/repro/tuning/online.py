"""Sign-based online tuning — paper Section II-C.

After hardware mapping, quantization/aging/noise leave the crossbar
accuracy below the software level.  Online tuning closes the gap with a
simplified hardware-friendly update: exact derivatives are too expensive
to realize on-chip, so only the **sign** of each weight derivative
selects the polarity of a constant-amplitude programming pulse
(Eq. (5))::

    V_i ∝ sign(-dCost/dW_i)

One *iteration* = one such sweep over all mapped layers on one tuning
batch.  Each pulsed device moves ~one quantized level and accrues one
pulse of aging stress — which is exactly why excessive tuning shortens
crossbar lifetime, and why the paper's techniques aim to reduce the
iteration count.

Tuning stops when the target accuracy is reached (converged) or the
iteration budget is exhausted (the lifetime engine treats a budget
overrun as end-of-life).

The sweep itself has two implementations (DESIGN.md §11).  By default
each iteration runs **batched**: sign/threshold/dead-mask decisions for
every layer are computed as whole-array ops and applied through the
crossbars' ``program_pulses(mask, polarity)`` entry point, with the
per-pulse aging accrual and any ``pulse_miss``/stuck-at fault hooks
folded into the same masked update — so the RNG streams and state
version bumps are exactly those of the reference path.  Setting
``REPRO_SCALAR_TUNER=1`` (or calling
:func:`repro.core.fastpath.set_vectorized_enabled` with ``False``)
selects the original scalar ``step_conductance`` sweep, kept as the
oracle that ``tests/tuning/test_tuner_equivalence.py`` diffs the
batched path against bit for bit.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.fastpath import vectorized_enabled
from repro.core.profiling import PROFILER
from repro.exceptions import ConfigurationError
from repro.mapping.network import MappedNetwork
from repro.rng import SeedLike, ensure_rng


@dataclass
class TuningConfig:
    """Knobs of the online tuning controller.

    Attributes
    ----------
    target_accuracy:
        Accuracy on the tuning set at which tuning declares success.
    max_iterations:
        Iteration budget; the paper uses 150.
    batch_size:
        Samples per tuning batch (drawn from the tuning set).
    threshold:
        Per-layer relative gradient-magnitude threshold; devices whose
        ``|grad|`` is below ``threshold * max|grad|`` of their layer are
        not pulsed this iteration.  Keeps the pulse count (and aging)
        focused on the weights that actually matter.
    step_fraction:
        Conductance increment of one tuning pulse, as a fraction of the
        mean conductance level spacing (see
        :meth:`repro.crossbar.crossbar.Crossbar.step_conductance`).
    decay_after:
        Constant-amplitude sign pulses can limit-cycle around the
        target; after this many consecutive non-improving evaluations
        the pulse amplitude is halved (hardware drives the programming
        DAC, so a smaller constant amplitude is realizable — the BSB
        scheme of the paper's ref [16] does the same).  Set 0 to keep
        the amplitude fixed.
    min_step_fraction:
        Lower bound of the decayed amplitude.
    eval_every:
        Accuracy is evaluated every this many iterations (evaluation is
        pure read-out, no aging).
    patience_evals:
        Early-abort: if accuracy has not improved for this many
        consecutive evaluations *and* sits further than
        ``hopeless_gap`` below target, tuning reports failure without
        burning the rest of the budget.  Set to 0 to disable.
    hopeless_gap:
        See ``patience_evals``.
    mask_dead_devices:
        Graceful degradation: zero the gradient at devices whose aged
        window has collapsed before thresholding, so pulses (and their
        aging stress) are not wasted on devices that cannot respond and
        the per-layer ``max|grad|`` threshold is not anchored to an
        untunable weight's error.
    """

    target_accuracy: float = 0.9
    max_iterations: int = 150
    batch_size: int = 64
    threshold: float = 0.25
    step_fraction: float = 0.5
    decay_after: int = 4
    min_step_fraction: float = 0.05
    eval_every: int = 1
    patience_evals: int = 0
    hopeless_gap: float = 0.15
    mask_dead_devices: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.target_accuracy <= 1.0:
            raise ConfigurationError(
                f"target_accuracy must be in (0, 1], got {self.target_accuracy}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError(f"threshold must be in [0, 1], got {self.threshold}")
        if self.step_fraction <= 0:
            raise ConfigurationError(f"step_fraction must be > 0, got {self.step_fraction}")
        if self.decay_after < 0:
            raise ConfigurationError(f"decay_after must be >= 0, got {self.decay_after}")
        if not 0 < self.min_step_fraction <= self.step_fraction:
            raise ConfigurationError(
                "need 0 < min_step_fraction <= step_fraction, got "
                f"{self.min_step_fraction} vs {self.step_fraction}"
            )
        if self.eval_every < 1:
            raise ConfigurationError(f"eval_every must be >= 1, got {self.eval_every}")


@dataclass
class TuningResult:
    """Outcome of one tuning session."""

    converged: bool
    iterations: int
    final_accuracy: float
    initial_accuracy: float
    pulses_applied: int
    accuracy_trace: List[float] = field(default_factory=list)


class OnlineTuner:
    """Runs sign-based tuning sessions against a :class:`MappedNetwork`."""

    def __init__(self, config: Optional[TuningConfig] = None, seed: SeedLike = None) -> None:
        self.config = config if config is not None else TuningConfig()
        self._rng = ensure_rng(seed)

    def tune(
        self,
        network: MappedNetwork,
        x_tune: np.ndarray,
        y_tune: np.ndarray,
    ) -> TuningResult:
        """Tune ``network`` towards the target accuracy on the tuning set.

        Accuracy checks run on the full tuning set; gradient sweeps use
        random ``batch_size`` subsets.  Every sweep pulses the selected
        devices (aging them); evaluation itself applies no stress.

        On the default vectorized path the whole session runs inside
        the network's :meth:`~repro.mapping.network.MappedNetwork.read_reuse`
        scope (hardware reads between sweeps are memoized) and each
        sweep goes through ``apply_tuning_sweep`` → batched
        ``program_pulses``.  With ``REPRO_SCALAR_TUNER`` set, the
        original per-layer ``step_conductance`` sweep runs instead;
        both paths produce bit-identical conductances, pulse counts and
        RNG states.
        """
        PROFILER.increment("tuning.sessions")
        with PROFILER.timer("tuning.session"):
            result = self._tune_impl(network, x_tune, y_tune)
        PROFILER.increment("tuning.iterations", result.iterations)
        PROFILER.increment("tuning.pulses", result.pulses_applied)
        return result

    def _tune_impl(
        self,
        network: MappedNetwork,
        x_tune: np.ndarray,
        y_tune: np.ndarray,
    ) -> TuningResult:
        cfg = self.config
        x_tune = np.asarray(x_tune, dtype=np.float64)
        y_tune = np.asarray(y_tune, dtype=np.float64)
        if len(x_tune) != len(y_tune):
            raise ConfigurationError("x_tune and y_tune lengths differ")

        # Batched network-level sweep where the network offers one
        # (differential networks tune per layer either way); read-reuse
        # scope where available — both no-ops on the scalar path.
        use_batched = vectorized_enabled() and hasattr(network, "apply_tuning_sweep")
        reuse = network.read_reuse() if hasattr(network, "read_reuse") else nullcontext()
        with reuse:
            return self._tune_loop(network, x_tune, y_tune, use_batched)

    def _tune_loop(
        self,
        network: MappedNetwork,
        x_tune: np.ndarray,
        y_tune: np.ndarray,
        use_batched: bool,
    ) -> TuningResult:
        cfg = self.config
        initial = network.score(x_tune, y_tune)
        best = initial
        trace = [initial]
        pulses_before = network.total_pulses()
        stale_evals = 0

        if initial >= cfg.target_accuracy:
            return TuningResult(True, 0, initial, initial, 0, trace)

        accuracy = initial
        step_fraction = cfg.step_fraction
        decay_stale = 0
        for iteration in range(1, cfg.max_iterations + 1):
            idx = self._rng.choice(len(x_tune), size=min(cfg.batch_size, len(x_tune)), replace=False)
            grads = network.gradient_sign_matrices(x_tune[idx], y_tune[idx])
            if use_batched:
                network.apply_tuning_sweep(
                    grads,
                    cfg.threshold,
                    step_fraction,
                    mask_dead=cfg.mask_dead_devices,
                )
            else:
                # Scalar reference sweep (REPRO_SCALAR_TUNER), and the
                # tuning path for networks without apply_tuning_sweep.
                for mapped in network.layers:
                    grad = grads[mapped.layer_index]
                    if cfg.mask_dead_devices:
                        dead = mapped.dead_device_mask()
                        if dead.any():
                            grad = np.where(dead, 0.0, grad)
                    mapped.apply_gradient_signs(grad, cfg.threshold, step_fraction)

            if iteration % cfg.eval_every == 0 or iteration == cfg.max_iterations:
                accuracy = network.score(x_tune, y_tune)
                trace.append(accuracy)
                if accuracy >= cfg.target_accuracy:
                    return TuningResult(
                        True,
                        iteration,
                        accuracy,
                        initial,
                        network.total_pulses() - pulses_before,
                        trace,
                    )
                if accuracy > best + 1e-9:
                    best = accuracy
                    stale_evals = 0
                    decay_stale = 0
                else:
                    stale_evals += 1
                    decay_stale += 1
                if cfg.decay_after and decay_stale >= cfg.decay_after:
                    step_fraction = max(cfg.min_step_fraction, step_fraction / 2.0)
                    decay_stale = 0
                if (
                    cfg.patience_evals
                    and stale_evals >= cfg.patience_evals
                    and accuracy < cfg.target_accuracy - cfg.hopeless_gap
                ):
                    break

        # ``iteration`` (not cfg.max_iterations): the patience break may
        # have stopped the loop early, and the result must report the
        # pulse sweeps actually spent.
        return TuningResult(
            False,
            iteration,
            accuracy,
            initial,
            network.total_pulses() - pulses_before,
            trace,
        )
