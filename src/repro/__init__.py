"""repro — Aging-aware lifetime enhancement for memristor crossbars.

A from-scratch Python reproduction of *"Aging-aware Lifetime Enhancement
for Memristor-based Neuromorphic Computing"* (Zhang, Zhang, Li, Li,
Schlichtmann — DATE 2019).

Subpackages
-----------
``repro.nn``
    Numpy neural-network training substrate (layers, losses, optimizers,
    and the paper's two-segment skewed regularizer).
``repro.data``
    Procedural image/vector datasets (offline Cifar stand-ins).
``repro.device``
    Memristor cell, Arrhenius aging (Eq. 6–7), quantized level grids.
``repro.crossbar``
    Array simulator: programming with per-pulse aging, analog VMM,
    1-of-9 block tracing, DAC/ADC peripherals, tiling.
``repro.mapping``
    Eq. (4) weight↔conductance mapping, fresh and aging-aware policies,
    and :class:`~repro.mapping.network.MappedNetwork`.
``repro.tuning``
    Sign-based online tuning (Eq. 5) with iteration budgets.
``repro.training``
    Baseline and skewed software training, network factories.
``repro.core``
    The paper's contribution: scenarios T+T / ST+T / ST+AT, the
    lifetime simulator and the Fig. 5 framework.
``repro.analysis``
    Distribution/trajectory analyses and ASCII reporting.

Quickstart
----------
>>> from repro import (make_glyph_digits, build_lenet,
...                    AgingAwareFramework, FrameworkConfig)
>>> data = make_glyph_digits(n_train=400, n_test=100, seed=1)
>>> framework = AgingAwareFramework(
...     lambda seed: build_lenet(seed=seed), data, seed=7)
>>> # comparison = framework.compare()   # runs T+T / ST+T / ST+AT
"""

from repro.core import (
    SCENARIOS,
    AgingAwareFramework,
    FrameworkConfig,
    LifetimeConfig,
    LifetimeResult,
    LifetimeSimulator,
    Scenario,
    ScenarioComparison,
)
from repro.crossbar import BlockTracer, Crossbar, TiledMatrix
from repro.data import (
    Dataset,
    make_blobs,
    make_glyph_digits,
    make_rings,
    make_spirals,
    make_textured_shapes,
    make_xor,
)
from repro.device import AgingParams, ArrheniusAging, DeviceConfig, LevelGrid, Memristor
from repro.device.faults import FaultModel, inject_faults, inject_faults_network
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    CrossbarFailure,
    DeviceError,
    ReproError,
    ShapeError,
)
from repro.mapping import (
    AgingAwareMapper,
    FreshMapper,
    LinearWeightMapping,
    MappedNetwork,
)
from repro.io import (
    load_comparison,
    load_result,
    load_weights,
    save_comparison,
    save_result,
    save_weights,
)
from repro.mitigation import PulseShaping, RowSwapper, SeriesResistor
from repro.nn import Sequential, SkewedL2Regularizer
from repro.training import (
    SkewedTrainingConfig,
    TrainConfig,
    build_lenet,
    build_mlp,
    build_vggnet,
    skewed_train,
    train_baseline,
)
from repro.tuning import OnlineTuner, TuningConfig, TuningResult

__version__ = "1.0.0"

__all__ = [
    "AgingAwareFramework",
    "AgingAwareMapper",
    "AgingParams",
    "ArrheniusAging",
    "BlockTracer",
    "ConfigurationError",
    "ConvergenceError",
    "Crossbar",
    "CrossbarFailure",
    "Dataset",
    "DeviceConfig",
    "DeviceError",
    "FaultModel",
    "FrameworkConfig",
    "FreshMapper",
    "LevelGrid",
    "LifetimeConfig",
    "LifetimeResult",
    "LifetimeSimulator",
    "LinearWeightMapping",
    "MappedNetwork",
    "Memristor",
    "OnlineTuner",
    "PulseShaping",
    "ReproError",
    "RowSwapper",
    "SeriesResistor",
    "SCENARIOS",
    "Scenario",
    "ScenarioComparison",
    "Sequential",
    "ShapeError",
    "SkewedL2Regularizer",
    "SkewedTrainingConfig",
    "TiledMatrix",
    "TrainConfig",
    "TuningConfig",
    "TuningResult",
    "build_lenet",
    "build_mlp",
    "build_vggnet",
    "inject_faults",
    "inject_faults_network",
    "load_comparison",
    "load_result",
    "load_weights",
    "make_blobs",
    "make_glyph_digits",
    "make_rings",
    "make_spirals",
    "make_textured_shapes",
    "make_xor",
    "save_comparison",
    "save_result",
    "save_weights",
    "skewed_train",
    "train_baseline",
    "__version__",
]
