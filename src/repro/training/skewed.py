"""Skewed-weight software training — paper Section IV-A.

Two-phase procedure:

1. **Pre-train** conventionally (cross-entropy + L2) so each layer
   settles into its quasi-normal weight distribution.  The paper's
   reference weight rule needs this: :math:`\\beta_i = c \\cdot
   \\sigma_i` where :math:`\\sigma_i` is the standard deviation of layer
   *i*'s trained weights (Section V / Table II).
2. **Skew-train**: swap the L2 term for the two-segment regularizer of
   Eq. (8)–(10) with per-layer :math:`\\beta_i` and penalties
   :math:`\\lambda_1 \\ge \\lambda_2`, and continue training.  The
   network keeps (approximately) its accuracy — neural networks have
   "flexibility in weight selection" — while the distribution skews
   towards small values as in Fig. 6(a)/Fig. 9.

The resulting small weights map to large resistances: lower programming
currents, less aging, and denser quantization levels under the inverse
resistance→conductance map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.nn.model import Sequential, TrainingHistory
from repro.nn.regularizers import SkewedL2Regularizer, beta_from_std
from repro.training.trainer import TrainConfig, train_baseline


@dataclass
class SkewedTrainingConfig:
    """Parameters of the skewed phase (the paper's Table II knobs).

    Attributes
    ----------
    beta_scale:
        The constant ``c`` of the rule :math:`\\beta_i = c\\,\\sigma_i`.
        **Negative by default**: the reference weight sits on the left
        flank of the quasi-normal distribution (Fig. 7), so the mass is
        pushed towards the *algebraically smallest* weights — which
        Eq. (4) maps to the smallest conductances / largest resistances.
        A positive reference would leave the mass mid-range in
        conductance and forfeit both the current reduction and the
        dense-quantization benefit.
    lambda1, lambda2:
        Penalties left/right of the reference weight; the paper uses
        ``lambda1 >> lambda2`` for the small net and ``lambda1 =
        lambda2`` for the deep net (large nets are more sensitive).
    pretrain:
        Config of the conventional pre-training phase.
    skew_epochs, skew_batch_size:
        Duration/batching of the skewed phase.
    """

    beta_scale: float = -1.0
    lambda1: float = 8e-2
    lambda2: float = 1e-3
    pretrain: TrainConfig = None  # type: ignore[assignment]
    skew_epochs: int = 20
    skew_batch_size: int = 32
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.pretrain is None:
            self.pretrain = TrainConfig()
        if self.lambda1 < self.lambda2:
            raise ConfigurationError(
                f"need lambda1 >= lambda2, got {self.lambda1} < {self.lambda2}"
            )
        if self.skew_epochs < 1:
            raise ConfigurationError(f"skew_epochs must be >= 1, got {self.skew_epochs}")


@dataclass
class SkewedTrainingResult:
    """Both phases' histories plus the per-layer reference weights."""

    pretrain_history: TrainingHistory
    skew_history: TrainingHistory
    betas: Dict[int, float]

    def final_accuracy(self) -> float:
        """Validation accuracy at the end of the skewed phase."""
        if self.skew_history.val_accuracy:
            return self.skew_history.val_accuracy[-1]
        return self.skew_history.accuracy[-1]


def layer_betas(model: Sequential, beta_scale: float) -> Dict[int, float]:
    """Per-layer reference weights :math:`\\beta_i = c\\,\\sigma_i`."""
    betas: Dict[int, float] = {}
    for idx, layer in model.weighted_layers():
        betas[idx] = beta_from_std(layer.params["W"], beta_scale)
    return betas


def skewed_train(
    model: Sequential,
    dataset: Dataset,
    config: Optional[SkewedTrainingConfig] = None,
    pretrained: bool = False,
) -> SkewedTrainingResult:
    """Run the full two-phase skewed training on ``model``.

    With ``pretrained=True`` the first phase is skipped (the model is
    assumed already trained) and only the reference weights are read
    from the existing distribution.
    """
    config = config if config is not None else SkewedTrainingConfig()
    if pretrained:
        pre_history = TrainingHistory()
    else:
        pre_history = train_baseline(model, dataset, config.pretrain)

    betas = layer_betas(model, config.beta_scale)
    regs = {
        idx: SkewedL2Regularizer(beta, config.lambda1, config.lambda2)
        for idx, beta in betas.items()
    }
    model.set_regularizers(regs)
    skew_history = model.fit(
        dataset.x_train,
        dataset.y_train,
        epochs=config.skew_epochs,
        batch_size=config.skew_batch_size,
        validation_data=(dataset.x_test, dataset.y_test),
        verbose=config.verbose,
    )
    return SkewedTrainingResult(pre_history, skew_history, betas)


def distribution_skewness(weights: np.ndarray) -> float:
    """Adjusted Fisher–Pearson sample skewness of a weight vector.

    Positive for right-skewed distributions; the paper's skewed training
    should push this up relative to the quasi-normal baseline (whose
    skewness is near zero).
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    n = w.size
    if n < 3:
        return 0.0
    mean = w.mean()
    std = w.std()
    if std == 0:
        return 0.0
    m3 = np.mean((w - mean) ** 3)
    g1 = m3 / std**3
    return float(np.sqrt(n * (n - 1)) / (n - 2) * g1)
