"""Software training, including the paper's skewed-weight procedure."""

from repro.training.networks import build_lenet, build_mlp, build_vggnet
from repro.training.skewed import (
    SkewedTrainingConfig,
    SkewedTrainingResult,
    distribution_skewness,
    layer_betas,
    skewed_train,
)
from repro.training.trainer import TrainConfig, train_baseline

__all__ = [
    "SkewedTrainingConfig",
    "SkewedTrainingResult",
    "TrainConfig",
    "build_lenet",
    "build_mlp",
    "build_vggnet",
    "distribution_skewness",
    "layer_betas",
    "skewed_train",
    "train_baseline",
]
