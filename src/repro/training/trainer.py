"""Baseline (conventional) software training — paper Eq. (1)–(3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.nn.model import Sequential, TrainingHistory
from repro.nn.regularizers import L2Regularizer


@dataclass
class TrainConfig:
    """Epochs/batching/regularization for a software training run."""

    epochs: int = 15
    batch_size: int = 32
    l2_lambda: float = 1e-4
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.l2_lambda < 0:
            raise ConfigurationError(f"l2_lambda must be >= 0, got {self.l2_lambda}")


def train_baseline(
    model: Sequential,
    dataset: Dataset,
    config: Optional[TrainConfig] = None,
) -> TrainingHistory:
    """Train with cross-entropy + standard L2 (the paper's Eq. (1)).

    This produces the quasi-normal weight distribution of Fig. 3(a) that
    the T+T scenario maps directly to hardware.
    """
    config = config if config is not None else TrainConfig()
    if config.l2_lambda > 0:
        model.set_regularizers(L2Regularizer(config.l2_lambda))
    else:
        model.set_regularizers(None)
    return model.fit(
        dataset.x_train,
        dataset.y_train,
        epochs=config.epochs,
        batch_size=config.batch_size,
        validation_data=(dataset.x_test, dataset.y_test),
        verbose=config.verbose,
    )
