"""Network factories for the two evaluation roles of the paper.

The paper evaluates LeNet-5 (5 layers: 2 conv + 3 FC) on Cifar10 and
VGG-16 (13 conv + 3 FC) on Cifar100.  Running networks of that size on
one CPU core in numpy is not feasible, so the factories build
*scaled-down* networks that preserve the properties the experiments
need:

* :func:`build_lenet` — a small conv+FC network (conv, pool, conv,
  FC, FC head) in the LeNet role, sized for the 12x12 glyph-digit task;
* :func:`build_vggnet` — a deeper all-3x3-conv network with more conv
  than FC capacity, in the VGG role for the 16x16 textured-shapes task
  (crucial for Fig. 11's conv-vs-FC aging contrast);
* :func:`build_mlp` — a plain MLP for toy datasets and quick tests.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.nn import (
    Activation,
    Adam,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Sequential,
    SoftmaxCrossEntropy,
)
from repro.rng import SeedLike


def build_mlp(
    input_dim: int,
    n_classes: int,
    hidden: Sequence[int] = (32, 16),
    lr: float = 0.01,
    seed: SeedLike = None,
) -> Sequential:
    """Fully-connected classifier for flat inputs."""
    if input_dim < 1 or n_classes < 2:
        raise ConfigurationError("need input_dim >= 1 and n_classes >= 2")
    layers = []
    for width in hidden:
        layers += [Dense(width), Activation("relu")]
    layers += [Dense(n_classes)]
    model = Sequential(layers, loss=SoftmaxCrossEntropy(), optimizer=Adam(lr), seed=seed)
    return model.build((input_dim,))


def build_lenet(
    input_shape: Tuple[int, int, int] = (1, 12, 12),
    n_classes: int = 10,
    lr: float = 0.002,
    seed: SeedLike = None,
) -> Sequential:
    """LeNet-role network: 2 conv + 2 FC layers (+ head).

    For the default 12x12 input: conv5x5 (8 maps) → pool → conv3x3
    (16 maps) → FC 64 → FC ``n_classes``.  The 5x5 first-layer kernels
    follow LeNet-5 and matter for the hardware experiments: a larger
    first-layer device matrix gives per-weight redundancy, so single
    noisy devices do not dominate the mapped accuracy.
    """
    model = Sequential(
        [
            Conv2D(8, 5),
            Activation("relu"),
            MaxPool2D(2),
            Conv2D(16, 3),
            Activation("relu"),
            Flatten(),
            Dense(64),
            Activation("relu"),
            Dense(n_classes),
        ],
        loss=SoftmaxCrossEntropy(),
        optimizer=Adam(lr),
        seed=seed,
    )
    return model.build(input_shape)


def build_vggnet(
    input_shape: Tuple[int, int, int] = (1, 16, 16),
    n_classes: int = 20,
    width: int = 8,
    lr: float = 0.002,
    seed: SeedLike = None,
) -> Sequential:
    """VGG-role network: five 3x3 conv layers in three stages + 2 FC.

    Stage widths ``(width, 2*width, 4*width)`` with 2x2 max pooling
    between stages, mirroring VGG's doubling pattern.  Most parameters
    and most programming traffic live in the conv layers, which is what
    produces the stronger conv-layer aging of Fig. 11.
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    model = Sequential(
        [
            Conv2D(width, 3, padding=1),
            Activation("relu"),
            Conv2D(width, 3, padding=1),
            Activation("relu"),
            MaxPool2D(2),
            Conv2D(2 * width, 3, padding=1),
            Activation("relu"),
            Conv2D(2 * width, 3, padding=1),
            Activation("relu"),
            MaxPool2D(2),
            Conv2D(4 * width, 3, padding=1),
            Activation("relu"),
            MaxPool2D(2),
            Flatten(),
            Dense(48),
            Activation("relu"),
            Dense(n_classes),
        ],
        loss=SoftmaxCrossEntropy(),
        optimizer=Adam(lr),
        seed=seed,
    )
    return model.build(input_shape)
