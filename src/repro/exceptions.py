"""Exception hierarchy for the repro library.

A single root :class:`ReproError` lets applications catch everything from
this package with one clause, while the concrete subclasses let tests and
callers distinguish configuration mistakes from simulated hardware
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every exception raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge within its budget."""


class CrossbarFailure(ReproError, RuntimeError):
    """A simulated crossbar can no longer reach the target accuracy.

    Raised by the lifetime engine when online tuning exceeds its iteration
    budget — the paper's definition of end-of-life.
    """

    def __init__(self, message: str, applications_completed: int = 0) -> None:
        super().__init__(message)
        #: Number of applications the crossbar processed before failing.
        self.applications_completed = applications_completed


class DeviceError(ReproError, RuntimeError):
    """A memristor device was driven outside its physical envelope."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing, corrupt, or from an unknown schema."""


class ServiceError(ReproError, RuntimeError):
    """A campaign-service operation failed (unknown job, bad spec, HTTP error)."""
