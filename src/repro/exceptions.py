"""Exception hierarchy for the repro library.

A single root :class:`ReproError` lets applications catch everything from
this package with one clause, while the concrete subclasses let tests and
callers distinguish configuration mistakes from simulated hardware
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every exception raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge within its budget."""


class CrossbarFailure(ReproError, RuntimeError):
    """A simulated crossbar can no longer reach the target accuracy.

    Raised by the lifetime engine when online tuning exceeds its iteration
    budget — the paper's definition of end-of-life.
    """

    def __init__(self, message: str, applications_completed: int = 0) -> None:
        super().__init__(message)
        #: Number of applications the crossbar processed before failing.
        self.applications_completed = applications_completed


class DeviceError(ReproError, RuntimeError):
    """A memristor device was driven outside its physical envelope."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing, corrupt, or from an unknown schema."""


class ServiceError(ReproError, RuntimeError):
    """A campaign-service operation failed (unknown job, bad spec, HTTP error).

    ``retryable`` distinguishes errors a caller may sensibly retry
    (transient infrastructure trouble) from ones that will fail the
    same way every time (bad spec, unknown job, 4xx responses).
    """

    #: Whether retrying the same operation can plausibly succeed.
    retryable = False


class ServiceUnavailableError(ServiceError):
    """The campaign service could not be reached or answered 5xx.

    Raised by :class:`~repro.service.client.ServiceClient` for
    connection failures (``urllib.error.URLError``,
    ``ConnectionResetError``) and HTTP 5xx responses — the transient
    class of failures worth retrying with backoff.  4xx responses stay
    plain (fatal) :class:`ServiceError`.
    """

    retryable = True


class CorruptStateError(ReproError, RuntimeError):
    """A guarded on-disk state file failed its checksum or did not parse.

    Raised by :func:`repro.io.load_json_guarded`; the campaign service
    catches it and rebuilds the damaged file (``leases.json`` /
    ``state.json``) from the journal, which stays the single source of
    truth.
    """


class ChaosError(ReproError, RuntimeError):
    """A failure injected by the chaos harness (never raised in production).

    Deliberately *not* a subclass of the errors it imitates: recovery
    paths must treat it like any other unexpected exception, which is
    exactly what the chaos battery verifies.
    """
