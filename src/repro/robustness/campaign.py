"""Fault-injection campaigns: fanning a fault grid through the executor.

A campaign sweeps a grid of fault scenarios — fault kind × severity ×
degradation on/off — over one lifetime scenario of an
:class:`~repro.core.framework.AgingAwareFramework`.  Each grid point is
one full lifetime simulation; points fan out through the
:class:`~repro.core.executor.ParallelExecutor` (bit-identical to a
serial run, resilient to worker crashes via its retry/rebuild
machinery) and share the on-disk :class:`~repro.core.executor.ResultCache`
with plain scenario runs: the fault-free baseline point hits the same
cache entry an ordinary ``run_scenario`` would write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.checkpoint import RunJournal
from repro.core.executor import ParallelExecutor, ResultCache, Task
from repro.core.framework import AgingAwareFramework
from repro.core.profiling import PROFILER
from repro.core.results import LifetimeResult
from repro.exceptions import ConfigurationError
from repro.robustness.degradation import DegradationPolicy
from repro.robustness.report import SurvivabilityRecord, SurvivabilityReport
from repro.robustness.schedule import FaultSchedule


@dataclass(frozen=True)
class CampaignPoint:
    """One grid cell: a fault schedule plus a degradation policy."""

    name: str
    fault_kind: str
    fault_rate: float
    schedule: Optional[FaultSchedule] = None
    degradation: Optional[DegradationPolicy] = None

    @property
    def degradation_enabled(self) -> bool:
        return self.degradation is not None and self.degradation.any_enabled


def build_grid(
    kinds: Sequence[str] = ("stuck_at",),
    rates: Sequence[float] = (0.005, 0.01, 0.02),
    window: int = 1,
    with_degradation: bool = True,
    include_baseline: bool = True,
) -> List[CampaignPoint]:
    """Standard campaign grid: kinds × rates × degradation {off, on}.

    The fault-free baseline point anchors the lifetime-degradation
    ratios of the report; ``with_degradation=False`` drops the
    recovery-enabled half of the grid.
    """
    if not kinds or not rates:
        raise ConfigurationError("grid needs at least one kind and one rate")
    points: List[CampaignPoint] = []
    if include_baseline:
        points.append(CampaignPoint(name="baseline", fault_kind="none", fault_rate=0.0))
    policies: List[Optional[DegradationPolicy]] = [None]
    if with_degradation:
        policies.append(DegradationPolicy.enabled())
    for kind in kinds:
        for rate in rates:
            if rate <= 0:
                raise ConfigurationError(f"fault rates must be > 0, got {rate}")
            schedule = FaultSchedule.single(kind, rate, window=window)
            for policy in policies:
                suffix = "deg" if policy is not None else "raw"
                points.append(
                    CampaignPoint(
                        name=f"{kind}@{rate:g}/{suffix}",
                        fault_kind=kind,
                        fault_rate=float(rate),
                        schedule=schedule,
                        degradation=policy,
                    )
                )
    return points


class FaultCampaign:
    """Run a grid of fault points against one lifetime scenario."""

    def __init__(
        self,
        framework: AgingAwareFramework,
        scenario: str = "st+at",
        repeat: int = 0,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        journal: Optional[RunJournal] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if repeat < 0:
            raise ConfigurationError(f"repeat must be >= 0, got {repeat}")
        self.framework = framework
        self.scenario = framework._resolve_scenario(scenario)
        self.repeat = int(repeat)
        self.workers = int(workers)
        self.cache = cache
        #: Points per pool submission in parallel mode (``None`` = auto
        #: adaptive chunking, ``1`` = legacy one-future-per-point).
        self.chunk_size = chunk_size
        #: Optional crash-safe journal: completed grid points are
        #: appended durably as they finish, and a re-launched campaign
        #: over the same journal re-executes zero of them.
        self.journal = journal

    def point_key(self, point: CampaignPoint) -> str:
        """Content-hash identity of one grid point (cache AND journal).

        The same fingerprint the :class:`ResultCache` uses, so journal
        replay obeys identical invalidation semantics: any change to the
        framework config, dataset, scenario or fault grid re-executes.
        The campaign service leases and journals grid points under these
        keys, which is what keeps service-drained campaigns idempotent
        and bit-identical to serial runs.
        """
        extra = (
            None
            if point.schedule is None and point.degradation is None
            else ("robustness/v1", point.schedule, point.degradation)
        )
        return self.framework.scenario_cache_key(self.scenario, self.repeat, extra=extra)

    def _point_cache_key(self, point: CampaignPoint) -> Optional[str]:
        if self.cache is None:
            return None
        return self.point_key(point)

    def run(self, points: Sequence[CampaignPoint]) -> SurvivabilityReport:
        """Simulate every grid point and assemble the report.

        With ``workers > 1`` the points run concurrently through the
        executor (training happens once in the parent, before fan-out);
        results are bit-identical to a serial run.
        """
        if not points:
            raise ConfigurationError("campaign needs at least one point")
        names = [p.name for p in points]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate campaign point names in {names}")
        point_perf = {}
        if self.workers <= 1:
            # Serial mode: capture per-point perf-counter deltas so the
            # report can attribute kernel-cache savings and vmm
            # throughput to individual grid points.  (Counters are
            # process-local; the parallel branch leaves perf empty.
            # Journal-replayed points also skip perf capture — nothing
            # executed.)
            results = []
            for p in points:
                key = self.point_key(p) if self.journal is not None else None
                if key is not None:
                    # Pick up points completed by concurrent drainers of
                    # the same journal (service workers, sibling runs).
                    self.journal.refresh()
                if key is not None and key in self.journal:
                    self.journal.skipped += 1
                    results.append(LifetimeResult.from_dict(self.journal.get(key)))
                    continue
                with PROFILER.capture() as delta:
                    results.append(
                        self.framework.run_scenario(
                            self.scenario,
                            repeat=self.repeat,
                            cache=self.cache,
                            fault_schedule=p.schedule,
                            degradation=p.degradation,
                        )
                    )
                point_perf[p.name] = delta.to_dict()
                if key is not None:
                    self.journal.record(key, results[-1].to_dict())
        else:
            self.framework.trained_model(self.scenario.skewed_training)
            tasks = [
                Task(
                    key=p.name,
                    fn=_run_point_in_worker,
                    args=(
                        self.framework,
                        self.scenario.key,
                        self.repeat,
                        p.schedule,
                        p.degradation,
                    ),
                    cache_key=self._point_cache_key(p),
                    journal_key=(
                        self.point_key(p) if self.journal is not None else None
                    ),
                    encode=LifetimeResult.to_dict,
                    decode=LifetimeResult.from_dict,
                )
                for p in points
            ]
            executor = ParallelExecutor(
                workers=self.workers,
                cache=self.cache,
                journal=self.journal,
                chunk_size=self.chunk_size,
            )
            results = [o.value for o in executor.run(tasks, reraise=True)]

        report = SurvivabilityReport(
            workload=self.framework.dataset.name,
            scenario_key=self.scenario.key,
            perf=point_perf,
        )
        for point, result in zip(points, results):
            report.add(record_from_result(point, result))
        return report


def record_from_result(
    point: CampaignPoint, result: LifetimeResult
) -> SurvivabilityRecord:
    """Collapse one lifetime trajectory into a survivability record."""
    n_windows = len(result.windows)
    converged = sum(1 for w in result.windows if w.converged)
    final_accuracy = result.windows[-1].accuracy_after if result.windows else 0.0
    return SurvivabilityRecord(
        point=point.name,
        fault_kind=point.fault_kind,
        fault_rate=point.fault_rate,
        degradation=point.degradation_enabled,
        lifetime_applications=result.lifetime_applications,
        windows_survived=result.windows_survived,
        tuning_success_rate=converged / n_windows if n_windows else 0.0,
        final_accuracy=final_accuracy,
        failed=result.failed,
    )


def _run_point_in_worker(
    framework: AgingAwareFramework,
    scenario_key: str,
    repeat: int,
    schedule: Optional[FaultSchedule],
    degradation: Optional[DegradationPolicy],
) -> LifetimeResult:
    """Module-level task body so the executor can ship it to workers."""
    return framework.run_scenario(
        scenario_key,
        repeat=repeat,
        fault_schedule=schedule,
        degradation=degradation,
    )
