"""Graceful-degradation policy bundle.

Injected faults are only half the story — the interesting question is
how much of the damage the *controller* can absorb.  The repo has three
degradation levers, each living in the subsystem it protects:

* **Dead-device gradient masking**
  (:attr:`repro.tuning.online.TuningConfig.mask_dead_devices`): tuning
  stops wasting constant-amplitude pulses (and their aging stress) on
  devices whose window has collapsed, and stops letting an untunable
  weight's gradient anchor the per-layer pulse threshold.
* **Fault-aware range selection**
  (:class:`repro.mapping.aging_aware.AgingAwareMapper` with
  ``fault_aware=True``): traced bounds of stuck/dead devices are
  excluded from common-range candidates so a handful of welded cells
  cannot compress every healthy device into a few levels.
* **Stuck-arm compensation** (differential pairs,
  :meth:`repro.mapping.differential.DifferentialMappedLayer.program`
  with ``compensate_stuck=True``): when one arm of a pair is stuck the
  healthy partner is retargeted so the pair difference still realizes
  the weight.

:class:`DegradationPolicy` bundles the switches so campaigns can toggle
recovery as one axis of the fault grid.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DegradationPolicy:
    """Which graceful-degradation mechanisms are active."""

    mask_dead_devices: bool = True
    fault_aware_mapping: bool = True
    compensate_stuck: bool = True

    @classmethod
    def enabled(cls) -> "DegradationPolicy":
        """All mechanisms on (the campaign default)."""
        return cls()

    @classmethod
    def disabled(cls) -> "DegradationPolicy":
        """All mechanisms off — the ablation baseline."""
        return cls(
            mask_dead_devices=False,
            fault_aware_mapping=False,
            compensate_stuck=False,
        )

    @property
    def any_enabled(self) -> bool:
        return self.mask_dead_devices or self.fault_aware_mapping or self.compensate_stuck

    def to_dict(self) -> dict:
        return {
            "mask_dead_devices": self.mask_dead_devices,
            "fault_aware_mapping": self.fault_aware_mapping,
            "compensate_stuck": self.compensate_stuck,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DegradationPolicy":
        return cls(
            mask_dead_devices=bool(d.get("mask_dead_devices", True)),
            fault_aware_mapping=bool(d.get("fault_aware_mapping", True)),
            compensate_stuck=bool(d.get("compensate_stuck", True)),
        )
