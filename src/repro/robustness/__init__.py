"""Fault-injection campaigns and graceful degradation.

The paper's lifetime model assumes defect-free arrays; this package
quantifies what happens when they are not.  :class:`FaultSchedule`
injects field faults (stuck-at, drift bursts, sensing noise,
programming-pulse misses) at chosen windows of a
:class:`~repro.core.lifetime.LifetimeSimulator` run,
:class:`DegradationPolicy` switches the recovery levers built into
mapping and tuning, :class:`FaultCampaign` fans a grid of fault
scenarios through the parallel executor, and
:class:`SurvivabilityReport` aggregates the results into
accuracy-vs-fault-rate and lifetime-degradation curves.
"""

from repro.robustness.campaign import (
    CampaignPoint,
    FaultCampaign,
    build_grid,
    record_from_result,
)
from repro.robustness.degradation import DegradationPolicy
from repro.robustness.report import SurvivabilityRecord, SurvivabilityReport
from repro.robustness.schedule import FaultEvent, FaultSchedule

__all__ = [
    "CampaignPoint",
    "DegradationPolicy",
    "FaultCampaign",
    "FaultEvent",
    "FaultSchedule",
    "SurvivabilityRecord",
    "SurvivabilityReport",
    "build_grid",
    "record_from_result",
]
