"""Fault schedules: injecting faults *during* a lifetime run.

The static :mod:`repro.device.faults` model covers fabrication defects
present from day one.  Real arrays also develop faults in the field —
devices weld shut mid-life, selector drivers start dropping pulses,
sense amplifiers get noisier.  A :class:`FaultSchedule` is a list of
:class:`FaultEvent` entries pinned to application-window indices; the
:class:`~repro.core.lifetime.LifetimeSimulator` applies due events at
the start of each window, *before* the window's applications and the
maintenance (remap + tune) cycle, so the recovery machinery sees the
fault exactly the way a deployed controller would.

Composition with the aging model is deliberate, not incidental:

* ``stuck_at`` events pin the device resistance **and** exhaust the
  device's endurance (stress time jumps past window collapse, see
  :func:`repro.device.faults.inject_faults`), so every later
  programming/tuning call skips the device through the ordinary
  dead-device mask — a stuck device and an aged-to-death device are
  indistinguishable to the controller, which is what makes the
  graceful-degradation policies uniform.
* ``drift`` events add a one-shot extra lognormal conductance drift on
  top of the per-window baseline drift (recoverable by remapping, no
  stress).
* ``read_noise`` events raise the read-out noise sigma persistently
  from their window on (sensing degradation does not heal).
* ``pulse_miss`` events set the probability that a programming/tuning
  pulse silently fails to fire from their window on (the device neither
  moves nor ages on a missed pulse).

Every knob composes identically with both pulse paths (DESIGN.md §11):
the miss draw and the dead-device skip are folded into the same masked
update whether the sweep runs vectorized or through the
``REPRO_SCALAR_TUNER`` per-device reference, so a faulted run is
bit-identical across paths — the equivalence battery drives these
hooks explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.device.faults import FaultModel, inject_faults_network
from repro.exceptions import ConfigurationError

_KINDS = ("stuck_at", "drift", "read_noise", "pulse_miss")


@dataclass(frozen=True)
class FaultEvent:
    """One fault-injection event, pinned to an application window.

    Only the fields relevant to ``kind`` are read:

    ``stuck_at``
        ``rate_lrs`` / ``rate_hrs`` — fractions of all devices welded to
        their low/high resistance extreme (one-shot).
    ``drift``
        ``magnitude`` — lognormal sigma of a one-shot extra drift.
    ``read_noise``
        ``sigma`` — extra relative read-noise added persistently.
    ``pulse_miss``
        ``miss_rate`` — persistent programming-pulse failure probability.
    """

    kind: str
    window: int = 0
    rate_lrs: float = 0.0
    rate_hrs: float = 0.0
    magnitude: float = 0.0
    sigma: float = 0.0
    miss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {_KINDS}"
            )
        if self.window < 0:
            raise ConfigurationError(f"window must be >= 0, got {self.window}")
        for name in ("rate_lrs", "rate_hrs", "magnitude", "sigma"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if not 0.0 <= self.miss_rate < 1.0:
            raise ConfigurationError(
                f"miss_rate must be in [0, 1), got {self.miss_rate}"
            )

    @property
    def total_rate(self) -> float:
        """Headline severity of the event (for reports/grids)."""
        if self.kind == "stuck_at":
            return self.rate_lrs + self.rate_hrs
        if self.kind == "drift":
            return self.magnitude
        if self.kind == "read_noise":
            return self.sigma
        return self.miss_rate

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "window": self.window,
            "rate_lrs": self.rate_lrs,
            "rate_hrs": self.rate_hrs,
            "magnitude": self.magnitude,
            "sigma": self.sigma,
            "miss_rate": self.miss_rate,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultEvent":
        return cls(
            kind=str(d["kind"]),
            window=int(d["window"]),
            rate_lrs=float(d.get("rate_lrs", 0.0)),
            rate_hrs=float(d.get("rate_hrs", 0.0)),
            magnitude=float(d.get("magnitude", 0.0)),
            sigma=float(d.get("sigma", 0.0)),
            miss_rate=float(d.get("miss_rate", 0.0)),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of fault events over a lifetime run.

    Immutable (so it fingerprints into stable executor cache keys); the
    application log lives in the simulator's window records, not here.
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    def events_at(self, window: int) -> List[FaultEvent]:
        """Events due at the start of ``window`` (0-based)."""
        return [e for e in self.events if e.window == window]

    def last_window(self) -> int:
        """Index of the latest scheduled window (-1 when empty)."""
        return max((e.window for e in self.events), default=-1)

    def apply(self, network, window: int, rng: np.random.Generator) -> List[FaultEvent]:
        """Apply all events due at ``window`` to ``network``.

        ``rng`` must be a dedicated stream (the simulator derives one);
        stuck-at sampling consumes it, the persistent knob events do
        not.  Returns the events applied, for window-record bookkeeping.
        """
        due = self.events_at(window)
        for event in due:
            if event.kind == "stuck_at":
                model = FaultModel(rate_lrs=event.rate_lrs, rate_hrs=event.rate_hrs)
                inject_faults_network(network, model, rng)
            elif event.kind == "drift":
                network.apply_drift(event.magnitude)
            elif event.kind == "read_noise":
                for tile in _iter_tiles(network):
                    tile.read_noise_extra += event.sigma
            elif event.kind == "pulse_miss":
                for tile in _iter_tiles(network):
                    tile.pulse_miss_rate = min(
                        0.999, tile.pulse_miss_rate + event.miss_rate
                    )
        return due

    # -- convenience constructors -----------------------------------------
    @classmethod
    def stuck_at_midlife(
        cls, rate: float, window: int = 1, lrs_fraction: float = 0.5
    ) -> "FaultSchedule":
        """Single stuck-at event splitting ``rate`` between LRS and HRS."""
        if not 0.0 <= lrs_fraction <= 1.0:
            raise ConfigurationError(
                f"lrs_fraction must be in [0, 1], got {lrs_fraction}"
            )
        return cls(
            events=(
                FaultEvent(
                    kind="stuck_at",
                    window=window,
                    rate_lrs=rate * lrs_fraction,
                    rate_hrs=rate * (1.0 - lrs_fraction),
                ),
            )
        )

    @classmethod
    def single(cls, kind: str, rate: float, window: int = 1) -> "FaultSchedule":
        """One event of ``kind`` with headline severity ``rate``."""
        if kind == "stuck_at":
            return cls.stuck_at_midlife(rate, window=window)
        if kind == "drift":
            return cls(events=(FaultEvent(kind="drift", window=window, magnitude=rate),))
        if kind == "read_noise":
            return cls(events=(FaultEvent(kind="read_noise", window=window, sigma=rate),))
        if kind == "pulse_miss":
            return cls(events=(FaultEvent(kind="pulse_miss", window=window, miss_rate=rate),))
        raise ConfigurationError(f"unknown fault kind {kind!r}; choose from {_KINDS}")

    def to_dict(self) -> dict:
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSchedule":
        return cls(events=tuple(FaultEvent.from_dict(e) for e in d.get("events", ())))


def _iter_tiles(network):
    """All crossbar tiles of a mapped network (single or differential)."""
    for layer in network.layers:
        if hasattr(layer, "tiles"):
            for _rs, _cs, tile in layer.tiles.iter_tiles():
                yield tile
        else:  # differential pair: plus/minus arms
            for _rs, _cs, tile in layer.plus.iter_tiles():
                yield tile
            for _rs, _cs, tile in layer.minus.iter_tiles():
                yield tile
