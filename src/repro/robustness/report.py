"""Survivability reporting for fault campaigns.

A campaign produces one :class:`SurvivabilityRecord` per grid point
(fault kind × severity × degradation on/off); the
:class:`SurvivabilityReport` aggregates them into the two curves that
matter for dependability analysis — accuracy vs fault rate and lifetime
degradation per fault class — and renders as JSON (round-trippable via
``to_dict``/``from_dict``) or a text table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SurvivabilityRecord:
    """Outcome of one campaign grid point."""

    point: str
    fault_kind: str
    fault_rate: float
    degradation: bool
    lifetime_applications: int
    windows_survived: int
    tuning_success_rate: float
    final_accuracy: float
    failed: bool

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "fault_kind": self.fault_kind,
            "fault_rate": self.fault_rate,
            "degradation": self.degradation,
            "lifetime_applications": self.lifetime_applications,
            "windows_survived": self.windows_survived,
            "tuning_success_rate": self.tuning_success_rate,
            "final_accuracy": self.final_accuracy,
            "failed": self.failed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SurvivabilityRecord":
        return cls(
            point=str(d["point"]),
            fault_kind=str(d["fault_kind"]),
            fault_rate=float(d["fault_rate"]),
            degradation=bool(d["degradation"]),
            lifetime_applications=int(d["lifetime_applications"]),
            windows_survived=int(d["windows_survived"]),
            tuning_success_rate=float(d["tuning_success_rate"]),
            final_accuracy=float(d["final_accuracy"]),
            failed=bool(d["failed"]),
        )

    @classmethod
    def failed_point(cls, point) -> "SurvivabilityRecord":
        """The ``failed`` marker record for a point that never produced
        a result (quarantined poison work in a service campaign).

        All-zero metrics with ``failed=True``: deterministic, so a
        partially-failed report is still byte-stable in grid order.
        """
        return cls(
            point=point.name,
            fault_kind=point.fault_kind,
            fault_rate=point.fault_rate,
            degradation=point.degradation_enabled,
            lifetime_applications=0,
            windows_survived=0,
            tuning_success_rate=0.0,
            final_accuracy=0.0,
            failed=True,
        )


@dataclass
class SurvivabilityReport:
    """Campaign-wide aggregation keyed by fault kind and severity."""

    workload: str
    scenario_key: str
    records: List[SurvivabilityRecord] = field(default_factory=list)
    #: Per-point perf-counter deltas (``repro.core.profiling.PerfDelta``
    #: dicts) captured around each simulation.  Only populated by serial
    #: campaign runs — counters are process-local and do not cross the
    #: executor's worker pool.  Excluded from :meth:`to_dict` by default
    #: so serialized reports stay bit-identical across serial/parallel
    #: execution modes.
    perf: Dict[str, dict] = field(default_factory=dict)
    #: Structured failure details for points that terminally failed
    #: (campaign-service quarantine): point name -> {error, attempts,
    #: worker}.  Empty on fully-successful runs, and serialized only
    #: when non-empty, so healthy reports stay bit-identical to builds
    #: that predate failure containment.
    failures: Dict[str, dict] = field(default_factory=dict)

    def add(self, record: SurvivabilityRecord) -> None:
        self.records.append(record)

    # -- lookups ----------------------------------------------------------
    def baseline(self) -> Optional[SurvivabilityRecord]:
        """The fault-free record (kind ``"none"``), if the grid had one."""
        for r in self.records:
            if r.fault_kind == "none":
                return r
        return None

    def fault_kinds(self) -> List[str]:
        """Distinct injected fault kinds, in first-seen order."""
        seen: Dict[str, None] = {}
        for r in self.records:
            if r.fault_kind != "none":
                seen.setdefault(r.fault_kind, None)
        return list(seen)

    def _select(
        self, kind: str, degradation: Optional[bool]
    ) -> List[SurvivabilityRecord]:
        return sorted(
            (
                r
                for r in self.records
                if r.fault_kind == kind
                and (degradation is None or r.degradation == degradation)
            ),
            key=lambda r: r.fault_rate,
        )

    def accuracy_curve(
        self, kind: str, degradation: Optional[bool] = None
    ) -> List[Tuple[float, float]]:
        """``(fault_rate, final_accuracy)`` points, sorted by rate."""
        return [(r.fault_rate, r.final_accuracy) for r in self._select(kind, degradation)]

    def lifetime_curve(
        self, kind: str, degradation: Optional[bool] = None
    ) -> List[Tuple[float, int]]:
        """``(fault_rate, lifetime_applications)`` points, sorted by rate."""
        return [
            (r.fault_rate, r.lifetime_applications)
            for r in self._select(kind, degradation)
        ]

    def lifetime_degradation(
        self, kind: str, degradation: Optional[bool] = None
    ) -> List[Tuple[float, float]]:
        """``(fault_rate, lifetime / fault-free lifetime)`` per point.

        Ratios are ``inf`` when no fault-free baseline exists or it has
        zero lifetime.
        """
        base = self.baseline()
        denom = base.lifetime_applications if base is not None else 0
        return [
            (
                r.fault_rate,
                r.lifetime_applications / denom if denom else float("inf"),
            )
            for r in self._select(kind, degradation)
        ]

    # -- serialization -----------------------------------------------------
    def to_dict(self, include_perf: bool = False) -> dict:
        """JSON-ready dict; ``include_perf`` adds the per-point counters.

        Perf is opt-in because it is populated only in serial mode and
        carries wall-clock noise — the default output is identical
        regardless of execution mode or machine speed.
        """
        out = {
            "workload": self.workload,
            "scenario_key": self.scenario_key,
            "records": [r.to_dict() for r in self.records],
        }
        if include_perf:
            out["perf"] = {name: dict(delta) for name, delta in self.perf.items()}
        if self.failures:
            out["failures"] = {name: dict(f) for name, f in self.failures.items()}
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "SurvivabilityReport":
        return cls(
            workload=str(d["workload"]),
            scenario_key=str(d["scenario_key"]),
            records=[SurvivabilityRecord.from_dict(r) for r in d.get("records", [])],
            perf={str(k): dict(v) for k, v in d.get("perf", {}).items()},
            failures={str(k): dict(v) for k, v in d.get("failures", {}).items()},
        )

    # -- rendering ---------------------------------------------------------
    def render_text(self) -> str:
        """Plain-text table of all grid points plus per-kind summaries."""
        header = (
            f"Survivability — {self.workload} / {self.scenario_key.upper()}"
        )
        lines = [header, "=" * len(header), ""]
        cols = ["point", "kind", "rate", "degr", "lifetime", "wins", "tune ok", "acc"]
        rows = [
            [
                r.point,
                r.fault_kind,
                f"{r.fault_rate:g}",
                "on" if r.degradation else "off",
                str(r.lifetime_applications),
                str(r.windows_survived),
                f"{r.tuning_success_rate:.0%}",
                f"{r.final_accuracy:.3f}",
            ]
            for r in self.records
        ]
        widths = [
            max(len(cols[i]), *(len(row[i]) for row in rows)) if rows else len(cols[i])
            for i in range(len(cols))
        ]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        lines.append(fmt.format(*cols))
        lines.append(fmt.format(*("-" * w for w in widths)))
        for row in rows:
            lines.append(fmt.format(*row))
        base = self.baseline()
        if base is not None:
            lines.append("")
            lines.append(
                f"fault-free baseline: lifetime={base.lifetime_applications} "
                f"applications, accuracy={base.final_accuracy:.3f}"
            )
            for kind in self.fault_kinds():
                for flag, label in ((False, "degradation off"), (True, "degradation on")):
                    curve = self.lifetime_degradation(kind, degradation=flag)
                    if curve:
                        worst = min(ratio for _rate, ratio in curve)
                        lines.append(
                            f"  {kind} ({label}): worst lifetime ratio "
                            f"{worst:.2f}x over {len(curve)} rate(s)"
                        )
        if self.failures:
            lines.append("")
            lines.append(f"failed points ({len(self.failures)}):")
            for name, info in self.failures.items():
                attempts = info.get("attempts", "?")
                error = str(info.get("error", "unknown error"))
                lines.append(f"  {name}: {error} (after {attempts} attempt(s))")
        if self.perf:
            lines.append("")
            lines.append("perf (serial run):")
            for name, delta in self.perf.items():
                counters = delta.get("counters", {})
                elapsed = float(delta.get("elapsed_s", 0.0))
                avoided = int(
                    counters.get("kernels.cache_hits", 0)
                    + counters.get("crossbar.conductance_cache_hits", 0)
                )
                vmm = counters.get("crossbar.vmm_calls", 0)
                reads = counters.get("network.hardware_reads", 0)
                throughput = (
                    f"{vmm / elapsed:,.0f} vmm/s" if elapsed > 0 and vmm else "n/a"
                )
                lines.append(
                    f"  {name}: factorizations avoided={avoided}, "
                    f"vmm calls={int(vmm)}, hardware reads={int(reads)}, "
                    f"throughput={throughput}, elapsed={elapsed:.2f}s"
                )
        return "\n".join(lines)
