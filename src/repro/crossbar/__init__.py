"""Memristor crossbar array simulator.

A :class:`Crossbar` is an array of programmable cells sharing one
:class:`~repro.device.config.DeviceConfig`.  State (fresh bounds, pulse
counters, stress time, programmed resistance) is stored in numpy arrays
so programming and aging of thousands of devices are vectorized; the
semantics per cell are identical to :class:`repro.device.Memristor`.

Components:

* :class:`Crossbar` — the array itself: programming (with per-pulse
  aging), level-step tuning pulses, analog VMM
  ``V_O = V_I · G · R`` (Fig. 1), read/write noise.
* :class:`BlockTracer` — the paper's 1-of-9 tracing: the centre device
  of every 3×3 block is monitored, and its aged window stands in for
  its block during aging-aware mapping.
* :class:`InputDriver` / :class:`OutputConverter` — DAC/TIA/ADC
  peripheral models for the analog interface.
* :class:`TiledMatrix` — partition a weight matrix larger than one
  physical array across multiple crossbar tiles.
"""

from repro.crossbar.crossbar import Crossbar
from repro.crossbar.energy import EnergyParams, programming_energy, vmm_read_energy
from repro.crossbar.parasitics import (
    ParasiticModel,
    ir_drop_factors,
    solve_crossbar_nodal,
    vmm_with_ir_drop,
)
from repro.crossbar.peripheral import InputDriver, OutputConverter
from repro.crossbar.tiling import TiledMatrix
from repro.crossbar.tracer import BlockTracer

__all__ = [
    "BlockTracer",
    "Crossbar",
    "EnergyParams",
    "InputDriver",
    "OutputConverter",
    "ParasiticModel",
    "TiledMatrix",
    "ir_drop_factors",
    "programming_energy",
    "solve_crossbar_nodal",
    "vmm_read_energy",
    "vmm_with_ir_drop",
]
