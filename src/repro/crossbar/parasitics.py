"""Interconnect parasitics: IR drop along word- and bit-lines.

The ideal crossbar model assumes every cell sees the full input voltage
and every column current reaches the TIA unattenuated.  Real arrays have
finite wire resistance per cell pitch, so cells far from the drivers see
degraded voltages — the classic *IR-drop* nonideality that bounds
practical array sizes.

Two models are provided:

* :func:`solve_crossbar_nodal` — exact DC solution of the full resistive
  network (2·R·C unknown node voltages) via sparse linear solve.  The
  reference, O((RC)^1.5)-ish; use for arrays up to ~64x64.
* :func:`ir_drop_factors` — the standard first-order approximation: the
  voltage reaching cell (i, j) is attenuated by the accumulated wire
  resistance relative to the cell's path resistance.  O(RC), usable
  in-loop.

The :class:`ParasiticModel` wraps a wire resistance per segment and
offers a drop-in replacement for the ideal VMM, so experiments can
quantify how much accuracy IR drop costs at a given array size (see
``benchmarks/test_ext_ir_drop.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.exceptions import ConfigurationError, ShapeError


@dataclass(frozen=True)
class ParasiticModel:
    """Wire resistance per cell-to-cell segment (ohms).

    ``r_wire = 0`` reduces both models to the ideal crossbar.  Typical
    values are 1–20 Ω per segment for nanoscale metal pitches.
    """

    r_wire: float = 2.0

    def __post_init__(self) -> None:
        if self.r_wire < 0:
            raise ConfigurationError(f"r_wire must be >= 0, got {self.r_wire}")


def _node_index(i: int, j: int, cols: int, plane: int, rows: int) -> int:
    """Flat index of node (i, j) on plane 0 (wordlines) or 1 (bitlines)."""
    return plane * rows * cols + i * cols + j


def _assemble_nodal_system(
    g: np.ndarray, v_in: np.ndarray, g_wire: float
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Vectorized assembly of the nodal system ``A x = rhs``.

    All stamp coordinates are built as whole index grids and fed to one
    COO constructor (duplicate entries sum on conversion), replacing the
    O(rows·cols) Python loop — assembly used to dominate the solve for
    mid-size arrays.
    """
    rows, cols = g.shape
    n = 2 * rows * cols
    w_idx = np.arange(rows)[:, None] * cols + np.arange(cols)[None, :]
    b_idx = rows * cols + w_idx

    # Conductance stamps between node pairs (a, b): four COO entries
    # each — (a,a,+v), (b,b,+v), (a,b,-v), (b,a,-v).
    pair_a = [w_idx.ravel()]                 # memristor bridges the planes
    pair_b = [b_idx.ravel()]
    pair_v = [g.ravel()]
    if cols > 1:                             # wordline chain towards j = 0
        pair_a.append(w_idx[:, 1:].ravel())
        pair_b.append(w_idx[:, :-1].ravel())
        pair_v.append(np.full((cols - 1) * rows, g_wire))
    if rows > 1:                             # bitline chain towards i = rows-1
        pair_a.append(b_idx[:-1, :].ravel())
        pair_b.append(b_idx[1:, :].ravel())
        pair_v.append(np.full((rows - 1) * cols, g_wire))
    a = np.concatenate(pair_a)
    b = np.concatenate(pair_b)
    v = np.concatenate(pair_v)

    # Source stamps: wordline drivers at j = 0, TIA virtual grounds at
    # i = rows-1 — diagonal-only entries plus the RHS injection.
    src = np.concatenate([w_idx[:, 0], b_idx[-1, :]])
    rhs = np.zeros(n)
    rhs[w_idx[:, 0]] = g_wire * v_in

    coo_rows = np.concatenate([a, b, a, b, src])
    coo_cols = np.concatenate([a, b, b, a, src])
    coo_vals = np.concatenate([v, v, -v, -v, np.full(src.size, g_wire)])
    matrix = sparse.coo_matrix((coo_vals, (coo_rows, coo_cols)), shape=(n, n)).tocsr()
    return matrix, rhs


def _assemble_nodal_system_loop(
    g: np.ndarray, v_in: np.ndarray, g_wire: float
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Reference per-cell loop assembly (the readable specification).

    Kept for the regression test that pins the vectorized assembly to
    this one stamp by stamp; not used on the solve path.
    """
    rows, cols = g.shape
    n = 2 * rows * cols
    builder = sparse.lil_matrix((n, n))
    rhs = np.zeros(n)

    def add_conductance(a: int, b: int, value: float) -> None:
        builder[a, a] += value
        builder[b, b] += value
        builder[a, b] -= value
        builder[b, a] -= value

    def add_to_source(a: int, value: float, v_src: float) -> None:
        builder[a, a] += value
        rhs[a] += value * v_src

    for i in range(rows):
        for j in range(cols):
            w = _node_index(i, j, cols, 0, rows)
            b = _node_index(i, j, cols, 1, rows)
            # The memristor bridges the planes.
            add_conductance(w, b, g[i, j])
            # Wordline segment towards the driver (j = 0 side).
            if j == 0:
                add_to_source(w, g_wire, v_in[i])
            else:
                add_conductance(w, _node_index(i, j - 1, cols, 0, rows), g_wire)
            # Bitline segment towards the TIA (i = rows-1 side).
            if i == rows - 1:
                add_to_source(b, g_wire, 0.0)  # virtual ground
            else:
                add_conductance(b, _node_index(i + 1, j, cols, 1, rows), g_wire)

    return sparse.csr_matrix(builder), rhs


def solve_crossbar_nodal(
    conductances: np.ndarray,
    v_in: np.ndarray,
    model: ParasiticModel,
) -> np.ndarray:
    """Exact column currents of a crossbar with wire parasitics.

    Nodal analysis: each cell (i, j) connects wordline node W(i,j) to
    bitline node B(i,j) through its conductance; wordline nodes chain
    horizontally (input driven at j = 0), bitline nodes chain vertically
    (TIA virtual ground at i = rows-1).  Returns the per-column currents
    flowing into the TIAs for a single input vector ``v_in``.
    """
    g = np.asarray(conductances, dtype=np.float64)
    if g.ndim != 2:
        raise ShapeError(f"conductances must be 2-D, got shape {g.shape}")
    rows, cols = g.shape
    v_in = np.asarray(v_in, dtype=np.float64)
    if v_in.shape != (rows,):
        raise ShapeError(f"v_in must have shape ({rows},), got {v_in.shape}")
    if model.r_wire == 0.0:
        return v_in @ g

    g_wire = 1.0 / model.r_wire
    matrix, rhs = _assemble_nodal_system(g, v_in, g_wire)
    solution = spsolve(matrix, rhs)
    bottom = solution[rows * cols + (rows - 1) * cols + np.arange(cols)]
    # Current into each TIA = (V_bottom_node - 0) * g_wire.
    return bottom * g_wire


def ir_drop_factors(
    conductances: np.ndarray,
    model: ParasiticModel,
) -> np.ndarray:
    """First-order per-cell attenuation factors.

    Cell (i, j)'s signal path crosses ``j`` wordline segments and
    ``rows-1-i`` bitline segments; with the cell's own resistance
    ``1/g`` dominating, the delivered fraction is approximately::

        f = (1/g) / (1/g + r_wire * (j + rows-1-i + 2))

    Exact at ``r_wire = 0``; pessimistic for sparse activity (it ignores
    current sharing), optimistic for dense activity — the usual
    first-order trade.  Apply as ``(v_in @ (g * f))``.
    """
    g = np.asarray(conductances, dtype=np.float64)
    if g.ndim != 2:
        raise ShapeError(f"conductances must be 2-D, got shape {g.shape}")
    rows, cols = g.shape
    if model.r_wire == 0.0:
        return np.ones_like(g)
    j_idx = np.arange(cols)[None, :]
    i_idx = np.arange(rows)[:, None]
    segments = j_idx + (rows - 1 - i_idx) + 2
    r_cell = 1.0 / np.maximum(g, 1e-12)
    return r_cell / (r_cell + model.r_wire * segments)


def vmm_with_ir_drop(
    conductances: np.ndarray,
    v_in: np.ndarray,
    model: ParasiticModel,
    exact: bool = False,
) -> np.ndarray:
    """VMM including IR drop (batched for the approximate model).

    ``exact=True`` runs the nodal solver per input vector — accurate but
    slow; the default applies :func:`ir_drop_factors` once.
    """
    g = np.asarray(conductances, dtype=np.float64)
    v = np.atleast_2d(np.asarray(v_in, dtype=np.float64))
    if v.shape[-1] != g.shape[0]:
        raise ShapeError(f"input width {v.shape[-1]} != rows {g.shape[0]}")
    if exact:
        out = np.stack([solve_crossbar_nodal(g, row, model) for row in v])
    else:
        out = v @ (g * ir_drop_factors(g, model))
    return out[0] if np.asarray(v_in).ndim == 1 else out
