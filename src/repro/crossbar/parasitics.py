"""Interconnect parasitics: IR drop along word- and bit-lines.

The ideal crossbar model assumes every cell sees the full input voltage
and every column current reaches the TIA unattenuated.  Real arrays have
finite wire resistance per cell pitch, so cells far from the drivers see
degraded voltages — the classic *IR-drop* nonideality that bounds
practical array sizes.

Two models are provided:

* :func:`solve_crossbar_nodal` — exact DC solution of the full resistive
  network (2·R·C unknown node voltages) via sparse linear solve.  The
  reference; use for arrays up to ~256x256.
* :func:`ir_drop_factors` — the standard first-order approximation: the
  voltage reaching cell (i, j) is attenuated by the accumulated wire
  resistance relative to the cell's path resistance.  O(RC), usable
  in-loop.

The exact path is built on the kernel layer
(:class:`repro.core.kernels.NodalSolver`): the nodal matrix depends
only on the conductance state, so it is assembled and factorized once
and a whole batch of input vectors is answered by one dense transfer
product — batched, serial, and cached evaluations are bit-identical by
construction (see DESIGN.md §9).

The :class:`ParasiticModel` wraps a wire resistance per segment and
offers a drop-in replacement for the ideal VMM, so experiments can
quantify how much accuracy IR drop costs at a given array size (see
``benchmarks/test_ext_ir_drop.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.backend import gemm, host_sparse as sparse, hxp
from repro.core.kernels import NodalSolver, assemble_nodal_matrix
from repro.exceptions import ConfigurationError, ShapeError


@dataclass(frozen=True)
class ParasiticModel:
    """Wire resistance per cell-to-cell segment (ohms).

    ``r_wire = 0`` reduces both models to the ideal crossbar.  Typical
    values are 1–20 Ω per segment for nanoscale metal pitches.
    """

    r_wire: float = 2.0

    def __post_init__(self) -> None:
        if self.r_wire < 0:
            raise ConfigurationError(f"r_wire must be >= 0, got {self.r_wire}")


def _node_index(i: int, j: int, cols: int, plane: int, rows: int) -> int:
    """Flat index of node (i, j) on plane 0 (wordlines) or 1 (bitlines)."""
    return plane * rows * cols + i * cols + j


def _assemble_nodal_system(
    g: hxp.ndarray, v_in: hxp.ndarray, g_wire: float
) -> tuple[sparse.csc_matrix, hxp.ndarray]:
    """Assemble the nodal system ``A x = rhs`` for one input vector.

    The matrix comes from the vectorized kernel-layer assembly
    (:func:`repro.core.kernels.assemble_nodal_matrix` — the matrix
    depends only on ``g`` and ``g_wire``); only the RHS depends on
    ``v_in``.  Kept as the single-vector reference that the regression
    tests pin against the per-cell loop assembly below.
    """
    rows, cols = g.shape
    matrix = assemble_nodal_matrix(g, g_wire)
    rhs = hxp.zeros(2 * rows * cols, dtype=hxp.float64)
    rhs[hxp.arange(rows) * cols] = g_wire * v_in
    return matrix, rhs


def _assemble_nodal_system_loop(
    g: hxp.ndarray, v_in: hxp.ndarray, g_wire: float
) -> tuple[sparse.csr_matrix, hxp.ndarray]:
    """Reference per-cell loop assembly (the readable specification).

    Kept for the regression test that pins the vectorized assembly to
    this one stamp by stamp; not used on the solve path.
    """
    rows, cols = g.shape
    n = 2 * rows * cols
    builder = sparse.lil_matrix((n, n))
    rhs = hxp.zeros(n, dtype=hxp.float64)

    def add_conductance(a: int, b: int, value: float) -> None:
        builder[a, a] += value
        builder[b, b] += value
        builder[a, b] -= value
        builder[b, a] -= value

    def add_to_source(a: int, value: float, v_src: float) -> None:
        builder[a, a] += value
        rhs[a] += value * v_src

    for i in range(rows):
        for j in range(cols):
            w = _node_index(i, j, cols, 0, rows)
            b = _node_index(i, j, cols, 1, rows)
            # The memristor bridges the planes.
            add_conductance(w, b, g[i, j])
            # Wordline segment towards the driver (j = 0 side).
            if j == 0:
                add_to_source(w, g_wire, v_in[i])
            else:
                add_conductance(w, _node_index(i, j - 1, cols, 0, rows), g_wire)
            # Bitline segment towards the TIA (i = rows-1 side).
            if i == rows - 1:
                add_to_source(b, g_wire, 0.0)  # virtual ground
            else:
                add_conductance(b, _node_index(i + 1, j, cols, 1, rows), g_wire)

    return sparse.csr_matrix(builder), rhs


def solve_crossbar_nodal(
    conductances: hxp.ndarray,
    v_in: hxp.ndarray,
    model: ParasiticModel,
) -> hxp.ndarray:
    """Exact column currents of a crossbar with wire parasitics.

    Nodal analysis: each cell (i, j) connects wordline node W(i,j) to
    bitline node B(i,j) through its conductance; wordline nodes chain
    horizontally (input driven at j = 0), bitline nodes chain vertically
    (TIA virtual ground at i = rows-1).  Returns the per-column currents
    flowing into the TIAs for a single input vector ``v_in``.
    """
    g = hxp.asarray(conductances, dtype=hxp.float64)
    if g.ndim != 2:
        raise ShapeError(f"conductances must be 2-D, got shape {g.shape}")
    rows, _cols = g.shape
    v_in = hxp.asarray(v_in, dtype=hxp.float64)
    if v_in.shape != (rows,):
        raise ShapeError(f"v_in must have shape ({rows},), got {v_in.shape}")
    return NodalSolver(g, model.r_wire).solve(v_in)


def ir_drop_factors(
    conductances: hxp.ndarray,
    model: ParasiticModel,
) -> hxp.ndarray:
    """First-order per-cell attenuation factors.

    Cell (i, j)'s signal path crosses ``j`` wordline segments and
    ``rows-1-i`` bitline segments; with the cell's own resistance
    ``1/g`` dominating, the delivered fraction is approximately::

        f = (1/g) / (1/g + r_wire * (j + rows-1-i + 2))

    Exact at ``r_wire = 0``; pessimistic for sparse activity (it ignores
    current sharing), optimistic for dense activity — the usual
    first-order trade.  Apply as ``(v_in @ (g * f))``.
    """
    g = hxp.asarray(conductances, dtype=hxp.float64)
    if g.ndim != 2:
        raise ShapeError(f"conductances must be 2-D, got shape {g.shape}")
    rows, cols = g.shape
    if model.r_wire == 0.0:
        return hxp.ones_like(g)
    j_idx = hxp.arange(cols)[None, :]
    i_idx = hxp.arange(rows)[:, None]
    segments = j_idx + (rows - 1 - i_idx) + 2
    r_cell = 1.0 / hxp.maximum(g, 1e-12)
    return r_cell / (r_cell + model.r_wire * segments)


def vmm_with_ir_drop(
    conductances: hxp.ndarray,
    v_in: hxp.ndarray,
    model: ParasiticModel,
    exact: bool = False,
    solver: Optional[NodalSolver] = None,
) -> hxp.ndarray:
    """VMM including IR drop (batched on both models).

    ``exact=True`` runs the full nodal solution: the system is
    assembled and factorized **once** and the whole batch is answered
    as one multi-RHS transfer product — no per-vector Python loop.
    The default applies :func:`ir_drop_factors` once.

    ``solver`` may carry a prebuilt :class:`NodalSolver` for the same
    conductance state (e.g. from a crossbar's factorization cache) so
    repeated exact reads skip the rebuild; it must have been built
    from ``conductances`` and ``model.r_wire``.
    """
    g = hxp.asarray(conductances, dtype=hxp.float64)
    v_arr = hxp.asarray(v_in, dtype=hxp.float64)
    v = hxp.atleast_2d(v_arr)
    if v.shape[-1] != g.shape[0]:
        raise ShapeError(f"input width {v.shape[-1]} != rows {g.shape[0]}")
    if exact:
        if solver is None:
            solver = NodalSolver(g, model.r_wire)
        out = solver.solve(v)
    else:
        out = gemm(v, g * ir_drop_factors(g, model))
    return out[0] if v_arr.ndim == 1 else out
