"""Energy accounting for crossbar operation.

The paper's introduction motivates memristor crossbars with power
efficiency, and its Section IV-A argument is literally about currents —
so the library makes the energy story measurable:

* **Read (inference) energy** of one VMM: each device dissipates
  ``V_i^2 * g_ij * t_read``; summed over the array per input vector.
* **Programming energy** of a pulse at resistance ``R``:
  ``V_prog^2 / R * pulse_width`` — the same quantity that drives the
  current-dependent aging stress, which is why skewed mapping saves
  energy *and* lifetime together.

Estimators work on plain arrays so they can score hypothetical mappings
without touching simulated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


@dataclass(frozen=True)
class EnergyParams:
    """Electrical constants of the energy model."""

    read_voltage: float = 0.2
    program_voltage: float = 2.0
    read_time: float = 1e-7
    pulse_width: float = 1e-6

    def __post_init__(self) -> None:
        if self.read_voltage <= 0 or self.program_voltage <= 0:
            raise ConfigurationError("voltages must be > 0")
        if self.read_time <= 0 or self.pulse_width <= 0:
            raise ConfigurationError("times must be > 0")


def vmm_read_energy(
    conductances: np.ndarray,
    v_in: np.ndarray,
    params: EnergyParams | None = None,
) -> float:
    """Energy (J) of one analog VMM with input vector(s) ``v_in``.

    ``v_in`` values are interpreted as fractions of the read voltage;
    batched inputs return the total energy of the batch.
    """
    params = params if params is not None else EnergyParams()
    g = np.asarray(conductances, dtype=np.float64)
    v = np.atleast_2d(np.asarray(v_in, dtype=np.float64)) * params.read_voltage
    if v.shape[-1] != g.shape[0]:
        raise ShapeError(f"input width {v.shape[-1]} != array rows {g.shape[0]}")
    row_power = (v**2) @ g  # (batch, cols): per-column dissipation
    return float(row_power.sum() * params.read_time)


def programming_energy(
    target_resistances: np.ndarray,
    params: EnergyParams | None = None,
) -> float:
    """Energy (J) of programming every device once at its target."""
    params = params if params is not None else EnergyParams()
    r = np.asarray(target_resistances, dtype=np.float64)
    if np.any(r <= 0):
        raise ConfigurationError("target resistances must be > 0")
    return float(np.sum(params.program_voltage**2 / r) * params.pulse_width)


def network_programming_energy(network, params: EnergyParams | None = None) -> float:
    """One full reprogram's energy for a mapped network (J).

    Uses each layer's current mapping targets; layers must have been
    range-selected (mapped) already.
    """
    total = 0.0
    for layer in network.layers:
        if layer.mapping is None:
            raise ConfigurationError(f"layer {layer.layer_index} has no mapping yet")
        targets = np.asarray(
            layer.mapping.weight_to_resistance(layer.software_matrix())
        )
        total += programming_energy(targets, params)
    return total
