"""Array-vectorized crossbar of memristors."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.backend import DeviceArrayCache, active as active_backend, hxp
from repro.core.fastpath import vectorized_enabled
from repro.core.kernels import FactorizationCache, NodalSolver, cache_enabled
from repro.core.profiling import PROFILER
from repro.device.config import DeviceConfig
from repro.exceptions import ConfigurationError, ShapeError
from repro.rng import SeedLike, ensure_rng


class Crossbar:
    """A ``rows x cols`` array of memristors with shared device config.

    The electrical model follows the paper's Fig. 1: input voltages are
    applied on the rows, each column ``j`` collects the current
    ``I_j = sum_i V_i * g_ij`` and a transimpedance stage converts it to
    ``V_out_j = I_j * r_tia``.

    Aging bookkeeping is per device: every programming pulse adds
    ``pulse_width`` seconds of stress to the touched devices, and the
    aged window of each device follows Eq. (6)–(7) of the paper.  A
    device whose window has collapsed is *dead*: it stays at its pinned
    resistance and ignores further programming (the array keeps
    operating with whatever value is stuck there — matching how a real
    array fails gradually rather than atomically).

    **State versioning (DESIGN.md §9).**  Every mutation of the
    programmed state — ``program``, ``step_levels``,
    ``step_conductance``, ``apply_drift``, fault injection, or any
    direct assignment to :attr:`resistance` — bumps the monotonically
    increasing :attr:`state_version`.  The version keys two caches that
    make simulated *reads* cheap relative to simulated *programming*:
    the noise-free conductance matrix (:meth:`conductances`) and the
    exact IR-drop factorization (:meth:`nodal_solver`).  Reads never
    bump the version; fault-free reads also never draw RNG, so caching
    cannot perturb any random stream.

    A second counter tracks *stress* mutations only (pulse aging, fault
    injection) and keys the aged-bounds/dead-mask caches of the
    vectorized pulse path (:meth:`program_pulses`, DESIGN.md §11):
    resistance moves between aging events leave the aged window — a
    pure function of the stress history — untouched, so its arrays are
    reused bit for bit.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        config: Optional[DeviceConfig] = None,
        r_tia: float = 1e3,
        seed: SeedLike = None,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ConfigurationError(f"crossbar shape must be positive, got {rows}x{cols}")
        if r_tia <= 0:
            raise ConfigurationError(f"r_tia must be > 0, got {r_tia}")
        self.rows = int(rows)
        self.cols = int(cols)
        self.config = config if config is not None else DeviceConfig()
        self.r_tia = float(r_tia)
        self.grid = self.config.make_level_grid()
        self.aging = self.config.make_aging_model()
        self._rng = ensure_rng(seed)

        #: Monotonic counter of programmed-state mutations; keys the
        #: conductance and factorization caches (DESIGN.md §9).
        self._state_version = 0
        self._conductance_cache: Optional[Tuple[int, hxp.ndarray]] = None
        self._solver_cache = FactorizationCache()
        #: Device-resident conductance copy for accelerator backends,
        #: keyed by ``state_version`` (noise-free reads only; a noisy
        #: read draws fresh values per call and is never cached).
        self._device_g_cache = DeviceArrayCache()
        #: Monotonic counter of *stress* mutations (pulse aging, fault
        #: injection); keys the aged-bounds/dead-mask caches of the
        #: vectorized pulse path (DESIGN.md §11).  Resistance writes do
        #: not age devices and leave these caches valid.
        self._stress_version = 0
        self._bounds_cache: Optional[Tuple[int, hxp.ndarray, hxp.ndarray]] = None
        self._dead_cache: Optional[Tuple[int, hxp.ndarray]] = None

        shape = (self.rows, self.cols)
        if self.config.variability is not None:
            lo, hi = self.config.variability.sample_bounds(
                self.config.r_min, self.config.r_max, shape, self._rng
            )
            self.r_fresh_min, self.r_fresh_max = lo, hi
        else:
            self.r_fresh_min = hxp.full(shape, self.config.r_min, dtype=hxp.float64)
            self.r_fresh_max = hxp.full(shape, self.config.r_max, dtype=hxp.float64)
        #: Per-device programming pulse counters.
        self.pulse_counts = hxp.zeros(shape, dtype=hxp.int64)
        #: Per-device accumulated stress time (s).
        self.stress_time = hxp.zeros(shape, dtype=hxp.float64)
        #: Programmed resistances; fresh devices wake up in their HRS.
        self.resistance = self.r_fresh_max.copy()
        #: Fault-injection controls (set by
        #: :class:`repro.robustness.FaultSchedule`): additional relative
        #: read-noise sigma on top of ``config.read_noise``, and the
        #: probability that a programming/tuning pulse silently fails to
        #: fire (driver fault: no state change, no stress).
        self.read_noise_extra = 0.0
        self.pulse_miss_rate = 0.0

    # -- state versioning --------------------------------------------------
    @property
    def resistance(self) -> hxp.ndarray:
        """Programmed resistance matrix.

        Assigning to this attribute (as every programming routine and
        fault hook does) bumps :attr:`state_version`.  Callers that
        mutate the array in place must call :meth:`mark_state_dirty`
        themselves — in-repo writers always assign.
        """
        return self._resistance

    @resistance.setter
    def resistance(self, value: hxp.ndarray) -> None:
        self._resistance = value
        # A resistance write invalidates the read-path caches but not
        # the aged-bounds caches: programming moves values, not stress.
        self._invalidate_read_caches()

    @property
    def state_version(self) -> int:
        """Monotonic count of programmed-state mutations."""
        return self._state_version

    def _invalidate_read_caches(self) -> None:
        self._state_version += 1
        self._conductance_cache = None
        self._solver_cache.invalidate()

    def _invalidate_stress_caches(self) -> None:
        self._stress_version += 1
        self._bounds_cache = None
        self._dead_cache = None

    def mark_state_dirty(self) -> None:
        """Invalidate every cached view after an out-of-band mutation.

        Bumps :attr:`state_version`, drops the cached conductance
        matrix and nodal factorizations, and also drops the aged-bounds
        and dead-mask caches (fault injection mutates ``stress_time``
        in place and relies on this hook).  Call it after mutating
        ``stress_time`` or ``resistance`` in place; in-repo writers
        assign :attr:`resistance`, whose setter invalidates only the
        read-path caches.
        """
        self._invalidate_read_caches()
        self._invalidate_stress_caches()

    # -- aging state ------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    def aged_bounds(self) -> Tuple[hxp.ndarray, hxp.ndarray]:
        """Per-device ``(R_aged,min, R_aged,max)`` arrays.

        Cached per stress version on the vectorized path (DESIGN.md
        §11): the bounds are a deterministic function of the stress
        history, so between aging events every read — dead-mask checks,
        quantization windows, tracer estimates, window bookkeeping —
        reuses the same (read-only) arrays bit for bit.
        """
        cached = self._bounds_cache
        if (
            cached is not None
            and cached[0] == self._stress_version
            and cache_enabled()
            and vectorized_enabled()
        ):
            PROFILER.increment("crossbar.bounds_cache_hits")
            return cached[1], cached[2]
        lo, hi = self.aging.aged_bounds(
            self.r_fresh_min, self.r_fresh_max, self.config.temperature, self.stress_time
        )
        if cache_enabled() and vectorized_enabled():
            lo.setflags(write=False)
            hi.setflags(write=False)
            self._bounds_cache = (self._stress_version, lo, hi)
        return lo, hi

    def dead_mask(self) -> hxp.ndarray:
        """Devices with fewer than two usable levels left (end-of-life).

        Cached per stress version alongside :meth:`aged_bounds`.
        """
        cached = self._dead_cache
        if (
            cached is not None
            and cached[0] == self._stress_version
            and cache_enabled()
            and vectorized_enabled()
        ):
            return cached[1]
        mask = self.usable_level_counts() < 2
        if cache_enabled() and vectorized_enabled():
            mask.setflags(write=False)
            self._dead_cache = (self._stress_version, mask)
        return mask

    def dead_fraction(self) -> float:
        """Fraction of dead devices in the array."""
        return float(hxp.mean(self.dead_mask()))

    def usable_level_counts(self) -> hxp.ndarray:
        """Per-device number of surviving quantized levels."""
        lo, hi = self.aged_bounds()
        return self.grid.usable_count(lo, hi)

    def total_pulses(self) -> int:
        """Sum of all programming pulses ever applied to the array."""
        return int(self.pulse_counts.sum())

    # -- programming -----------------------------------------------------------
    def _apply_stress(self, mask: hxp.ndarray, at_resistance: hxp.ndarray) -> None:
        """Accrue one pulse of stress on masked devices.

        The stress contribution of a pulse scales with the programming
        current through the device (``DeviceConfig.stress_factor``):
        devices sitting at large resistance age slower — the physical
        lever of the skewed training.
        """
        self.pulse_counts[mask] += 1
        factor = self.config.stress_factor(at_resistance)
        self.stress_time[mask] += self.config.pulse_width * factor[mask]
        self._invalidate_stress_caches()

    def _apply_pulse_misses(self, select: hxp.ndarray) -> hxp.ndarray:
        """Drop selected devices whose programming pulse silently fails.

        A missed pulse is a driver/selector fault: the device neither
        moves nor accrues stress.  Draws are only made when the miss
        rate is nonzero so fault-free runs consume the exact same RNG
        stream as before the fault hooks existed.
        """
        if self.pulse_miss_rate <= 0:
            return select
        fired = self._rng.random(self.shape) >= self.pulse_miss_rate
        return select & fired

    def program(
        self,
        targets: hxp.ndarray,
        only_changed: bool = True,
    ) -> hxp.ndarray:
        """Program the whole array towards ``targets`` (resistances).

        Each *selected* device receives one programming pulse (stress),
        then lands on the nearest usable fresh-grid level inside its
        aged window, plus write noise.  With ``only_changed=True``
        (default) devices already within half a level step of their
        target are skipped — they receive no pulse and keep their value,
        modelling a program-and-verify controller that does not pulse
        devices that are already correct.

        Dead devices are never pulsed and keep their pinned value.
        Returns the achieved resistance matrix.
        """
        self._program_impl(targets, only_changed)
        return self.resistance.copy()

    def _program_impl(self, targets: hxp.ndarray, only_changed: bool) -> hxp.ndarray:
        """Shared body of :meth:`program` / :meth:`program_targets`.

        Returns the boolean *select* mask of devices that actually
        received a pulse (post miss-draw) — both public entry points
        run the identical operation sequence, so the scalar and batched
        programming paths are bit-identical by construction.
        """
        targets = hxp.asarray(targets, dtype=hxp.float64)
        if targets.shape != self.shape:
            raise ShapeError(f"targets shape {targets.shape} != crossbar {self.shape}")
        if hxp.any(targets <= 0):
            raise ConfigurationError("target resistances must be > 0")

        alive = ~self.dead_mask()
        if only_changed:
            needs = hxp.abs(targets - self.resistance) > 0.5 * self.grid.step
            select = alive & needs
        else:
            select = alive
        select = self._apply_pulse_misses(select)
        # Stress scales with the current at the programmed target: the
        # pulse drives the device towards (and holds it at) the target
        # resistance, so the target sets the dissipated power.
        self._apply_stress(select, hxp.clip(targets, self.grid.r_min * 0.1, None))

        lo, hi = self.aged_bounds()
        achieved = self.grid.quantize(targets, lo, hi)
        if self.config.write_noise > 0:
            noise = self._rng.normal(
                0.0, self.config.write_noise * self.grid.step, size=self.shape
            )
            achieved = hxp.clip(achieved + noise, lo, hi)
        self.resistance = hxp.where(select, achieved, self.resistance)
        return select

    def program_targets(self, targets: hxp.ndarray, only_changed: bool = True) -> int:
        """Batched programming: :meth:`program` without the result copy.

        Same draws, same arithmetic, same state transitions as
        :meth:`program`; skips materializing the achieved-resistance
        return value that batch callers (the mapper) discard.  Returns
        the number of devices that actually received a pulse.
        """
        return int(hxp.count_nonzero(self._program_impl(targets, only_changed)))

    def step_levels(self, directions: hxp.ndarray) -> hxp.ndarray:
        """Apply one ±1-level tuning pulse per selected device.

        ``directions`` holds -1/0/+1 per device (the sign of Eq. (5));
        nonzero entries receive one pulse and move one level step,
        clipped to their aged window.  Dead devices ignore pulses.
        Returns the new resistance matrix.
        """
        directions = hxp.asarray(directions)
        if directions.shape != self.shape:
            raise ShapeError(f"directions shape {directions.shape} != crossbar {self.shape}")
        if not hxp.all(hxp.isin(directions, (-1, 0, 1))):
            raise ConfigurationError("directions must contain only -1, 0, 1")

        select = self._apply_pulse_misses((directions != 0) & ~self.dead_mask())
        self._apply_stress(select, self.resistance)
        lo, hi = self.aged_bounds()
        stepped = self.resistance + directions * self.grid.step
        if self.config.write_noise > 0:
            stepped = stepped + self._rng.normal(
                0.0, self.config.write_noise * self.grid.step, size=self.shape
            )
        stepped = hxp.clip(stepped, lo, hi)
        self.resistance = hxp.where(select, stepped, self.resistance)
        return self.resistance.copy()

    def step_conductance(self, directions: hxp.ndarray, fraction: float = 0.5) -> hxp.ndarray:
        """Apply one constant-amplitude tuning pulse per selected device.

        Unlike :meth:`step_levels` (which jumps a full *resistance*
        level — the mapping granularity), a tuning pulse modulates the
        filament and moves the **conductance** by an approximately
        constant increment: ``fraction`` of the mean conductance spacing
        ``(g_max - g_min)/(n_levels - 1)``.  ``directions`` holds
        -1/0/+1 in the *conductance* domain (+1 grows the filament).
        This is the Eq. (5) hardware primitive: polarity from the
        gradient sign, amplitude constant.  Clipped to the aged window;
        dead devices ignore pulses.  Returns the new resistances.
        """
        directions = hxp.asarray(directions)
        if directions.shape != self.shape:
            raise ShapeError(f"directions shape {directions.shape} != crossbar {self.shape}")
        if not hxp.all(hxp.isin(directions, (-1, 0, 1))):
            raise ConfigurationError("directions must contain only -1, 0, 1")
        if fraction <= 0:
            raise ConfigurationError(f"fraction must be > 0, got {fraction}")

        self._pulse_impl(directions, directions != 0, fraction)
        return self.resistance.copy()

    def _pulse_impl(
        self, directions: hxp.ndarray, active: hxp.ndarray, fraction: float
    ) -> hxp.ndarray:
        """Shared body of :meth:`step_conductance` / :meth:`program_pulses`.

        ``active`` is the precomputed ``directions != 0`` mask (batch
        callers already hold it).  Returns the boolean *select* mask of
        devices that actually fired (post miss-draw).  RNG draw order is
        part of the contract: one miss draw (only when
        ``pulse_miss_rate > 0``), then one write-noise draw (only when
        ``write_noise > 0``), each over the full tile shape.

        Two bodies, bit-identical by contract: the vectorized one
        updates the whole array at once; the ``REPRO_SCALAR_TUNER``
        reference transcribes the paper's Eq. (5) pulse loop device by
        device (the oracle the equivalence battery diffs against).
        Both share the same RNG draws and the same device-physics
        evaluations (stress accrual, aged bounds), and the per-device
        arithmetic involves only exact elementwise IEEE ops, so the two
        bodies produce identical conductances, streams and versions.
        """
        select = self._apply_pulse_misses(active & ~self.dead_mask())
        self._apply_stress(select, self.resistance)
        g_step = fraction * (self.config.g_max - self.config.g_min) / (self.grid.n_levels - 1)
        noise = (
            self._rng.normal(0.0, self.config.write_noise * g_step, size=self.shape)
            if self.config.write_noise > 0
            else None
        )
        lo, hi = self.aged_bounds()
        if vectorized_enabled():
            g_new = 1.0 / self.resistance + directions * g_step
            if noise is not None:
                g_new = g_new + noise
            # Convert back to resistance; keep conductance positive first.
            g_new = hxp.maximum(g_new, 1.0 / hxp.maximum(hi, 1.0))
            stepped = hxp.clip(1.0 / g_new, lo, hi)
            self.resistance = hxp.where(select, stepped, self.resistance)
            return select
        # Reference implementation: one device at a time.  min/max/clip
        # and +-*/ are elementwise-exact, so each device's value equals
        # the vectorized result bit for bit; unselected devices keep
        # their resistance, exactly like the masked hxp.where above.
        res = self.resistance
        out = res.copy()
        for i in range(self.rows):
            for j in range(self.cols):
                if not select[i, j]:
                    continue
                g = 1.0 / res[i, j] + directions[i, j] * g_step
                if noise is not None:
                    g = g + noise[i, j]
                g = max(g, 1.0 / max(hi[i, j], 1.0))
                out[i, j] = min(max(1.0 / g, lo[i, j]), hi[i, j])
        self.resistance = out
        return select

    def program_pulses(
        self, mask: hxp.ndarray, polarity: hxp.ndarray, fraction: float = 0.5
    ) -> int:
        """Batched tuning-pulse path: trusted-input :meth:`step_conductance`.

        ``mask`` is the boolean pulse-selection mask and ``polarity``
        the signed direction array; the caller must guarantee
        ``mask == (polarity != 0)`` (the tuning sweep derives the mask
        from the thresholded sign matrix, so this holds by
        construction).  Skips the per-call ``isin`` validation and the
        achieved-resistance return copy of the scalar path; every draw
        and every arithmetic operation is otherwise identical, which is
        what makes the vectorized tuner bit-identical to the
        ``REPRO_SCALAR_TUNER`` reference.  Returns the number of pulses
        that actually fired (post pulse-miss, post dead-mask).
        """
        return int(hxp.count_nonzero(self._pulse_impl(polarity, mask, fraction)))

    def apply_drift(self, magnitude: float, rng: SeedLike = None) -> hxp.ndarray:
        """Conductance drift from repeated reading (paper's ref [8]).

        Unlike aging, drift is *recoverable* by reprogramming and adds
        no stress: each programmed resistance takes a lognormal
        multiplicative step of shape ``magnitude`` and is clipped back
        into the device's aged window.  The lifetime engine applies this
        after every application window, which is what forces the
        periodic remap + retune cycle.
        """
        if magnitude < 0:
            raise ConfigurationError(f"drift magnitude must be >= 0, got {magnitude}")
        if magnitude == 0:
            return self.resistance.copy()
        gen = ensure_rng(rng) if rng is not None else self._rng
        factors = gen.lognormal(0.0, magnitude, size=self.shape)
        lo, hi = self.aged_bounds()
        self.resistance = hxp.clip(self.resistance * factors, lo, hi)
        return self.resistance.copy()

    # -- read-out ---------------------------------------------------------------
    def read_resistances(self) -> hxp.ndarray:
        """Resistance read-out (with read noise if configured).

        Injected noise (``read_noise_extra``, from a fault schedule)
        adds in sigma on top of the device config's intrinsic noise.
        """
        sigma = self.config.read_noise + self.read_noise_extra
        if sigma <= 0:
            return self.resistance.copy()
        noisy = self.resistance * (
            1.0 + self._rng.normal(0.0, sigma, size=self.shape)
        )
        return hxp.maximum(noisy, 1e-3)

    def conductances(self) -> hxp.ndarray:
        """Programmed conductance matrix ``G`` (noise-free).

        Cached per :attr:`state_version`; the returned array is
        read-only so the cache cannot be corrupted through an alias.
        Deterministic (no RNG draw), so caching is invisible to every
        random stream.
        """
        cached = self._conductance_cache
        if (
            cache_enabled()
            and cached is not None
            and cached[0] == self._state_version
        ):
            PROFILER.increment("crossbar.conductance_cache_hits")
            return cached[1]
        g = 1.0 / self._resistance
        g.setflags(write=False)
        if cache_enabled():
            PROFILER.increment("crossbar.conductance_cache_misses")
            self._conductance_cache = (self._state_version, g)
        return g

    def read_conductances(self) -> hxp.ndarray:
        """Conductance matrix as seen by a read (noise included).

        Noise-free reads hit the :meth:`conductances` cache; noisy
        reads must sample fresh resistances every call (each read draws
        its own noise) and are never cached.
        """
        if self.config.read_noise + self.read_noise_extra <= 0:
            return self.conductances()
        return 1.0 / self.read_resistances()

    def nodal_solver(self, model: "ParasiticModel") -> NodalSolver:
        """Exact IR-drop solver for the current state, cached per version.

        ``model`` is a :class:`repro.crossbar.parasitics.ParasiticModel`
        (typed loosely to keep this module import-light).  Repeated
        calls between reprogramming events return the same factorized
        solver; any state mutation rebuilds on next use.
        """
        return self._solver_cache.get(
            self._state_version,
            model.r_wire,
            lambda: NodalSolver(self.conductances(), model.r_wire),
        )

    def vmm(self, v_in: hxp.ndarray) -> hxp.ndarray:
        """Analog vector-matrix multiply ``V_O = V_I · G · R_tia``.

        ``v_in`` may be a single vector ``(rows,)`` or a batch
        ``(batch, rows)``.
        """
        v_in = hxp.asarray(v_in, dtype=hxp.float64)
        if v_in.shape[-1] != self.rows:
            raise ShapeError(
                f"input width {v_in.shape[-1]} != crossbar rows {self.rows}"
            )
        PROFILER.increment("crossbar.vmm_calls")
        g = self.read_conductances()
        bk = active_backend()
        if bk.is_host:
            # The golden path: the exact pre-backend expression.
            return v_in @ g * self.r_tia
        noise_free = self.config.read_noise + self.read_noise_extra <= 0
        g_dev = (
            self._device_g_cache.get(bk, self._state_version, g)
            if noise_free
            else bk.asarray(g)
        )
        return bk.to_numpy(bk.matmul(bk.asarray(v_in), g_dev)) * self.r_tia

    def vmm_ir_drop(
        self,
        v_in: hxp.ndarray,
        model: "ParasiticModel",
        exact: bool = False,
    ) -> hxp.ndarray:
        """VMM with wire parasitics (noise-free read path).

        The exact path reuses this array's cached factorization
        (:meth:`nodal_solver`), so a batch of reads between
        reprogramming events costs one dense product.  Output includes
        the TIA gain, matching :meth:`vmm` at ``r_wire = 0``.
        """
        from repro.crossbar.parasitics import vmm_with_ir_drop

        PROFILER.increment("crossbar.vmm_calls")
        g = self.conductances()
        solver = self.nodal_solver(model) if exact else None
        return (
            vmm_with_ir_drop(g, v_in, model, exact=exact, solver=solver)
            * self.r_tia
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Crossbar({self.rows}x{self.cols}, pulses={self.total_pulses()}, "
            f"dead={self.dead_fraction():.1%})"
        )
