"""Tiling a logical weight matrix across physical crossbar arrays.

Physical crossbars are bounded (64x64–256x256 in practice); a layer
whose unrolled weight matrix exceeds the tile size is split across a
grid of tiles whose partial column currents are summed digitally.
:class:`TiledMatrix` hides the split: it exposes program / step / read /
vmm over the *logical* matrix and forwards slices to its tiles.

Every tile is a full :class:`~repro.crossbar.crossbar.Crossbar`, so
aging, tracing and the aging-aware mapping all work per tile.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.backend import hxp
from repro.crossbar.crossbar import Crossbar
from repro.device.config import DeviceConfig
from repro.exceptions import ConfigurationError, ShapeError
from repro.rng import SeedLike, ensure_rng, spawn_rng


class TiledMatrix:
    """A logical ``rows x cols`` device matrix split into crossbar tiles."""

    def __init__(
        self,
        rows: int,
        cols: int,
        tile_rows: int = 128,
        tile_cols: int = 128,
        config: Optional[DeviceConfig] = None,
        r_tia: float = 1e3,
        seed: SeedLike = None,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ConfigurationError(f"matrix shape must be positive, got {rows}x{cols}")
        if tile_rows < 1 or tile_cols < 1:
            raise ConfigurationError("tile dimensions must be positive")
        self.rows, self.cols = int(rows), int(cols)
        self.tile_rows, self.tile_cols = int(tile_rows), int(tile_cols)
        self.config = config if config is not None else DeviceConfig()
        rng = ensure_rng(seed)
        self._row_starts = list(range(0, rows, tile_rows))
        self._col_starts = list(range(0, cols, tile_cols))
        self.tiles: List[List[Crossbar]] = []
        for r0 in self._row_starts:
            row_tiles = []
            for c0 in self._col_starts:
                tr = min(tile_rows, rows - r0)
                tc = min(tile_cols, cols - c0)
                row_tiles.append(
                    Crossbar(tr, tc, self.config, r_tia=r_tia, seed=spawn_rng(rng))
                )
            self.tiles.append(row_tiles)

    # -- geometry -------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """Number of tiles along each axis."""
        return (len(self._row_starts), len(self._col_starts))

    def iter_tiles(self) -> Iterator[Tuple[slice, slice, Crossbar]]:
        """Yield ``(row_slice, col_slice, tile)`` over the logical matrix."""
        for i, r0 in enumerate(self._row_starts):
            for j, c0 in enumerate(self._col_starts):
                tile = self.tiles[i][j]
                yield slice(r0, r0 + tile.rows), slice(c0, c0 + tile.cols), tile

    # -- array-wide views -------------------------------------------------
    def resistances(self) -> hxp.ndarray:
        """Logical programmed-resistance matrix."""
        out = hxp.empty(self.shape, dtype=hxp.float64)
        for rs, cs, tile in self.iter_tiles():
            out[rs, cs] = tile.resistance
        return out

    def conductances(self) -> hxp.ndarray:
        """Logical conductance matrix (noise-free).

        Assembled from the per-tile :meth:`Crossbar.conductances`
        caches — bitwise identical to ``1.0 / self.resistances()``
        (elementwise reciprocal commutes with tiling) but free between
        reprogramming events.
        """
        out = hxp.empty(self.shape, dtype=hxp.float64)
        for rs, cs, tile in self.iter_tiles():
            out[rs, cs] = tile.conductances()
        return out

    def read_conductances(self) -> hxp.ndarray:
        """Logical conductance matrix as seen by a read (noise per tile)."""
        out = hxp.empty(self.shape, dtype=hxp.float64)
        for rs, cs, tile in self.iter_tiles():
            out[rs, cs] = tile.read_conductances()
        return out

    @property
    def state_version(self) -> int:
        """Aggregate state version: sum of the tile versions.

        Any tile mutation strictly increases the sum, so equality of
        two aggregate versions implies no tile changed in between.
        """
        return sum(tile.state_version for _rs, _cs, tile in self.iter_tiles())

    def read_resistances(self) -> hxp.ndarray:
        """Logical resistance read-out (read noise per tile)."""
        out = hxp.empty(self.shape, dtype=hxp.float64)
        for rs, cs, tile in self.iter_tiles():
            out[rs, cs] = tile.read_resistances()
        return out

    def aged_bounds(self) -> Tuple[hxp.ndarray, hxp.ndarray]:
        """Logical per-device aged windows."""
        lo = hxp.empty(self.shape, dtype=hxp.float64)
        hi = hxp.empty(self.shape, dtype=hxp.float64)
        for rs, cs, tile in self.iter_tiles():
            tlo, thi = tile.aged_bounds()
            lo[rs, cs], hi[rs, cs] = tlo, thi
        return lo, hi

    def pulse_totals(self) -> int:
        """Total programming pulses across all tiles."""
        return sum(tile.total_pulses() for _rs, _cs, tile in self.iter_tiles())

    def dead_mask(self) -> hxp.ndarray:
        """Logical boolean mask of dead (window-collapsed) devices."""
        out = hxp.empty(self.shape, dtype=bool)
        for rs, cs, tile in self.iter_tiles():
            out[rs, cs] = tile.dead_mask()
        return out

    def dead_fraction(self) -> float:
        """Fraction of dead devices over the logical matrix."""
        return float(hxp.mean(self.dead_mask()))

    # -- operations ----------------------------------------------------------
    def program(self, targets: hxp.ndarray, only_changed: bool = True) -> hxp.ndarray:
        """Program the logical matrix (slice-wise per tile)."""
        targets = hxp.asarray(targets, dtype=hxp.float64)
        if targets.shape != self.shape:
            raise ShapeError(f"targets shape {targets.shape} != logical {self.shape}")
        for rs, cs, tile in self.iter_tiles():
            tile.program(targets[rs, cs], only_changed=only_changed)
        return self.resistances()

    def step_levels(self, directions: hxp.ndarray) -> hxp.ndarray:
        """Apply ±1-level tuning pulses over the logical matrix."""
        directions = hxp.asarray(directions)
        if directions.shape != self.shape:
            raise ShapeError(f"directions shape {directions.shape} != logical {self.shape}")
        for rs, cs, tile in self.iter_tiles():
            tile.step_levels(directions[rs, cs])
        return self.resistances()

    def step_conductance(self, directions: hxp.ndarray, fraction: float = 0.5) -> hxp.ndarray:
        """Conductance-domain tuning pulses over the logical matrix."""
        directions = hxp.asarray(directions)
        if directions.shape != self.shape:
            raise ShapeError(f"directions shape {directions.shape} != logical {self.shape}")
        for rs, cs, tile in self.iter_tiles():
            tile.step_conductance(directions[rs, cs], fraction=fraction)
        return self.resistances()

    def program_pulses(
        self, mask: hxp.ndarray, polarity: hxp.ndarray, fraction: float = 0.5
    ) -> int:
        """Batched tuning pulses over the logical matrix.

        The bit-identical fast sibling of :meth:`step_conductance`
        (see :meth:`Crossbar.program_pulses`): tiles are visited in
        :meth:`iter_tiles` order so every tile's RNG stream advances
        exactly as on the scalar path, but no logical resistance matrix
        is assembled and no per-tile validation pass runs.  Returns the
        total number of pulses that actually fired.
        """
        if mask.shape != self.shape:
            raise ShapeError(f"mask shape {mask.shape} != logical {self.shape}")
        applied = 0
        for rs, cs, tile in self.iter_tiles():
            applied += tile.program_pulses(
                mask[rs, cs], polarity[rs, cs], fraction=fraction
            )
        return applied

    def program_targets(self, targets: hxp.ndarray, only_changed: bool = True) -> int:
        """Batched programming over the logical matrix.

        Bit-identical to :meth:`program` but skips assembling the
        logical achieved-resistance matrix that batch callers discard.
        Returns the total number of devices that received a pulse.
        """
        targets = hxp.asarray(targets, dtype=hxp.float64)
        if targets.shape != self.shape:
            raise ShapeError(f"targets shape {targets.shape} != logical {self.shape}")
        applied = 0
        for rs, cs, tile in self.iter_tiles():
            applied += tile.program_targets(targets[rs, cs], only_changed=only_changed)
        return applied

    def apply_drift(self, magnitude: float) -> hxp.ndarray:
        """Apply read-disturb drift to every tile (see Crossbar.apply_drift)."""
        for _rs, _cs, tile in self.iter_tiles():
            tile.apply_drift(magnitude)
        return self.resistances()

    def vmm(self, v_in: hxp.ndarray) -> hxp.ndarray:
        """Analog VMM with digital summation of per-tile partial outputs."""
        v_in = hxp.asarray(v_in, dtype=hxp.float64)
        if v_in.shape[-1] != self.rows:
            raise ShapeError(f"input width {v_in.shape[-1]} != logical rows {self.rows}")
        out_shape = v_in.shape[:-1] + (self.cols,)
        out = hxp.zeros(out_shape, dtype=hxp.float64)
        for rs, cs, tile in self.iter_tiles():
            out[..., cs] += tile.vmm(v_in[..., rs])
        return out

    def vmm_ir_drop(
        self, v_in: hxp.ndarray, model: "ParasiticModel", exact: bool = False
    ) -> hxp.ndarray:
        """Parasitic-aware VMM with digital summation of tile partials.

        Each tile solves its own (bounded-size) IR-drop problem through
        its cached factorization; partial currents sum digitally, as in
        :meth:`vmm`.
        """
        v_in = hxp.asarray(v_in, dtype=hxp.float64)
        if v_in.shape[-1] != self.rows:
            raise ShapeError(f"input width {v_in.shape[-1]} != logical rows {self.rows}")
        out_shape = v_in.shape[:-1] + (self.cols,)
        out = hxp.zeros(out_shape, dtype=hxp.float64)
        for rs, cs, tile in self.iter_tiles():
            out[..., cs] += tile.vmm_ir_drop(v_in[..., rs], model, exact=exact)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        gr, gc = self.grid_shape
        return f"TiledMatrix({self.rows}x{self.cols} as {gr}x{gc} tiles)"
