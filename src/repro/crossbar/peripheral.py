"""Analog interface peripherals: input DAC and output TIA/ADC.

The crossbar itself computes in the analog domain; real systems bound
its interface with data converters.  These models are deliberately
simple — uniform quantization with saturation — but they make the
end-to-end examples honest about interface precision and give the test
suite a place to pin down converter behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class InputDriver:
    """DAC driving the crossbar rows.

    Quantizes input values to ``bits`` uniform codes over
    ``[-v_max, v_max]`` (or ``[0, v_max]`` when ``bipolar=False``) and
    saturates outside the range.
    """

    def __init__(self, bits: int = 8, v_max: float = 1.0, bipolar: bool = True) -> None:
        if bits < 1:
            raise ConfigurationError(f"bits must be >= 1, got {bits}")
        if v_max <= 0:
            raise ConfigurationError(f"v_max must be > 0, got {v_max}")
        self.bits = int(bits)
        self.v_max = float(v_max)
        self.bipolar = bool(bipolar)

    @property
    def n_codes(self) -> int:
        """Number of distinct output voltages."""
        return 2**self.bits

    def convert(self, x: np.ndarray) -> np.ndarray:
        """Quantize ``x`` to DAC voltage codes."""
        x = np.asarray(x, dtype=np.float64)
        lo = -self.v_max if self.bipolar else 0.0
        clipped = np.clip(x, lo, self.v_max)
        step = (self.v_max - lo) / (self.n_codes - 1)
        return lo + np.rint((clipped - lo) / step) * step


class OutputConverter:
    """TIA + ADC on the crossbar columns.

    Converts column currents to voltages via ``r_tia`` and quantizes to
    ``bits`` codes over ``[-v_full_scale, v_full_scale]``.
    """

    def __init__(self, bits: int = 8, r_tia: float = 1e3, v_full_scale: float = 1.0) -> None:
        if bits < 1:
            raise ConfigurationError(f"bits must be >= 1, got {bits}")
        if r_tia <= 0 or v_full_scale <= 0:
            raise ConfigurationError("r_tia and v_full_scale must be > 0")
        self.bits = int(bits)
        self.r_tia = float(r_tia)
        self.v_full_scale = float(v_full_scale)

    @property
    def n_codes(self) -> int:
        return 2**self.bits

    def convert(self, currents: np.ndarray) -> np.ndarray:
        """Currents → quantized output voltages."""
        v = np.asarray(currents, dtype=np.float64) * self.r_tia
        clipped = np.clip(v, -self.v_full_scale, self.v_full_scale)
        step = 2.0 * self.v_full_scale / (self.n_codes - 1)
        return -self.v_full_scale + np.rint((clipped + self.v_full_scale) / step) * step
