"""Representative-device tracing — paper Section IV-B.

Tracking the programming history of every memristor would require a
counter per device.  The paper instead traces *"every one out of nine
memristors, namely, the memristor at the center of every 3x3 block"*
and uses each traced device's estimated aged window as the window of its
whole block during aging-aware mapping.

:class:`BlockTracer` implements exactly this: it partitions the array
into ``block x block`` tiles, designates the centre cell of each tile as
its representative, and expands the representatives' aged bounds back to
full-array estimates.  ``block=1`` degenerates to exact per-device
knowledge, ``block=5`` traces 1/25 of the array, etc. — the trace-density
ablation benchmark sweeps this.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.crossbar.crossbar import Crossbar
from repro.exceptions import ConfigurationError


class BlockTracer:
    """Estimate per-device aged windows from sparse traced devices."""

    def __init__(self, crossbar: Crossbar, block: int = 3) -> None:
        if block < 1:
            raise ConfigurationError(f"block must be >= 1, got {block}")
        self.crossbar = crossbar
        self.block = int(block)

    @property
    def trace_fraction(self) -> float:
        """Fraction of devices that carry a counter (1/block^2)."""
        return 1.0 / (self.block * self.block)

    def traced_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Row/col index arrays of the representative devices.

        The representative of each ``block x block`` tile is its centre
        cell; edge tiles (when the array size is not a multiple of
        ``block``) use the centre of whatever remains, clipped into the
        array.
        """
        b = self.block
        rows = np.arange(b // 2, self.crossbar.rows, b)
        cols = np.arange(b // 2, self.crossbar.cols, b)
        # Ensure the last partial tile still has a representative.
        if rows.size == 0 or rows[-1] < self.crossbar.rows - b:
            rows = np.append(rows, self.crossbar.rows - 1)
        if cols.size == 0 or cols[-1] < self.crossbar.cols - b:
            cols = np.append(cols, self.crossbar.cols - 1)
        return rows, cols

    def _block_index(self, n: int, traced: np.ndarray) -> np.ndarray:
        """Map each array index 0..n-1 to the index of its tracer."""
        b = self.block
        idx = np.minimum(np.arange(n) // b, traced.size - 1)
        return idx

    def estimated_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Full-array aged-window estimate from the traced devices only.

        Returns ``(est_min, est_max)`` arrays of the crossbar's shape:
        every device inherits the aged bounds of its block's
        representative.  This is the paper's estimate: cheap (few
        counters) but approximate, since untraced devices may have aged
        more or less than their representative.
        """
        lo, hi = self.crossbar.aged_bounds()
        t_rows, t_cols = self.traced_positions()
        row_map = self._block_index(self.crossbar.rows, t_rows)
        col_map = self._block_index(self.crossbar.cols, t_cols)
        rep_rows = t_rows[row_map]
        rep_cols = t_cols[col_map]
        est_min = lo[np.ix_(rep_rows, rep_cols)]
        est_max = hi[np.ix_(rep_rows, rep_cols)]
        return est_min, est_max

    def traced_upper_bounds(self) -> np.ndarray:
        """Aged upper bounds of just the traced devices (flat array).

        These are the candidate common-range upper bounds the
        aging-aware mapping iterates over (Fig. 8).
        """
        _, hi = self.crossbar.aged_bounds()
        t_rows, t_cols = self.traced_positions()
        return hi[np.ix_(t_rows, t_cols)].ravel()

    def estimation_error(self) -> float:
        """Mean absolute error of the upper-bound estimate vs ground truth.

        Used by the trace-density ablation to quantify what sparser
        tracing costs in estimation accuracy.
        """
        _, true_hi = self.crossbar.aged_bounds()
        _, est_hi = self.estimated_bounds()
        return float(np.mean(np.abs(true_hi - est_hi)))
