"""Skewed-weight training demo (paper Section IV-A, Fig. 6/7/9).

Trains the LeNet-role CNN conventionally, then reruns training with the
two-segment skewed regularizer, and shows what changes: the weight
distribution, the mapped resistance distribution, the quantization
error, and the per-pulse aging stress.

Run:  python examples/skewed_training_demo.py   (~1 minute)
"""

import numpy as np

from repro import DeviceConfig, MappedNetwork, SkewedTrainingConfig, TrainConfig
from repro.analysis import (
    ascii_histogram,
    resistance_histogram,
    weight_histogram,
)
from repro.mapping import LinearWeightMapping
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import clone_model
from repro.mapping.quantize import quantization_error
from repro.data import make_glyph_digits
from repro.training import build_lenet, distribution_skewness, skewed_train, train_baseline


def describe(model, data, device, label):
    weights = model.all_weight_values()
    mapping = LinearWeightMapping.from_weights(weights, device.g_min, device.g_max)
    grid = device.make_level_grid()
    targets = np.asarray(mapping.weight_to_resistance(weights))

    net = MappedNetwork(clone_model(model), device, seed=1)
    net.map_network(FreshMapper())

    print(f"--- {label} ---")
    print(f"test accuracy (software): {model.score(data.x_test, data.y_test):.3f}")
    print(f"test accuracy (mapped):   {net.score(data.x_test, data.y_test):.3f}")
    print(f"weight skewness:          {distribution_skewness(weights):+.2f}")
    print(f"median mapped resistance: {np.median(targets):.0f} Ohm")
    print(f"mean per-pulse stress:    {np.mean(device.stress_factor(targets)):.3f}")
    print(f"quantization RMS error:   {quantization_error(weights, mapping, grid):.4f}")

    edges, counts = weight_histogram(weights, bins=18)
    print("weight distribution:")
    print(ascii_histogram(edges, counts, width=30))
    edges, counts = resistance_histogram(weights, mapping, bins=12)
    print("mapped resistance distribution (kOhm):")
    print(ascii_histogram(edges / 1e3, counts, width=30))
    print()


def main() -> None:
    data = make_glyph_digits(n_train=1200, n_test=300, seed=11)
    device = DeviceConfig()

    baseline = build_lenet(seed=5)
    train_baseline(baseline, data, TrainConfig(epochs=20))
    describe(baseline, data, device, "conventional training (T)")

    skewed = clone_model(baseline)
    result = skewed_train(
        skewed, data, SkewedTrainingConfig(skew_epochs=15), pretrained=True
    )
    print(f"per-layer reference weights beta_i: "
          + ", ".join(f"L{i}={b:+.3f}" for i, b in result.betas.items()))
    describe(skewed, data, device, "skewed training (ST)")


if __name__ == "__main__":
    main()
