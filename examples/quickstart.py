"""Quickstart: train a small network, map it onto simulated memristor
crossbars, watch quantization cost accuracy, and tune it back online.

Run:  python examples/quickstart.py
"""

from repro import (
    DeviceConfig,
    MappedNetwork,
    OnlineTuner,
    TrainConfig,
    TuningConfig,
    make_blobs,
    train_baseline,
)
from repro.training import build_mlp


def main() -> None:
    # 1. A toy 3-class dataset and a small MLP trained in software.
    data = make_blobs(n_samples=400, n_classes=3, n_features=4, seed=3)
    model = build_mlp(input_dim=4, n_classes=3, hidden=(16,), seed=5)
    train_baseline(model, data, TrainConfig(epochs=20))
    print(f"software accuracy:        {model.score(data.x_test, data.y_test):.3f}")

    # 2. Map the trained weights onto crossbars: Eq. (4) conductance
    #    mapping + 32-level resistance quantization + write noise.
    device = DeviceConfig(n_levels=32, write_noise=0.1)
    network = MappedNetwork(model, device, seed=7)
    network.map_network()
    print(f"hardware accuracy (fresh): {network.score(data.x_test, data.y_test):.3f}")
    print(f"programming pulses so far: {network.total_pulses()}")

    # 3. Drift the array (read disturb) and recover with sign-based
    #    online tuning (Eq. 5) — each pulse ages the devices.
    network.apply_drift(0.5)
    print(f"after drift:               {network.score(data.x_test, data.y_test):.3f}")
    tuner = OnlineTuner(TuningConfig(target_accuracy=0.98, max_iterations=50), seed=9)
    result = tuner.tune(network, data.x_train[:128], data.y_train[:128])
    print(
        f"after online tuning:       {result.final_accuracy:.3f} "
        f"({result.iterations} iterations, {result.pulses_applied} pulses)"
    )

    # 4. Aging bookkeeping: the pulses above consumed device endurance.
    print(f"dead devices:              {network.dead_fraction():.1%}")
    print(f"mean aged R_max per layer: "
          + ", ".join(f"L{i}={v:.0f}" for i, v in network.aging_by_layer().items()))


if __name__ == "__main__":
    main()
