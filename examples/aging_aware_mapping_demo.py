"""Aging-aware mapping demo (paper Section IV-B / Fig. 8).

Ages a mapped network heterogeneously, then shows what each mapping
policy does with the damaged array: the candidate common ranges the
tracer sees, the score of each candidate, and the post-mapping accuracy
of fresh vs aging-aware mapping.

Run:  python examples/aging_aware_mapping_demo.py   (~1 minute)
"""

import numpy as np

from repro import DeviceConfig, MappedNetwork, TrainConfig
from repro.data import make_glyph_digits
from repro.mapping import AgingAwareMapper
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import clone_model
from repro.training import build_lenet, train_baseline


def main() -> None:
    data = make_glyph_digits(n_train=1200, n_test=300, seed=11)
    model = build_lenet(seed=5)
    train_baseline(model, data, TrainConfig(epochs=20))
    x, y = data.x_train[:192], data.y_train[:192]
    print(f"software accuracy: {model.score(x, y):.3f}")

    device = DeviceConfig(pulses_to_collapse=80, write_noise=0.1)

    def build_aged_network(seed: int) -> MappedNetwork:
        """Map, then age the array: every device sees programming
        traffic (common-mode level loss), a hot subset sees more."""
        net = MappedNetwork(clone_model(model), device, seed=seed)
        net.map_network(FreshMapper())
        rng = np.random.default_rng(seed)
        for layer in net.layers:
            hot = rng.random(layer.matrix_shape) < 0.3
            everyone = np.ones(layer.matrix_shape, dtype=int)
            for k in range(45):
                layer.tiles.step_conductance(everyone if k % 3 else hot.astype(int))
        return net

    # Fresh (aging-oblivious) remap of the damaged array.
    net = build_aged_network(seed=55)
    net.map_network(FreshMapper())
    print(f"\nfresh remap of the aged array:       accuracy {net.score(x, y):.3f}")

    # Aging-aware remap: show the Fig. 8 selection per layer.
    net = build_aged_network(seed=55)
    mapper = AgingAwareMapper()
    net.map_network(mapper, selection_data=(x, y))
    print(f"aging-aware remap of the aged array:  accuracy {net.score(x, y):.3f}\n")

    print("per-layer candidate selection (Fig. 8):")
    for selection in mapper.history:
        candidates = ", ".join(
            f"{c/1e3:.0f}k{'*' if c == selection.chosen_upper else ''}"
            for c in selection.candidates
        )
        scores = ", ".join(f"{s:.3f}" for s in selection.scores)
        print(f"  layer {selection.layer_index}: candidates R_max = [{candidates}]")
        print(f"           predicted accuracies = [{scores}]")
    print("\n(* = selected common upper bound; the accuracy-scored")
    print("iteration over traced aged bounds is the paper's Section IV-B)")


if __name__ == "__main__":
    main()
