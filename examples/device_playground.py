"""Device-level tour: a single memristor's aging life, and an analog
crossbar doing vector-matrix multiplication behind DAC/ADC converters.

Run:  python examples/device_playground.py
"""

import numpy as np

from repro import Crossbar, DeviceConfig, Memristor
from repro.crossbar import InputDriver, OutputConverter


def single_cell_demo() -> None:
    print("== one memristor, programmed until its window collapses ==")
    config = DeviceConfig(pulses_to_collapse=400, n_levels=8, write_noise=0.0)
    cell = Memristor(config, seed=1)
    print(f"fresh window: {cell.aged_bounds()}, levels: {len(cell.usable_levels())}")

    checkpoints = {50, 100, 200, 300, 350}
    pulses = 0
    while not cell.is_dead:
        # Alternate low/high targets: worst-case programming traffic.
        cell.program(config.r_min if pulses % 2 else config.r_max)
        pulses += 1
        if pulses in checkpoints:
            lo, hi = cell.aged_bounds()
            print(
                f"after {pulses:>4d} pulses: window=[{lo:>8.0f}, {hi:>8.0f}] "
                f"levels={len(cell.usable_levels())}"
            )
    print(f"cell died after {cell.pulse_count} pulses (fewer than 2 usable levels)\n")


def crossbar_vmm_demo() -> None:
    print("== 8x4 crossbar computing V_O = V_I * G * R_tia ==")
    config = DeviceConfig(write_noise=0.0)
    xbar = Crossbar(8, 4, config, r_tia=1e3, seed=2)

    rng = np.random.default_rng(3)
    targets = rng.uniform(2e4, 8e4, size=(8, 4))
    xbar.program(targets)

    dac = InputDriver(bits=6, v_max=1.0)
    adc = OutputConverter(bits=8, r_tia=1e3, v_full_scale=1.0)

    v_in = rng.uniform(-1, 1, size=8)
    v_driven = dac.convert(v_in)
    currents = v_driven @ xbar.conductances()
    v_out = adc.convert(currents)

    ideal = v_in @ xbar.conductances() * 1e3
    print(f"input (6-bit DAC):  {np.round(v_driven, 3)}")
    print(f"analog ideal out:   {np.round(ideal, 4)}")
    print(f"8-bit ADC out:      {np.round(v_out, 4)}")
    print(f"interface error:    {np.max(np.abs(v_out - ideal)):.4f} (full scale 1.0)\n")


def aging_gradient_demo() -> None:
    print("== current-dependent aging: low-R programming wears faster ==")
    config = DeviceConfig(pulses_to_collapse=1000)
    for target in (1.2e4, 3e4, 9e4):
        cell = Memristor(config, seed=4)
        for _ in range(300):
            cell.program(target, pulses=1)
        lo, hi = cell.aged_bounds()
        print(
            f"300 pulses at R={target:>6.0f}: stress={cell.stress_time*1e6:7.1f} us, "
            f"aged window=[{lo:.0f}, {hi:.0f}]"
        )


if __name__ == "__main__":
    single_cell_demo()
    crossbar_vmm_demo()
    aging_gradient_demo()
