"""The paper's headline experiment at demo scale: lifetime of T+T vs
ST+T vs ST+AT on the glyph-digit workload (Table I / Fig. 10).

Run:  python examples/lifetime_comparison.py        (~2-4 minutes)
      python examples/lifetime_comparison.py --fast (~40 seconds)
"""

import sys
import time

from repro import AgingAwareFramework
from repro.analysis import ascii_series, render_table
from repro.core.presets import lenet_glyphs


def main(fast: bool) -> None:
    preset = lenet_glyphs(fast=fast)
    print(f"preset: {preset.name}")
    dataset = preset.make_dataset()
    print(dataset.describe())

    framework = AgingAwareFramework(
        preset.build_network, dataset, preset.framework_config, seed=preset.seed
    )
    results = {}
    for key in ("t+t", "st+t", "st+at"):
        start = time.time()
        results[key] = framework.run_scenario(key)
        r = results[key]
        print(
            f"{key.upper():6s} lifetime={r.lifetime_applications:>9d} apps "
            f"({len(r.windows)} windows, {'failed' if r.failed else 'horizon'}) "
            f"[{time.time() - start:.0f}s]"
        )

    base = results["t+t"].lifetime_applications or 1
    print()
    print(
        render_table(
            ["scenario", "software acc", "lifetime (apps)", "vs T+T"],
            [
                [
                    k.upper(),
                    f"{results[k].software_accuracy:.3f}",
                    results[k].lifetime_applications,
                    f"{results[k].lifetime_applications / base:.1f}x",
                ]
                for k in results
            ],
            title="Table I (lifetime) — demo scale",
        )
    )
    print()
    for key, result in results.items():
        print(
            ascii_series(
                [float(v) for v in result.iteration_trace()],
                height=6,
                label=f"Fig. 10 — {key.upper()}: tuning iterations per window",
            )
        )
        print()


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
