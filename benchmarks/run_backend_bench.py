"""Per-backend wall-clock of the hot numeric surfaces (DESIGN.md §14).

Three arms, each run once per available backend (numpy always; torch
when importable — its absence only drops the torch rows, it never fails
the bench):

* **vmm** — large-array noise-free crossbar VMM (default 512x512,
  batch 64): the surface where an accelerator pays off first, and the
  arm the nightly ``REPRO_BENCH_MIN_TORCH_SPEEDUP`` gate applies to.
* **inference** — batched software-model evaluation on the
  ``blobs-wide`` preset (wide MLP, large held-out split): the per-window
  evaluate step of the lifetime loop in isolation.
* **e2e** — one miniature ``t+t`` lifetime run on ``blobs-wide`` (fast
  horizon): programming/tuning stay host-side by contract, so this arm
  shows how much of the loop the backend can actually touch.

Cross-backend agreement is asserted per arm: numpy output is the
reference, torch must match within the documented float64 tolerance
(``rtol=1e-8`` here — GEMM reduction order differs).  Writes
``BENCH_backend.json`` at the repository root and appends a one-line
record to ``BENCH_history.jsonl``; exits nonzero on disagreement or a
failed speedup gate.

Usage::

    PYTHONPATH=src python benchmarks/run_backend_bench.py

Environment overrides: ``REPRO_BBENCH_SIZE`` (array side, default 512),
``REPRO_BBENCH_BATCH`` (default 64), ``REPRO_BBENCH_REPS`` (default 5),
``REPRO_BENCH_MIN_TORCH_SPEEDUP`` (fail when the torch vmm arm is below
this speedup over numpy; default 0 = report only, ignored when torch is
absent), ``REPRO_BACKEND_DTYPE`` (torch precision policy, default
float64).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np

from bench_history import append_history
from repro.core import AgingAwareFramework, backend
from repro.core.presets import blobs_wide
from repro.crossbar import Crossbar
from repro.device import DeviceConfig

SIZE = int(os.environ.get("REPRO_BBENCH_SIZE", "512"))
BATCH = int(os.environ.get("REPRO_BBENCH_BATCH", "64"))
REPS = int(os.environ.get("REPRO_BBENCH_REPS", "5"))
MIN_TORCH_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_TORCH_SPEEDUP", "0"))
TORCH_RTOL = 1e-8


def available_backends() -> list[str]:
    names = ["numpy"]
    if backend.backend_available("torch"):
        names.append("torch")
    return names


def timed(fn, reps: int = REPS):
    """Best-of-reps wall clock; returns (last_result, best_seconds)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_vmm() -> dict:
    xbar = Crossbar(SIZE, SIZE, DeviceConfig(read_noise=0.0), seed=42)
    v_batch = np.random.default_rng(7).uniform(0.0, 1.0, size=(BATCH, SIZE))
    arm: dict = {"array": f"{SIZE}x{SIZE}", "batch": BATCH, "repetitions": REPS}
    reference = None
    for name in available_backends():
        with backend.using(name):
            xbar.vmm(v_batch)  # warm the device conductance cache
            out, seconds = timed(lambda: xbar.vmm(v_batch))
        arm[f"{name}_seconds"] = round(seconds, 6)
        if reference is None:
            reference = out
        else:
            np.testing.assert_allclose(out, reference, rtol=TORCH_RTOL)
            arm[f"speedup_{name}_vs_numpy"] = round(
                arm["numpy_seconds"] / seconds, 2
            )
    return arm


def bench_inference() -> dict:
    preset = blobs_wide(fast=False)
    data = preset.make_dataset()
    model = preset.build_network(preset.seed)
    arm: dict = {
        "workload": f"blobs-wide evaluate, {data.n_test} test samples, "
        "mlp (256, 128)",
        "repetitions": REPS,
    }
    reference = None
    for name in available_backends():
        with backend.using(name):
            acc, seconds = timed(lambda: model.score(data.x_test, data.y_test))
        arm[f"{name}_seconds"] = round(seconds, 6)
        arm[f"{name}_accuracy"] = round(float(acc), 6)
        if reference is None:
            reference = acc
        else:
            arm[f"speedup_{name}_vs_numpy"] = round(
                arm["numpy_seconds"] / seconds, 2
            )
    return arm


def bench_e2e() -> dict:
    preset = blobs_wide(fast=True)
    arm: dict = {
        "workload": "blobs-wide-fast t+t lifetime run "
        f"({preset.framework_config.lifetime.max_windows} windows)",
        "repetitions": 1,
    }
    for name in available_backends():
        with backend.using(name):
            framework = AgingAwareFramework(
                preset.build_network,
                preset.make_dataset(),
                preset.framework_config,
                seed=preset.seed,
            )
            framework.trained_model(False)  # train outside the timed region
            result, seconds = timed(lambda: framework.run_scenario("t+t"), reps=1)
        arm[f"{name}_seconds"] = round(seconds, 4)
        arm[f"{name}_lifetime_windows"] = len(result.windows)
        if name != "numpy":
            arm[f"speedup_{name}_vs_numpy"] = round(
                arm["numpy_seconds"] / seconds, 2
            )
    return arm


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    backends = available_backends()

    vmm = bench_vmm()
    inference = bench_inference()
    e2e = bench_e2e()

    torch_speedup = vmm.get("speedup_torch_vs_numpy")
    payload = {
        "benchmark": "array backend: per-backend wall clock of the hot "
        "numeric surfaces (large VMM, batched inference, e2e lifetime)",
        "cpu_count": os.cpu_count(),
        "backends": backends,
        "backend_dtype": os.environ.get("REPRO_BACKEND_DTYPE", "float64"),
        "large_vmm": vmm,
        "batched_inference": inference,
        "end_to_end_lifetime": e2e,
        "min_torch_speedup_gate": MIN_TORCH_SPEEDUP,
        "meets_torch_speedup_gate": (
            None
            if torch_speedup is None or MIN_TORCH_SPEEDUP <= 0
            else torch_speedup >= MIN_TORCH_SPEEDUP
        ),
    }
    out = repo_root / "BENCH_backend.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    append_history(
        repo_root,
        "backend",
        {
            "backends": backends,
            "vmm_numpy_seconds": vmm["numpy_seconds"],
            "vmm_speedup_torch_vs_numpy": torch_speedup,
            "inference_speedup_torch_vs_numpy": inference.get(
                "speedup_torch_vs_numpy"
            ),
            "e2e_speedup_torch_vs_numpy": e2e.get("speedup_torch_vs_numpy"),
        },
    )

    if (
        "torch" in backends
        and MIN_TORCH_SPEEDUP > 0
        and (torch_speedup is None or torch_speedup < MIN_TORCH_SPEEDUP)
    ):
        print(
            f"ERROR: torch large-VMM speedup {torch_speedup}x below the "
            f"REPRO_BENCH_MIN_TORCH_SPEEDUP={MIN_TORCH_SPEEDUP}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
