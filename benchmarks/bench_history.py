"""One-line-per-run benchmark history (``BENCH_history.jsonl``).

Every ``benchmarks/run_*_bench.py`` ends by appending one JSON record —
bench name, the run's key speedups, and the git SHA it measured — to
``BENCH_history.jsonl`` at the repository root.  The snapshot files
(``BENCH_*.json``) keep the latest full payloads; the history file is
the machine-readable perf trajectory across PRs, greppable and
plottable without reconstructing old checkouts.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess
from typing import Mapping

HISTORY_NAME = "BENCH_history.jsonl"


def git_sha(repo_root: pathlib.Path) -> str:
    """Current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_history(
    repo_root: pathlib.Path, bench: str, summary: Mapping[str, object]
) -> dict:
    """Append one record for ``bench`` to the history file; returns it.

    ``summary`` should carry only the handful of numbers worth tracking
    across PRs (key speedups, gate outcomes) — the full payload belongs
    in the bench's own snapshot file.
    """
    record = {
        "bench": bench,
        "git_sha": git_sha(repo_root),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        **dict(summary),
    }
    path = pathlib.Path(repo_root) / HISTORY_NAME
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=False) + "\n")
    return record
