"""Fig. 9: the skewed weight distribution of the third (conv) layer of
the VGG-role network.

The paper shows one representative layer: most weights concentrated
towards small values with a thin right tail; "the weight distributions
of other layers have similar tendencies".
"""

import numpy as np

from repro.analysis import ascii_histogram, weight_histogram
from repro.training import distribution_skewness


def compute(lab):
    model = lab.skewed_model()
    weighted = model.weighted_layers()
    # The third weighted (conv) layer, as in the paper's figure.
    idx, layer = weighted[2]
    return idx, layer.params["W"].ravel().copy(), [
        (i, distribution_skewness(l.params["W"])) for i, l in weighted
    ]


def test_fig9_layer_distribution(benchmark, vgg_lab, report):
    idx, weights, all_skews = benchmark.pedantic(
        lambda: compute(vgg_lab), rounds=1, iterations=1
    )
    edges, counts = weight_histogram(weights, bins=24)
    parts = [
        f"layer index {idx} (third conv layer) of the skewed VGG-role net:",
        ascii_histogram(edges, counts, width=40),
        "",
        "per-layer weight skewness (all layers show the same tendency):",
        "\n".join(f"  layer {i}: {s:+.2f}" for i, s in all_skews),
    ]
    report("fig9_layer_distribution", "\n".join(parts))

    # Shape: right-skewed, mass in the lower half of the range.
    assert distribution_skewness(weights) > 0.3
    position = (np.median(weights) - weights.min()) / (weights.max() - weights.min())
    assert position < 0.45
    # "Similar tendencies": a majority of layers are right-skewed.
    assert sum(1 for _i, s in all_skews if s > 0) > len(all_skews) / 2
