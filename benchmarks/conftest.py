"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one table or figure of the paper (see
DESIGN.md §4).  Training runs and lifetime simulations are expensive, so
they are computed once per session in the fixtures below and shared by
every bench that needs them.  Every bench writes its rendered artefact
(ASCII table/plot) to ``benchmarks/output/<name>.txt`` and prints it, so
``pytest benchmarks/ --benchmark-only -s`` shows the full reproduction
and the output directory keeps it.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict

import pytest

from repro.core import AgingAwareFramework
from repro.core.presets import ExperimentPreset, lenet_glyphs, vggnet_shapes
from repro.core.results import LifetimeResult
from repro.data.dataset import Dataset

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Worker processes for the ablation sweeps.

    The ablations submit their points through the execution engine
    (:class:`repro.core.Sweep`), whose per-point seeds are derivation
    based — results are bit-identical at any worker count.  Set
    ``REPRO_BENCH_WORKERS=4`` to fan points out across processes;
    the default of 1 runs in-process.
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def report(output_dir) -> Callable[[str, str], None]:
    """Write an artefact to the output dir and echo it to stdout."""

    def _report(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====")
        print(text)

    return _report


@dataclass
class Lab:
    """One workload's lazily computed experiment state."""

    preset: ExperimentPreset
    dataset: Dataset
    framework: AgingAwareFramework
    _results: Dict[tuple, LifetimeResult] = field(default_factory=dict)

    def result(self, scenario_key: str, repeat: int = 0) -> LifetimeResult:
        """Lifetime result for one scenario repeat (cached per session)."""
        key = (scenario_key, repeat)
        if key not in self._results:
            self._results[key] = self.framework.run_scenario(scenario_key, repeat=repeat)
        return self._results[key]

    def median_result(self, scenario_key: str, repeats: int = 3) -> LifetimeResult:
        """Median-lifetime result over ``repeats`` hardware seeds.

        Lifetime is heavy-tailed; the median of a few repeats is what
        the Table I benches compare."""
        results = [self.result(scenario_key, r) for r in range(repeats)]
        results = sorted(results, key=lambda r: r.lifetime_applications)
        return results[len(results) // 2]

    def baseline_model(self):
        return self.framework.trained_model(False)

    def skewed_model(self):
        return self.framework.trained_model(True)


def _make_lab(preset: ExperimentPreset) -> Lab:
    dataset = preset.make_dataset()
    framework = AgingAwareFramework(
        preset.build_network, dataset, preset.framework_config, seed=preset.seed
    )
    return Lab(preset=preset, dataset=dataset, framework=framework)


@pytest.fixture(scope="session")
def lenet_lab() -> Lab:
    """The LeNet-5/Cifar10 role (glyph digits)."""
    return _make_lab(lenet_glyphs(fast=False))


@pytest.fixture(scope="session")
def vgg_lab() -> Lab:
    """The VGG-16/Cifar100 role (textured shapes)."""
    return _make_lab(vggnet_shapes(fast=False))
