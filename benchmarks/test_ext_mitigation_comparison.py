"""Extension: head-to-head of counter-aging techniques.

The paper's Section I surveys three prior mitigation families — pulse
shaping [9], series resistors [11], row swapping [12] — and claims its
software/hardware co-optimization wins "without extra hardware cost".
This bench puts behavioural models of all of them on one axis: lifetime
of the baseline-trained network under each mitigation, vs the paper's
ST+T (no extra hardware, software-only).
"""

from repro.analysis import render_table
from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
from repro.mapping.network import MappedNetwork, clone_model
from repro.mitigation import PulseShaping, RowSwapper, SeriesResistor
from repro.tuning import TuningConfig


def run(lab):
    cfg = lab.preset.framework_config
    x = lab.dataset.x_train[: cfg.tune_samples]
    y = lab.dataset.y_train[: cfg.tune_samples]

    def lifetime(model, device_cfg, hooks=(), key="ext"):
        network = MappedNetwork(
            clone_model(model),
            device_config=device_cfg,
            tile_rows=cfg.tile_rows,
            tile_cols=cfg.tile_cols,
            trace_block=cfg.trace_block,
            seed=4242,
        )
        target = 0.93 * lab.framework.software_accuracy(model is skewed)
        lifetime_cfg = LifetimeConfig(
            apps_per_window=cfg.lifetime.apps_per_window,
            drift_magnitude=cfg.lifetime.drift_magnitude,
            max_windows=cfg.lifetime.max_windows,
            tuning=TuningConfig(
                target_accuracy=target,
                max_iterations=cfg.lifetime.tuning.max_iterations,
                patience_evals=cfg.lifetime.tuning.patience_evals,
            ),
        )
        sim = LifetimeSimulator(
            network, x, y, config=lifetime_cfg, maintenance_hooks=list(hooks), seed=77
        )
        return sim.run(key).lifetime_applications

    baseline = lab.baseline_model()
    skewed = lab.skewed_model()
    device = cfg.device

    sr = SeriesResistor(1e4)
    rows = [
        ("none (T+T)", lifetime(baseline, device), "none"),
        (
            "pulse shaping [9] (triangular)",
            lifetime(baseline, PulseShaping("triangular").apply(device)),
            "waveform generator; 2x programming latency",
        ),
        (
            "series resistor [11] (10 kOhm)",
            lifetime(baseline, sr.apply(device)),
            f"per-cell resistor; G-range compressed to "
            f"{sr.conductance_compression(device):.0%}",
        ),
        (
            "row swapping [12]",
            lifetime(baseline, device, hooks=[RowSwapper().apply_to_network]),
            "row-routing muxes; whole-row reprogram per swap",
        ),
        ("skewed training (ST+T, this paper)", lifetime(skewed, device), "none"),
    ]
    return rows


def test_ext_mitigation_comparison(benchmark, lenet_lab, report):
    rows = benchmark.pedantic(lambda: run(lenet_lab), rounds=1, iterations=1)
    base = rows[0][1] or 1
    report(
        "ext_mitigation_comparison",
        render_table(
            ["mitigation", "lifetime (apps)", "vs unmitigated", "hardware cost"],
            [[name, life, f"{life / base:.1f}x", cost] for name, life, cost in rows],
            title="Extension — counter-aging techniques on one axis (LeNet role)",
        ),
    )
    lifetimes = {name: life for name, life, _cost in rows}
    # Pulse shaping's lower average voltage must pay off.
    assert lifetimes["pulse shaping [9] (triangular)"] >= base
    # The paper's claim is about *zero extra hardware cost*: skewed
    # training must beat the other low-cost mitigations.  (The per-cell
    # series resistor can win outright — it pays with area and a
    # compressed conductance range, which the table reports.)
    assert (
        lifetimes["skewed training (ST+T, this paper)"]
        > lifetimes["row swapping [12]"]
    )
    assert (
        lifetimes["skewed training (ST+T, this paper)"]
        > lifetimes["pulse shaping [9] (triangular)"]
    )
