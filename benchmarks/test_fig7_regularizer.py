"""Fig. 7: the two-segment regularization profile.

The solid curve is the quasi-normal distribution of conventionally
trained weights; the two dashed curves are R1(W) (steep, left of the
reference weight beta) and R2(W) (shallow, right of beta).  This bench
renders both and pins the analytic properties of the profile.
"""

import numpy as np

from repro.analysis import ascii_series, weight_histogram
from repro.nn.regularizers import SkewedL2Regularizer, beta_from_std


def compute(lab):
    weights = lab.baseline_model().all_weight_values()
    beta = beta_from_std(weights, -1.0)
    reg = SkewedL2Regularizer(beta=beta, lambda1=5e-2, lambda2=1e-3)
    xs = np.linspace(weights.min(), weights.max(), 201)
    return weights, beta, reg, xs, reg.penalty_profile(xs)


def test_fig7_regularizer(benchmark, lenet_lab, report):
    weights, beta, reg, xs, profile = benchmark.pedantic(
        lambda: compute(lenet_lab), rounds=1, iterations=1
    )
    edges, counts = weight_histogram(weights, bins=30)
    parts = [
        f"reference weight beta = -1.0 * sigma = {beta:+.4f}",
        "",
        "penalty profile over the trained weight range:",
        ascii_series(profile.tolist(), label="R1(W) | R2(W)"),
        "",
        "trained (quasi-normal) weight density for reference:",
        ascii_series(counts.tolist(), label="weight histogram counts"),
    ]
    report("fig7_regularizer", "\n".join(parts))

    # Analytic shape of Fig. 7:
    i_beta = int(np.argmin(np.abs(xs - beta)))
    # Zero at beta, increasing away from it on both sides.
    assert profile[i_beta] == min(profile)
    # Steep left branch: equal distance left costs lambda1/lambda2 more.
    d = 0.45 * (xs[-1] - beta)
    left = reg.penalty_profile(np.array([beta - d]))[0]
    right = reg.penalty_profile(np.array([beta + d]))[0]
    assert left / right == (reg.lambda1 / reg.lambda2)
