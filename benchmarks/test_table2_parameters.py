"""Table II: the skewed-training parameter settings.

The paper's Table II lists, per network, the reference-weight constant
(beta = c * sigma_i) and the two penalties lambda1/lambda2, selected "to
maintain both the classification accuracy and the expected skewed weight
distribution".  This bench reruns that selection sweep on the LeNet role
and reports, per candidate setting: validation accuracy, weight
skewness, and the median mapped resistance (the quantity aging actually
cares about).  The preset's operating point must be on the sweep's
Pareto front: accuracy within tolerance of baseline AND a clear
resistance shift.
"""

import numpy as np

from repro.analysis import render_table
from repro.device import DeviceConfig
from repro.mapping import MappedNetwork
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import clone_model
from repro.training import (
    SkewedTrainingConfig,
    distribution_skewness,
    skewed_train,
)

SWEEP = [
    # (beta_scale, lambda1, lambda2)
    (-1.0, 5e-3, 1e-3),
    (-1.0, 2e-2, 1e-3),
    (-1.0, 5e-2, 1e-3),   # the preset's operating point
    (-0.5, 5e-2, 1e-3),
    (-1.0, 5e-2, 5e-3),
]


def median_mapped_resistance(model) -> float:
    net = MappedNetwork(clone_model(model), DeviceConfig(), seed=1)
    net.map_network(FreshMapper())
    targets = np.concatenate(
        [
            np.asarray(m.mapping.weight_to_resistance(m.software_matrix())).ravel()
            for m in net.layers
        ]
    )
    return float(np.median(targets))


def run_sweep(lab):
    base = lab.baseline_model()
    base_acc = lab.framework.software_accuracy(False)
    base_r = median_mapped_resistance(base)
    rows = [("baseline", "-", "-", base_acc,
             distribution_skewness(base.all_weight_values()), base_r)]
    for beta_scale, l1, l2 in SWEEP:
        model = clone_model(base)
        cfg = SkewedTrainingConfig(
            beta_scale=beta_scale, lambda1=l1, lambda2=l2, skew_epochs=12
        )
        skewed_train(model, lab.dataset, cfg, pretrained=True)
        rows.append(
            (
                f"c={beta_scale}",
                f"{l1:g}",
                f"{l2:g}",
                model.score(lab.dataset.x_test, lab.dataset.y_test),
                distribution_skewness(model.all_weight_values()),
                median_mapped_resistance(model),
            )
        )
    return rows, base_acc, base_r


def test_table2_parameters(benchmark, lenet_lab, report):
    rows, base_acc, base_r = benchmark.pedantic(
        lambda: run_sweep(lenet_lab), rounds=1, iterations=1
    )
    report(
        "table2_parameters",
        render_table(
            ["beta rule", "lambda1", "lambda2", "val acc", "skewness", "median R"],
            [
                [r[0], r[1], r[2], f"{r[3]:.3f}", f"{r[4]:+.2f}", f"{r[5]:.0f}"]
                for r in rows
            ],
            title="Table II — skewed-training parameter sweep (LeNet role)",
        ),
    )
    # The preset's operating point (third sweep row) must keep accuracy
    # within 5 points AND shift the median resistance up by >= 1.3x.
    op = rows[3]
    assert op[3] > base_acc - 0.05
    assert op[5] > 1.3 * base_r
