"""Measure fault-campaign throughput: serial vs parallel, cold vs warm.

Two grids over the miniature blobs workload:

**Standard grid** (baseline + 3 rates x degradation {off, on} = 7
lifetime simulations), run five ways —

* serial        (``workers=1``, no cache): the reference;
* parallel      (``workers=4``, no cache): grid fan-out over the pool;
* cache cold    (``workers=4``, empty cache): fan-out + populate;
* cache warm    (``workers=4``, same cache): pure hits;
* journal redo  (``workers=4``, same journal): crash-safe relaunch —
  every point replays from the append-only journal, zero re-executed;

**Big grid** (>= 64 points: 2 fault kinds x 16 rates x degradation
{off, on} + baseline), where per-point pool overhead used to erase the
parallel win (0.99x) — run three ways:

* serial;
* parallel, ``chunk_size=1``: the historical one-future-per-point path;
* parallel, adaptive chunking (the default): points are grouped into
  chunked pool submissions that amortize serialization/IPC;

plus a **service arm**: the same big grid submitted as a campaign job
and drained by worker processes through the shared journal/lease
scheduler (``repro serve``'s machinery), timed end to end and verified
bit-identical.  Results go to ``BENCH_campaign.json`` (grids) and
``BENCH_service.json`` (service arm) at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/run_campaign_bench.py

``REPRO_BENCH_WORKERS`` overrides the worker count,
``REPRO_BENCH_RATES`` (comma-separated) the standard fault-rate sweep,
``REPRO_BENCH_BIG_RATES`` the big grid's sweep, and
``REPRO_BENCH_SKIP_BIG=1`` skips the big grid + service arms entirely.
``REPRO_BENCH_MIN_PARALLEL_SPEEDUP`` (e.g. ``1.3``) turns the big
grid's chunked-parallel speedup into a hard gate — CI sets it on
multicore runners.

Note on parallel speedup: fan-out pays off with the >= 2 physical cores
of any normal dev box / CI runner; on a single-core container the pool
only adds process overhead, and the recorded numbers will honestly say
so (``cpu_count`` is part of the output).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import sys
import tempfile
import time

from bench_history import append_history
from repro.core import (
    AgingAwareFramework,
    FrameworkConfig,
    LifetimeConfig,
    ResultCache,
    RunJournal,
)
from repro.data import make_blobs
from repro.device import DeviceConfig
from repro.robustness import FaultCampaign, build_grid
from repro.training import SkewedTrainingConfig, TrainConfig, build_mlp
from repro.tuning import TuningConfig

SCENARIO = "st+at"
RATES = tuple(
    float(r)
    for r in os.environ.get("REPRO_BENCH_RATES", "0.005,0.01,0.02").split(",")
    if r.strip()
)
#: 16 rates x 2 kinds x degradation {off,on} + baseline = 65 points.
BIG_RATES = tuple(
    float(r)
    for r in os.environ.get(
        "REPRO_BENCH_BIG_RATES",
        ",".join(f"{0.004 + 0.001 * i:g}" for i in range(16)),
    ).split(",")
    if r.strip()
)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
SKIP_BIG = os.environ.get("REPRO_BENCH_SKIP_BIG", "") == "1"
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "0") or 0)


def make_framework() -> AgingAwareFramework:
    data = make_blobs(n_samples=400, n_classes=3, n_features=6, spread=0.4, seed=3)
    config = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=30, write_noise=0.1),
        train=TrainConfig(epochs=15),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=15),
            skew_epochs=8,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=30,
            tuning=TuningConfig(max_iterations=40),
        ),
        tune_samples=160,
        target_fraction=0.92,
    )
    return AgingAwareFramework(
        lambda seed: build_mlp(6, 3, hidden=(24,), seed=seed), data, config, seed=7
    )


def timed_run(points, **campaign_kwargs):
    campaign = FaultCampaign(make_framework(), scenario=SCENARIO, **campaign_kwargs)
    start = time.perf_counter()
    report = campaign.run(points)
    return report, time.perf_counter() - start


def per_minute(n_points: int, seconds: float) -> float:
    return round(60.0 * n_points / seconds, 2) if seconds else float("inf")


def standard_grid_arms(repo_root: pathlib.Path) -> dict:
    points = build_grid(kinds=("stuck_at",), rates=RATES, window=1)

    serial, t_serial = timed_run(points, workers=1)
    parallel, t_parallel = timed_run(points, workers=WORKERS)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        cold, t_cold = timed_run(points, workers=WORKERS, cache=cache)
        warm, t_warm = timed_run(points, workers=WORKERS, cache=cache)
        cache_stats = {"hits": cache.hits, "misses": cache.misses}

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = pathlib.Path(tmp) / "campaign.journal.jsonl"
        jfirst, t_jcold = timed_run(
            points, workers=WORKERS, journal=RunJournal(journal_path)
        )
        relaunch_journal = RunJournal(journal_path)
        jredo, t_jredo = timed_run(points, workers=WORKERS, journal=relaunch_journal)
        journal_stats = {
            "relaunch_skipped": relaunch_journal.skipped,
            "relaunch_reexecuted": len(points) - relaunch_journal.skipped,
        }

    reports = [serial, parallel, cold, warm, jfirst, jredo]
    identical = all(r.to_dict() == serial.to_dict() for r in reports[1:])

    return {
        "grid_points": len(points),
        "fault_rates": list(RATES),
        "serial_seconds": round(t_serial, 3),
        "parallel_workers": WORKERS,
        "parallel_seconds": round(t_parallel, 3),
        "cache_cold_seconds": round(t_cold, 3),
        "cache_warm_seconds": round(t_warm, 3),
        "journal_cold_seconds": round(t_jcold, 3),
        "journal_relaunch_seconds": round(t_jredo, 3),
        "points_per_minute": {
            "serial": per_minute(len(points), t_serial),
            "parallel": per_minute(len(points), t_parallel),
            "cache_warm": per_minute(len(points), t_warm),
        },
        "speedup_parallel_vs_serial": round(t_serial / t_parallel, 2),
        "speedup_warm_vs_serial": round(t_serial / t_warm, 2),
        "reports_identical_across_modes": identical,
        "cache": cache_stats,
        "journal": journal_stats,
        "lifetimes": {r.point: r.lifetime_applications for r in serial.records},
    }


def big_grid_arms() -> dict:
    """Chunked vs unchunked pool submission on a >= 64-point grid."""
    points = build_grid(kinds=("stuck_at", "drift"), rates=BIG_RATES, window=1)
    serial, t_serial = timed_run(points, workers=1)
    unchunked, t_unchunked = timed_run(points, workers=WORKERS, chunk_size=1)
    chunked, t_chunked = timed_run(points, workers=WORKERS, chunk_size=None)
    identical = (
        unchunked.to_dict() == serial.to_dict()
        and chunked.to_dict() == serial.to_dict()
    )
    return {
        "grid_points": len(points),
        "serial_seconds": round(t_serial, 3),
        "parallel_workers": WORKERS,
        "unchunked_seconds": round(t_unchunked, 3),
        "chunked_seconds": round(t_chunked, 3),
        "speedup_unchunked_vs_serial": round(t_serial / t_unchunked, 2),
        "speedup_chunked_vs_serial": round(t_serial / t_chunked, 2),
        "speedup_chunked_vs_unchunked": round(t_unchunked / t_chunked, 2),
        "reports_identical_across_modes": identical,
        "serial_reference": serial.to_dict(),
    }


def service_arm(repo_root: pathlib.Path, serial_reference: dict) -> dict:
    """The same big grid drained by worker processes via the job store."""
    from repro.service import CampaignJobSpec, JobStore, worker_main

    # blobs-mini (full) is this benchmark's workload as a preset: the
    # framework configs are identical, so the content-hash point keys
    # match the direct FaultCampaign arms exactly.
    spec = CampaignJobSpec(
        preset="blobs-mini",
        fast=False,
        kinds=("stuck_at", "drift"),
        rates=BIG_RATES,
        window=1,
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = JobStore(tmp, lease_ttl=120.0)
        start = time.perf_counter()
        job_id = store.submit(spec)
        procs = [
            multiprocessing.Process(
                target=worker_main,
                kwargs={
                    "jobs_root": tmp,
                    "drain": True,
                    "worker_id": f"bench-w{i}",
                    "lease_ttl": 120.0,
                    "use_cache": False,
                },
            )
            for i in range(WORKERS)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        result = store.result(job_id)
        elapsed = time.perf_counter() - start
        status = store.status(job_id)
        leases = status.leases
    return {
        "benchmark": "campaign service: job store + lease scheduler, "
        "multi-process drain (big grid)",
        "grid_points": status.total,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "service_seconds": round(elapsed, 3),
        "points_per_minute": per_minute(status.total, elapsed),
        "chunks": leases,
        "report_identical_to_serial": result == serial_reference,
    }


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent

    payload = {
        "benchmark": f"stuck-at fault campaign over {SCENARIO} "
        "(miniature blobs workload)",
        "cpu_count": os.cpu_count(),
        "standard_grid": standard_grid_arms(repo_root),
    }
    ok = payload["standard_grid"]["reports_identical_across_modes"]
    if payload["standard_grid"]["journal"]["relaunch_reexecuted"]:
        print("ERROR: journal relaunch re-executed points", file=sys.stderr)
        ok = False

    service_payload = None
    if not SKIP_BIG:
        big = big_grid_arms()
        serial_reference = big.pop("serial_reference")
        payload["big_grid"] = big
        ok = ok and big["reports_identical_across_modes"]
        service_payload = service_arm(repo_root, serial_reference)
        ok = ok and service_payload["report_identical_to_serial"]
        if MIN_SPEEDUP and big["speedup_chunked_vs_serial"] < MIN_SPEEDUP:
            print(
                f"ERROR: chunked parallel speedup "
                f"{big['speedup_chunked_vs_serial']}x < required "
                f"{MIN_SPEEDUP}x on the big grid",
                file=sys.stderr,
            )
            ok = False

    (repo_root / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(json.dumps(payload, indent=2))
    append_history(
        repo_root,
        "campaign",
        {
            "speedup_chunked_vs_serial": payload.get("big_grid", {}).get(
                "speedup_chunked_vs_serial"
            ),
            "reports_identical": payload["standard_grid"][
                "reports_identical_across_modes"
            ],
        },
    )
    if service_payload is not None:
        (repo_root / "BENCH_service.json").write_text(
            json.dumps(service_payload, indent=2) + "\n"
        )
        print(json.dumps(service_payload, indent=2))
    if not ok:
        print("ERROR: benchmark validation failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
