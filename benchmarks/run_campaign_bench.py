"""Measure fault-campaign throughput: serial vs parallel, cold vs warm.

Runs a stuck-at campaign grid (baseline + 3 rates x degradation
{off, on} = 7 lifetime simulations) over the miniature blobs workload
four ways —

* serial        (``workers=1``, no cache): the reference;
* parallel      (``workers=4``, no cache): grid fan-out over the pool;
* cache cold    (``workers=4``, empty cache): fan-out + populate;
* cache warm    (``workers=4``, same cache): pure hits;
* journal redo  (``workers=4``, same journal): crash-safe relaunch —
  every point replays from the append-only journal, zero re-executed;

— verifies every mode produces an identical ``SurvivabilityReport``,
and writes throughput (grid points per minute) to
``BENCH_campaign.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/run_campaign_bench.py

``REPRO_BENCH_WORKERS`` overrides the parallel arm's worker count and
``REPRO_BENCH_RATES`` (comma-separated) the fault-rate sweep — CI runs
a tiny 2-worker grid through the same script.

Note on parallel speedup: fan-out pays off with the >= 2 physical cores
of any normal dev box / CI runner; on a single-core container the pool
only adds process overhead, and the recorded numbers will honestly say
so (``cpu_count`` is part of the output).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time

from repro.core import (
    AgingAwareFramework,
    FrameworkConfig,
    LifetimeConfig,
    ResultCache,
    RunJournal,
)
from repro.data import make_blobs
from repro.device import DeviceConfig
from repro.robustness import FaultCampaign, build_grid
from repro.training import SkewedTrainingConfig, TrainConfig, build_mlp
from repro.tuning import TuningConfig

SCENARIO = "st+at"
RATES = tuple(
    float(r)
    for r in os.environ.get("REPRO_BENCH_RATES", "0.005,0.01,0.02").split(",")
    if r.strip()
)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))


def make_framework() -> AgingAwareFramework:
    data = make_blobs(n_samples=400, n_classes=3, n_features=6, spread=0.4, seed=3)
    config = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=30, write_noise=0.1),
        train=TrainConfig(epochs=15),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=15),
            skew_epochs=8,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=30,
            tuning=TuningConfig(max_iterations=40),
        ),
        tune_samples=160,
        target_fraction=0.92,
    )
    return AgingAwareFramework(
        lambda seed: build_mlp(6, 3, hidden=(24,), seed=seed), data, config, seed=7
    )


def timed_run(points, **campaign_kwargs):
    campaign = FaultCampaign(make_framework(), scenario=SCENARIO, **campaign_kwargs)
    start = time.perf_counter()
    report = campaign.run(points)
    return report, time.perf_counter() - start


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    points = build_grid(kinds=("stuck_at",), rates=RATES, window=1)

    serial, t_serial = timed_run(points, workers=1)
    parallel, t_parallel = timed_run(points, workers=WORKERS)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        cold, t_cold = timed_run(points, workers=WORKERS, cache=cache)
        warm, t_warm = timed_run(points, workers=WORKERS, cache=cache)
        cache_stats = {"hits": cache.hits, "misses": cache.misses}

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = pathlib.Path(tmp) / "campaign.journal.jsonl"
        jfirst, t_jcold = timed_run(
            points, workers=WORKERS, journal=RunJournal(journal_path)
        )
        relaunch_journal = RunJournal(journal_path)
        jredo, t_jredo = timed_run(points, workers=WORKERS, journal=relaunch_journal)
        journal_stats = {
            "relaunch_skipped": relaunch_journal.skipped,
            "relaunch_reexecuted": len(points) - relaunch_journal.skipped,
        }

    reports = [serial, parallel, cold, warm, jfirst, jredo]
    identical = all(r.to_dict() == serial.to_dict() for r in reports[1:])

    def per_minute(seconds: float) -> float:
        return round(60.0 * len(points) / seconds, 2) if seconds else float("inf")

    payload = {
        "benchmark": f"stuck-at fault campaign over {SCENARIO} "
        "(miniature blobs workload)",
        "grid_points": len(points),
        "fault_rates": list(RATES),
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(t_serial, 3),
        "parallel_workers": WORKERS,
        "parallel_seconds": round(t_parallel, 3),
        "cache_cold_seconds": round(t_cold, 3),
        "cache_warm_seconds": round(t_warm, 3),
        "journal_cold_seconds": round(t_jcold, 3),
        "journal_relaunch_seconds": round(t_jredo, 3),
        "points_per_minute": {
            "serial": per_minute(t_serial),
            "parallel": per_minute(t_parallel),
            "cache_warm": per_minute(t_warm),
        },
        "speedup_parallel_vs_serial": round(t_serial / t_parallel, 2),
        "speedup_warm_vs_serial": round(t_serial / t_warm, 2),
        "reports_identical_across_modes": identical,
        "cache": cache_stats,
        "journal": journal_stats,
        "lifetimes": {
            r.point: r.lifetime_applications for r in serial.records
        },
    }
    out = repo_root / "BENCH_campaign.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if not identical:
        print("ERROR: modes disagree", file=sys.stderr)
        return 1
    if journal_stats["relaunch_reexecuted"]:
        print("ERROR: journal relaunch re-executed points", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
