"""Table I (lifetime columns): lifetime of T+T vs ST+T vs ST+AT.

The paper's headline: relative to traditional training + tuning (T+T),
skewed training (ST+T) extends lifetime 6x/7x and adding aging-aware
mapping (ST+AT) reaches 8x/11x (LeNet/Cifar10 and VGG/Cifar100).

Absolute application counts here are compressed (see DESIGN.md §2) and
single-run lifetimes are heavy-tailed, so the LeNet-role comparison
takes the median of three independent hardware instantiations per
scenario; the (much slower) VGG-role comparison runs one instantiation.
The assertions pin the *shape*: ST+T beats T+T by a clear multiple and
ST+AT does not fall below ST+T.
"""

from repro.analysis import render_table

SCENARIOS = ("t+t", "st+t", "st+at")


def _render(workload, results, spreads=None):
    base = results["t+t"].lifetime_applications
    rows = []
    for key in SCENARIOS:
        r = results[key]
        ratio = r.lifetime_applications / base if base else float("inf")
        rows.append(
            [
                key.upper(),
                r.lifetime_applications,
                spreads[key] if spreads else "-",
                len(r.windows),
                "yes" if r.failed else "no (horizon)",
                f"{ratio:.1f}x",
            ]
        )
    return render_table(
        ["scenario", "lifetime (apps, median)", "repeat spread", "windows", "failed", "vs T+T"],
        rows,
        title=f"Table I (lifetime) — {workload}",
    )


def test_table1_lifetime_lenet(benchmark, lenet_lab, report):
    repeats = 3

    def run():
        medians = {k: lenet_lab.median_result(k, repeats) for k in SCENARIOS}
        spreads = {
            k: "{}-{}".format(
                min(lenet_lab.result(k, r).lifetime_applications for r in range(repeats)),
                max(lenet_lab.result(k, r).lifetime_applications for r in range(repeats)),
            )
            for k in SCENARIOS
        }
        return medians, spreads

    medians, spreads = benchmark.pedantic(run, rounds=1, iterations=1)
    report("table1_lifetime_lenet", _render(lenet_lab.dataset.name, medians, spreads))
    tt = medians["t+t"].lifetime_applications
    stt = medians["st+t"].lifetime_applications
    stat = medians["st+at"].lifetime_applications
    assert stt > 1.3 * tt, "skewed training must extend the median lifetime"
    assert stat >= 0.9 * stt, "aging-aware mapping must not reduce the ST lifetime"


def test_table1_lifetime_vgg(benchmark, vgg_lab, report):
    def run():
        return {k: vgg_lab.result(k) for k in SCENARIOS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("table1_lifetime_vgg", _render(vgg_lab.dataset.name, results))
    tt = results["t+t"].lifetime_applications
    stt = results["st+t"].lifetime_applications
    stat = results["st+at"].lifetime_applications
    assert stt >= 1.2 * tt
    # Single-instantiation lifetimes are heavy-tailed; the hard claim
    # on the VGG role is that the full framework clearly beats the
    # baseline, and ST+AT stays in ST+T's league (the LeNet-role bench
    # holds the tighter median-of-3 ordering).
    assert stat >= 1.5 * tt
    assert stat >= 0.7 * stt
