"""Fig. 10: online-tuning iterations vs number of applications.

The paper's plot: per maintenance cycle, the iteration count stays low
for a long stretch and then rises suddenly — the crossbar is failing.
The knee moves right for ST+T and further right (or equal) for ST+AT.
"""

from repro.analysis import ascii_series, iteration_knee, render_table

SCENARIOS = ("t+t", "st+t", "st+at")


def compute(lab):
    return {key: lab.result(key) for key in SCENARIOS}


def test_fig10_tuning_trajectory(benchmark, lenet_lab, report):
    results = benchmark.pedantic(lambda: compute(lenet_lab), rounds=1, iterations=1)
    parts = []
    knees = {}
    for key in SCENARIOS:
        trace = results[key].iteration_trace()
        knees[key] = iteration_knee(trace)
        parts.append(
            ascii_series(
                [float(v) for v in trace],
                height=8,
                label=f"{key.upper()} — tuning iterations per window "
                f"(knee at window {knees[key]}/{len(trace)})",
            )
        )
        parts.append("")
    parts.append(
        render_table(
            ["scenario", "windows survived", "knee window", "final iterations"],
            [
                [
                    k.upper(),
                    results[k].windows_survived,
                    knees[k],
                    results[k].iteration_trace()[-1],
                ]
                for k in SCENARIOS
            ],
        )
    )
    report("fig10_tuning_trajectory", "\n".join(parts))

    # Shape: every scenario ends in a budget-exhausting spike...
    for key in SCENARIOS:
        trace = results[key].iteration_trace()
        assert trace[-1] == max(trace), "failure window has the iteration spike"
    # ...and the knee moves right with the paper's techniques.
    assert knees["st+t"] > knees["t+t"]
    assert knees["st+at"] >= knees["st+t"] * 0.9
