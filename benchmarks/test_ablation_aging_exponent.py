"""Ablation A5: the current-acceleration exponent of aging.

The entire skewed-training benefit flows through one physical
assumption: how strongly per-pulse endurance damage accelerates with
programming current (``DeviceConfig.current_aging_exponent``; stress ∝
(R_min/R)^γ).  This ablation sweeps γ and measures the ST+T vs T+T
lifetime ratio — at γ = 0 (current-independent aging) the skewed
technique should buy nothing; the ratio must grow with γ.  This is the
falsification experiment for the reproduction's headline mechanism, and
it explains why our measured Table-I multiples differ from the paper's
(see EXPERIMENTS.md).
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
from repro.core.sweep import Sweep
from repro.mapping.network import MappedNetwork, clone_model
from repro.tuning import TuningConfig

GAMMAS = (0.0, 1.0, 2.0, 3.0)


def run(lab, workers=1):
    cfg = lab.preset.framework_config
    x = lab.dataset.x_train[:192]
    y = lab.dataset.y_train[:192]
    # Train in the parent before fanning out so worker processes inherit
    # the cached models instead of each retraining from scratch.
    for skewed in (False, True):
        lab.framework.trained_model(skewed)

    def evaluate(gamma, rng):
        device = replace(cfg.device, current_aging_exponent=float(gamma))
        lifetimes = {}
        for skewed in (False, True):
            model = lab.framework.trained_model(skewed)
            network = MappedNetwork(
                clone_model(model), device, trace_block=cfg.trace_block,
                seed=int(rng.integers(0, 2**31)),
            )
            target = 0.93 * lab.framework.software_accuracy(skewed)
            lifetime_cfg = LifetimeConfig(
                apps_per_window=cfg.lifetime.apps_per_window,
                drift_magnitude=cfg.lifetime.drift_magnitude,
                max_windows=250,
                tuning=TuningConfig(
                    target_accuracy=target,
                    max_iterations=cfg.lifetime.tuning.max_iterations,
                    patience_evals=cfg.lifetime.tuning.patience_evals,
                ),
            )
            sim = LifetimeSimulator(
                network, x, y, config=lifetime_cfg, seed=int(rng.integers(0, 2**31))
            )
            lifetimes[skewed] = sim.run("ablation").lifetime_applications
        return {
            "tt_lifetime": lifetimes[False],
            "stt_lifetime": lifetimes[True],
            "ratio": lifetimes[True] / max(lifetimes[False], 1),
        }

    sweep = Sweep("gamma", evaluate, seed=2024)
    return sweep.run(GAMMAS, workers=workers)


def test_ablation_aging_exponent(benchmark, lenet_lab, report, bench_workers):
    result = benchmark.pedantic(
        lambda: run(lenet_lab, workers=bench_workers), rounds=1, iterations=1
    )
    report(
        "ablation_aging_exponent",
        render_table(
            ["gamma", "T+T lifetime", "ST+T lifetime", "ST+T / T+T"],
            [
                [p.value, f"{p.metrics['tt_lifetime']:.0f}",
                 f"{p.metrics['stt_lifetime']:.0f}", f"{p.metrics['ratio']:.2f}x"]
                for p in result.successful()
            ],
            title="Ablation A5 — current-acceleration exponent of aging",
        ),
    )
    ratios = {p.value: p.metrics["ratio"] for p in result.successful()}
    # With current-independent aging only the quantization benefit
    # remains — a small residual multiple...
    assert ratios[0.0] < 2.0
    # ...and any current acceleration unlocks the full mechanism.
    # (Measured shape: the ratio peaks around gamma 1-2 and softens at
    # extreme acceleration, where the failure mode shifts to tuning-hot
    # devices that both scenarios share — see EXPERIMENTS.md.)
    assert ratios[1.0] > ratios[0.0]
    assert ratios[2.0] > ratios[0.0]
