"""Measure the kernel-layer speedups and prove result identity.

Three parts (see DESIGN.md §9 and ISSUE 4):

* **batch** — exact IR-drop evaluation on a single conductance state
  (default 64x64, batch 32).  The legacy path assembled and
  sparse-factorized the full nodal system once **per input vector**;
  the kernel path factorizes once and answers the whole batch with one
  dense transfer product (:class:`repro.core.kernels.NodalSolver`).
  Target: >= 5x.  Batched, per-vector, and cached solves through the
  new kernels are asserted **bit-identical** (the einsum reduction is
  row-stable); the legacy ``spsolve`` reference is compared at machine
  precision (different factorization internals round differently).
* **reads** — a programmed crossbar answering a read-heavy workload
  with the state-version caches enabled vs disabled; outputs asserted
  bit-identical, speedup recorded.
* **e2e** — one miniature ``t+t`` lifetime run under the vectorized
  hot loop (batched ``program_pulses`` sweeps, read-reuse memoization,
  DESIGN.md §11) vs the ``REPRO_SCALAR_TUNER`` reference path, whose
  pulse update is the per-device Python transcription of Eq. (5) —
  the loop the paper's controller would run one cell at a time.
  ``LifetimeResult.to_dict()`` asserted **exactly equal** (same
  accuracy traces, pulse counts, window records), wall-clock speedup
  recorded.  ISSUE 6 targets >= 5x on the default configuration;
  ``REPRO_KBENCH_MIN_E2E_SPEEDUP`` (nightly sets 3.0) turns the
  recorded speedup into a hard gate.

Writes ``BENCH_kernels.json`` at the repository root and exits nonzero
if any mode diverges (or an enabled speedup gate fails).

Usage::

    PYTHONPATH=src python benchmarks/run_kernel_bench.py

Environment overrides (CI smoke uses a reduced configuration):
``REPRO_KBENCH_SIZE`` (array side, default 64), ``REPRO_KBENCH_BATCH``
(default 32), ``REPRO_KBENCH_REPS`` (timing repetitions, default 5),
``REPRO_KBENCH_WINDOWS`` (e2e lifetime horizon, default 12),
``REPRO_KBENCH_MIN_E2E_SPEEDUP`` (fail below this e2e speedup;
default 0 = report only).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np
from scipy.sparse.linalg import spsolve

from bench_history import append_history

from repro.core import (
    AgingAwareFramework,
    FrameworkConfig,
    LifetimeConfig,
    set_cache_enabled,
    set_vectorized_enabled,
)
from repro.core.kernels import NodalSolver
from repro.crossbar import Crossbar
from repro.crossbar.parasitics import ParasiticModel, _assemble_nodal_system
from repro.data import make_blobs
from repro.device import DeviceConfig
from repro.training import SkewedTrainingConfig, TrainConfig, build_mlp
from repro.tuning import TuningConfig

SIZE = int(os.environ.get("REPRO_KBENCH_SIZE", "64"))
BATCH = int(os.environ.get("REPRO_KBENCH_BATCH", "32"))
REPS = int(os.environ.get("REPRO_KBENCH_REPS", "5"))
WINDOWS = int(os.environ.get("REPRO_KBENCH_WINDOWS", "12"))
MIN_E2E_SPEEDUP = float(os.environ.get("REPRO_KBENCH_MIN_E2E_SPEEDUP", "0"))
R_WIRE = 2.0


def legacy_exact_vmm(g: np.ndarray, v_batch: np.ndarray, r_wire: float) -> np.ndarray:
    """The pre-kernel exact path: assemble + spsolve per input vector."""
    rows, cols = g.shape
    g_wire = 1.0 / r_wire
    bottom = rows * cols + (rows - 1) * cols + np.arange(cols)
    out = []
    for v in v_batch:
        matrix, rhs = _assemble_nodal_system(g, v, g_wire)
        voltages = spsolve(matrix, rhs)
        out.append(voltages[bottom] * g_wire)
    return np.stack(out)


def bench_batch() -> dict:
    rng = np.random.default_rng(42)
    g = 1.0 / rng.uniform(1e3, 1e4, size=(SIZE, SIZE))
    v_batch = rng.uniform(0.0, 1.0, size=(BATCH, SIZE))

    # Legacy: factorize per vector.
    t0 = time.perf_counter()
    for _ in range(REPS):
        legacy = legacy_exact_vmm(g, v_batch, R_WIRE)
    t_legacy = (time.perf_counter() - t0) / REPS

    # Kernel, cold: build (assemble + factorize + transfer) every rep.
    t0 = time.perf_counter()
    for _ in range(REPS):
        batched = NodalSolver(g, R_WIRE).solve(v_batch)
    t_cold = (time.perf_counter() - t0) / REPS

    # Kernel, cached: factorization reused across reads (the state
    # between reprogramming events).
    solver = NodalSolver(g, R_WIRE)
    t0 = time.perf_counter()
    for _ in range(REPS):
        cached = solver.solve(v_batch)
    t_warm = (time.perf_counter() - t0) / REPS

    serial = np.stack([solver.solve(v) for v in v_batch])

    bitwise = (
        np.array_equal(batched, cached)
        and np.array_equal(batched, serial)
    )
    denom = np.maximum(np.abs(legacy), 1e-30)
    max_rel_diff = float(np.max(np.abs(batched - legacy) / denom))

    return {
        "array": f"{SIZE}x{SIZE}",
        "batch": BATCH,
        "repetitions": REPS,
        "legacy_per_vector_seconds": round(t_legacy, 5),
        "kernel_cold_seconds": round(t_cold, 5),
        "kernel_cached_seconds": round(t_warm, 5),
        "speedup_cold_vs_legacy": round(t_legacy / t_cold, 2),
        "speedup_cached_vs_legacy": round(t_legacy / t_warm, 2),
        "bitwise_identical_batched_serial_cached": bitwise,
        "max_rel_diff_vs_legacy_spsolve": max_rel_diff,
    }


def read_workload(xbar: Crossbar, v_batch: np.ndarray, model: ParasiticModel):
    """A read-heavy episode: ideal reads + exact IR-drop reads."""
    outs = [xbar.vmm(v_batch)]
    for _ in range(8):
        outs.append(xbar.vmm_ir_drop(v_batch, model, exact=True))
    outs.append(xbar.conductances().copy())
    return outs


def bench_reads() -> dict:
    model = ParasiticModel(r_wire=R_WIRE)
    rng = np.random.default_rng(7)
    v_batch = rng.uniform(0.0, 1.0, size=(BATCH, SIZE))
    targets = rng.uniform(2e3, 8e3, size=(SIZE, SIZE))

    def run(enabled: bool):
        prior = set_cache_enabled(enabled)
        try:
            xbar = Crossbar(SIZE, SIZE, DeviceConfig(), seed=11)
            xbar.program(targets)
            start = time.perf_counter()
            outs = []
            for _ in range(REPS):
                outs = read_workload(xbar, v_batch, model)
            return outs, (time.perf_counter() - start) / REPS
        finally:
            set_cache_enabled(prior)

    outs_on, t_on = run(True)
    outs_off, t_off = run(False)
    identical = all(
        np.array_equal(a, b) for a, b in zip(outs_on, outs_off)
    )
    return {
        "workload": "1 ideal vmm + 8 exact IR-drop vmms + 1 conductance "
        f"read, batch {BATCH}, per repetition",
        "repetitions": REPS,
        "cache_on_seconds": round(t_on, 5),
        "cache_off_seconds": round(t_off, 5),
        "speedup_cache_on_vs_off": round(t_off / t_on, 2),
        "bitwise_identical": identical,
    }


def make_framework() -> AgingAwareFramework:
    """A tuning-heavy miniature framework for the e2e arm.

    The configuration is chosen so the online tuner actually works
    for its windows (drift, quantization and aging pressure keep the
    mapped accuracy below target at each remap) and each sweep selects
    a large device fraction (low ``threshold``, ``target_fraction=1``),
    because the scalar reference cost scales with the number of pulsed
    devices while the shared floor (evals, gradients, remaps) does not.
    """
    data = make_blobs(n_samples=400, n_classes=4, n_features=16, spread=2.0, seed=3)
    config = FrameworkConfig(
        device=DeviceConfig(n_levels=6, pulses_to_collapse=150, write_noise=0.15),
        train=TrainConfig(epochs=15),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=15),
            skew_epochs=8,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=WINDOWS,
            drift_magnitude=0.25,
            tuning=TuningConfig(
                max_iterations=100,
                eval_every=8,
                batch_size=24,
                threshold=0.01,
            ),
        ),
        tune_samples=48,
        target_fraction=1.0,
    )
    return AgingAwareFramework(
        lambda seed: build_mlp(16, 4, hidden=(96, 48), seed=seed), data, config, seed=7
    )


def bench_e2e() -> dict:
    def run(vectorized: bool):
        """Best-of-REPS wall clock for one full scenario run.

        ``run_scenario`` is deterministic for a fixed repeat index, so
        every repetition produces the identical result; the minimum
        time is the standard noise-robust estimate.  Training happens
        outside the timed region — both legs measure only the mapped
        lifetime loop (map → tune → evaluate per window).
        """
        prior = set_vectorized_enabled(vectorized)
        try:
            framework = make_framework()
            framework.trained_model(False)  # train outside the timed region
            best = float("inf")
            result = None
            for _ in range(REPS):
                start = time.perf_counter()
                result = framework.run_scenario("t+t")
                best = min(best, time.perf_counter() - start)
            return result, best
        finally:
            set_vectorized_enabled(prior)

    result_scalar, t_scalar = run(False)
    result_vec, t_vec = run(True)
    identical = result_scalar.to_dict() == result_vec.to_dict()
    return {
        "workload": f"t+t lifetime run, blobs 16f/4c, mlp (96, 48), "
        f"{WINDOWS} windows",
        "repetitions": REPS,
        "scalar_seconds": round(t_scalar, 4),
        "vectorized_seconds": round(t_vec, 4),
        "speedup_vectorized_vs_scalar": round(t_scalar / t_vec, 2),
        "tuning_iterations": sum(
            w.tuning_iterations for w in result_vec.windows
        ),
        "windows_run": len(result_vec.windows),
        "lifetime_applications": result_vec.lifetime_applications,
        "results_identical": identical,
    }


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent

    batch = bench_batch()
    reads = bench_reads()
    e2e = bench_e2e()

    identical = (
        batch["bitwise_identical_batched_serial_cached"]
        and reads["bitwise_identical"]
        and e2e["results_identical"]
    )
    payload = {
        "benchmark": "hot-path kernels: cached factorization, batched nodal "
        "solves, state-versioned conductance caching, vectorized lifetime "
        "hot loop",
        "cpu_count": os.cpu_count(),
        "exact_ir_drop_batch": batch,
        "cached_read_workload": reads,
        "end_to_end_lifetime": e2e,
        "results_identical_across_modes": identical,
        "target_batch_speedup": 5.0,
        "meets_batch_speedup_target": batch["speedup_cached_vs_legacy"] >= 5.0,
        "target_e2e_speedup": 5.0,
        "meets_e2e_speedup_target": e2e["speedup_vectorized_vs_scalar"] >= 5.0,
    }
    out = repo_root / "BENCH_kernels.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    append_history(
        repo_root,
        "kernels",
        {
            "speedup_cached_vs_legacy": batch["speedup_cached_vs_legacy"],
            "speedup_cache_on_vs_off": reads["speedup_cache_on_vs_off"],
            "speedup_vectorized_vs_scalar": e2e["speedup_vectorized_vs_scalar"],
            "results_identical": identical,
        },
    )
    if not identical:
        print("ERROR: kernel modes disagree", file=sys.stderr)
        return 1
    if MIN_E2E_SPEEDUP > 0 and e2e["speedup_vectorized_vs_scalar"] < MIN_E2E_SPEEDUP:
        print(
            "ERROR: end-to-end lifetime speedup "
            f"{e2e['speedup_vectorized_vs_scalar']}x below the "
            f"REPRO_KBENCH_MIN_E2E_SPEEDUP={MIN_E2E_SPEEDUP}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
