"""Extension: single-device Eq. (4) mapping vs differential pairs.

Most fabricated accelerators store weights as conductance *pairs*
(w ∝ g+ − g−).  The pair representation parks one arm of every weight
at g_min, so its programmed state intrinsically draws less current —
it enjoys part of the skewed-training benefit at the cost of 2× devices.
This bench quantifies: post-map accuracy, mean per-pulse stress of the
programmed state, and device count, for both representations and both
training styles.
"""

import numpy as np

from repro.analysis import render_table
from repro.device import DeviceConfig
from repro.mapping import MappedNetwork
from repro.mapping.differential import DifferentialMappedNetwork
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import clone_model


def run(lab):
    x = lab.dataset.x_test
    y = lab.dataset.y_test
    device = DeviceConfig()
    rows = []
    for skewed in (False, True):
        model = lab.framework.trained_model(skewed)
        style = "skewed" if skewed else "baseline"

        single = MappedNetwork(clone_model(model), device, seed=61)
        single.map_network(FreshMapper())
        r_single = np.concatenate(
            [m.tiles.resistances().ravel() for m in single.layers]
        )
        rows.append(
            (
                style,
                "single (Eq. 4)",
                single.score(x, y),
                float(np.mean(device.stress_factor(r_single))),
                int(r_single.size),
            )
        )

        diff = DifferentialMappedNetwork(clone_model(model), device, seed=61)
        diff.map_network()
        rows.append(
            (
                style,
                "differential pair",
                diff.score(x, y),
                diff.mean_stress_factor(),
                2 * int(r_single.size),
            )
        )
    return rows


def test_ext_differential(benchmark, lenet_lab, report):
    rows = benchmark.pedantic(lambda: run(lenet_lab), rounds=1, iterations=1)
    report(
        "ext_differential",
        render_table(
            ["training", "representation", "post-map acc", "mean stress", "devices"],
            [[t, r, f"{a:.3f}", f"{s:.3f}", d] for t, r, a, s, d in rows],
            title="Extension — single-device vs differential-pair mapping",
        ),
    )
    data = {(t, r): (a, s) for t, r, a, s, _d in rows}
    # The pair representation programs with less current for the
    # baseline-trained network (its free skew)...
    assert (
        data[("baseline", "differential pair")][1]
        < data[("baseline", "single (Eq. 4)")][1]
    )
    # ...and both representations classify competently.
    for key, (acc, _s) in data.items():
        assert acc > 0.5, key
