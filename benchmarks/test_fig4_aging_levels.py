"""Fig. 4: the aged resistance window and usable levels vs accumulated
programming time.

Both bounds decrease; the upper bound falls faster, so quantized levels
disappear from the top and the usable level count decreases stepwise —
eventually a target at a high level "can only end up" at a low one.
"""

import numpy as np

from repro.analysis import ascii_series, render_table
from repro.device import DeviceConfig


def sweep(n_points=40):
    cfg = DeviceConfig(pulses_to_collapse=1e4, n_levels=8)
    aging = cfg.make_aging_model()
    grid = cfg.make_level_grid()
    pulses = np.linspace(0, 1.2e4, n_points)
    rows = []
    for p in pulses:
        t = p * cfg.pulse_width
        lo, hi = aging.aged_bounds(cfg.r_min, cfg.r_max, cfg.temperature, float(t))
        rows.append((float(p), float(lo), float(hi), int(grid.usable_count(lo, hi))))
    return cfg, grid, rows


def test_fig4_aging_levels(benchmark, report):
    cfg, grid, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    upper = [r[2] for r in rows]
    levels = [r[3] for r in rows]
    table = render_table(
        ["pulses", "R_aged_min", "R_aged_max", "usable levels"],
        [[f"{r[0]:.0f}", f"{r[1]:.0f}", f"{r[2]:.0f}", r[3]] for r in rows[::5]],
        title="Fig. 4 — aged window vs accumulated programming (8-level device)",
    )
    plot = ascii_series(upper, label="R_aged_max vs pulses")
    report("fig4_aging_levels", table + "\n\n" + plot)

    # Shape: monotone bounds, stepwise level loss from 8 down.
    assert all(b >= a for a, b in zip(upper[1:], upper[:-1]))
    assert levels[0] == 8
    assert levels[-1] < 8
    assert sorted(levels, reverse=True) == levels
    # Fig. 4's example: late in life only a few levels remain.
    assert levels[-1] <= 3

    # The "Level 7 ends up at Level 2"-style clipping:
    lo, hi = cfg.make_aging_model().aged_bounds(
        cfg.r_min, cfg.r_max, cfg.temperature, 1.0e4 * cfg.pulse_width * 0.8
    )
    target_level_7 = grid.value_of(7)
    achieved = grid.quantize(target_level_7, lo, hi)
    assert achieved < target_level_7
