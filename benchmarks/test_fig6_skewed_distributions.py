"""Fig. 6: skewed weight mapping and quantization.

(a) skewed training pushes the weights towards small values (the low end
of the weight range), in contrast to Fig. 3(a); (b) the corresponding
resistance distribution concentrates at large resistances.  Bonus
assertion: the skewed network's quantization error is lower (the
denser-levels argument).
"""

import numpy as np

from repro.analysis import ascii_histogram, resistance_histogram, weight_histogram
from repro.device import DeviceConfig
from repro.mapping import LinearWeightMapping
from repro.mapping.quantize import quantization_error


def compute(lab):
    cfg = DeviceConfig()
    grid = cfg.make_level_grid()

    def bundle(model):
        w = model.all_weight_values()
        mapping = LinearWeightMapping.from_weights(w, cfg.g_min, cfg.g_max)
        return w, mapping, quantization_error(w, mapping, grid)

    return bundle(lab.baseline_model()), bundle(lab.skewed_model())


def relative_mass_position(w: np.ndarray) -> float:
    """Median position within [w_min, w_max]; small = mass at low end."""
    return float((np.median(w) - w.min()) / (w.max() - w.min()))


def test_fig6_skewed_distributions(benchmark, lenet_lab, report):
    (w_b, map_b, err_b), (w_s, map_s, err_s) = benchmark.pedantic(
        lambda: compute(lenet_lab), rounds=1, iterations=1
    )
    w_edges, w_counts = weight_histogram(w_s, bins=24)
    r_edges, r_counts = resistance_histogram(w_s, map_s, bins=24)
    parts = [
        "(a) skewed weight distribution (mass at the low end, long right tail):",
        ascii_histogram(w_edges, w_counts, width=40),
        "",
        "(b) corresponding resistance distribution (mass at large R):",
        ascii_histogram(r_edges / 1e3, r_counts, width=40, label="(kOhm bins)"),
        "",
        f"relative mass position  baseline={relative_mass_position(w_b):.2f}  "
        f"skewed={relative_mass_position(w_s):.2f}",
        f"weight-domain quantization RMS  baseline={err_b:.4f}  skewed={err_s:.4f}",
    ]
    report("fig6_skewed_distributions", "\n".join(parts))

    # Shape assertions:
    assert relative_mass_position(w_s) < relative_mass_position(w_b)
    # Resistance mass above midpoint (contrast with Fig. 3(b)).
    centers = 0.5 * (r_edges[:-1] + r_edges[1:])
    mean_r = np.average(centers, weights=r_counts)
    base_edges, base_counts = resistance_histogram(w_b, map_b, bins=24)
    base_centers = 0.5 * (base_edges[:-1] + base_edges[1:])
    assert mean_r > np.average(base_centers, weights=base_counts)
    # Denser levels at the mass location -> lower quantization error.
    assert err_s < err_b
