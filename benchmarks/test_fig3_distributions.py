"""Fig. 3: hardware mapping and quantization of a conventionally
trained network.

(a) trained weights are quasi-normal; (b) mapped resistances are skewed
towards low resistance (reciprocal of the conductance map); (c) mapped
conductance levels are non-uniform, dense at small conductances.
"""

import numpy as np

from repro.analysis import (
    ascii_histogram,
    resistance_histogram,
    summarize_distribution,
    weight_histogram,
)
from repro.device import DeviceConfig
from repro.mapping import LinearWeightMapping


def compute(lab):
    weights = lab.baseline_model().all_weight_values()
    cfg = DeviceConfig()
    mapping = LinearWeightMapping.from_weights(weights, cfg.g_min, cfg.g_max)
    grid = cfg.make_level_grid()
    return weights, mapping, grid


def test_fig3_distributions(benchmark, lenet_lab, report):
    weights, mapping, grid = benchmark.pedantic(
        lambda: compute(lenet_lab), rounds=1, iterations=1
    )
    summary = summarize_distribution(weights)

    w_edges, w_counts = weight_histogram(weights, bins=24)
    r_edges, r_counts = resistance_histogram(weights, mapping, bins=24)
    g_gaps = -np.diff(np.sort(grid.conductance_levels)[::-1])

    parts = [
        f"(a) trained weight distribution "
        f"(mean={summary.mean:+.3f}, skewness={summary.skewness:+.2f}):",
        ascii_histogram(w_edges, w_counts, width=40),
        "",
        "(b) mapped resistance distribution:",
        ascii_histogram(r_edges / 1e3, r_counts, width=40, label="(kOhm bins)"),
        "",
        "(c) conductance level gaps (uniform R levels -> non-uniform G):",
        f"    largest gap / smallest gap = "
        f"{np.max(np.abs(g_gaps)) / np.min(np.abs(g_gaps)):.1f}",
    ]
    report("fig3_distributions", "\n".join(parts))

    # Shape assertions:
    # (a) quasi-normal: near-zero mean, |skewness| small.
    assert abs(summary.skewness) < 0.8
    # (b) resistance mass sits below the range midpoint (Fig. 3b skew).
    centers = 0.5 * (r_edges[:-1] + r_edges[1:])
    mean_r = np.average(centers, weights=r_counts)
    assert mean_r < 0.5 * (r_edges[0] + r_edges[-1])
    # (c) conductance levels strongly non-uniform.
    assert np.max(np.abs(g_gaps)) > 5 * np.min(np.abs(g_gaps))
