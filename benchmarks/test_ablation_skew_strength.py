"""Ablation A4: skew strength (lambda1 sweep at fixed lambda2).

How does the left-side penalty trade accuracy against the properties
aging cares about?  Reported per lambda1: validation accuracy, median
mapped resistance (current reduction) and the mean per-pulse stress
factor of the mapped array (what the aging integral actually sees).
"""

import numpy as np

from repro.analysis import render_table
from repro.core import Sweep
from repro.device import DeviceConfig
from repro.mapping import MappedNetwork
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import clone_model
from repro.training import SkewedTrainingConfig, skewed_train

LAMBDA1S = (0.0, 5e-3, 2e-2, 5e-2, 1e-1)


def run(lab, workers=1):
    base = lab.baseline_model()  # trained in the parent before fan-out
    cfg = DeviceConfig()

    def evaluate(lam1, rng):
        if lam1 == 0.0:
            model = clone_model(base)
        else:
            model = clone_model(base)
            skewed_train(
                model,
                lab.dataset,
                SkewedTrainingConfig(
                    beta_scale=-1.0, lambda1=lam1, lambda2=min(1e-3, lam1),
                    skew_epochs=12,
                ),
                pretrained=True,
            )
        net = MappedNetwork(clone_model(model), cfg, seed=3)
        net.map_network(FreshMapper())
        targets = np.concatenate(
            [
                np.asarray(
                    m.mapping.weight_to_resistance(m.software_matrix())
                ).ravel()
                for m in net.layers
            ]
        )
        return {
            "val_acc": model.score(lab.dataset.x_test, lab.dataset.y_test),
            "median_r": float(np.median(targets)),
            "stress": float(np.mean(cfg.stress_factor(targets))),
        }

    sweep = Sweep("lambda1", evaluate, seed=2024)
    result = sweep.run(LAMBDA1S, fail_fast=True, workers=workers)
    return [
        (p.value, p.metrics["val_acc"], p.metrics["median_r"], p.metrics["stress"])
        for p in result.points
    ]


def test_ablation_skew_strength(benchmark, lenet_lab, report, bench_workers):
    rows = benchmark.pedantic(
        lambda: run(lenet_lab, workers=bench_workers), rounds=1, iterations=1
    )
    report(
        "ablation_skew_strength",
        render_table(
            ["lambda1", "val acc", "median mapped R", "mean stress factor"],
            [
                [f"{r[0]:g}", f"{r[1]:.3f}", f"{r[2]:.0f}", f"{r[3]:.3f}"]
                for r in rows
            ],
            title="Ablation A4 — skew strength (lambda2 = min(1e-3, lambda1))",
        ),
    )
    by_lam = {r[0]: r for r in rows}
    # Stress falls monotonically-ish with skew strength...
    assert by_lam[5e-2][3] < by_lam[0.0][3]
    assert by_lam[2e-2][3] < by_lam[0.0][3]
    # ...while the preset's operating point keeps accuracy.
    assert by_lam[5e-2][1] > by_lam[0.0][1] - 0.05
