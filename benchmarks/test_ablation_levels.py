"""Ablation A2: quantization level count (the paper cites 32- and
64-level devices).

Reported per level count: post-mapping accuracy (before tuning) and the
iterations online tuning needs to restore the target — for both the
baseline and the skewed network.  More levels help both, and the skewed
network's advantage is largest at coarse quantization (that is where
level placement matters).
"""

from repro.analysis import render_table
from repro.core import Sweep
from repro.device import DeviceConfig
from repro.mapping import MappedNetwork
from repro.mapping.network import clone_model
from repro.tuning import OnlineTuner, TuningConfig

LEVELS = (8, 16, 32, 64)


def run(lab, workers=1):
    x = lab.dataset.x_train[:192]
    y = lab.dataset.y_train[:192]
    # Train in the parent so worker processes inherit the cached models.
    for skewed in (False, True):
        lab.framework.trained_model(skewed)

    def evaluate(point, rng):
        skewed, n_levels = point
        model = lab.framework.trained_model(skewed)
        target = 0.9 * lab.framework.software_accuracy(skewed)
        cfg = DeviceConfig(n_levels=n_levels, pulses_to_collapse=1e5)
        net = MappedNetwork(clone_model(model), cfg, seed=7)
        net.map_network()
        premap = net.score(x, y)
        tuner = OnlineTuner(
            TuningConfig(target_accuracy=target, max_iterations=80), seed=8
        )
        result = tuner.tune(net, x, y)
        return {
            "premap": premap,
            "iterations": float(result.iterations),
            "converged": float(result.converged),
        }

    sweep = Sweep("training/levels", evaluate, seed=2024)
    points = [(skewed, n) for skewed in (False, True) for n in LEVELS]
    result = sweep.run(points, fail_fast=True, workers=workers)
    return [
        (
            "skewed" if value[0] else "baseline",
            value[1],
            p.metrics["premap"],
            int(p.metrics["iterations"]),
            bool(p.metrics["converged"]),
        )
        for value, p in zip(points, result.points)
    ]


def test_ablation_levels(benchmark, lenet_lab, report, bench_workers):
    rows = benchmark.pedantic(
        lambda: run(lenet_lab, workers=bench_workers), rounds=1, iterations=1
    )
    report(
        "ablation_levels",
        render_table(
            ["training", "levels", "post-map acc", "tuning iters", "converged"],
            [[r[0], r[1], f"{r[2]:.3f}", r[3], r[4]] for r in rows],
            title="Ablation A2 — quantization levels",
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # More levels -> better (or equal) post-map accuracy at the extremes.
    for who in ("baseline", "skewed"):
        assert by_key[(who, 64)][2] >= by_key[(who, 8)][2]
    # Convergence at practical level counts.
    assert by_key[("skewed", 32)][4]
    assert by_key[("skewed", 64)][4]
    # The skewed network tolerates coarse quantization better.
    assert by_key[("skewed", 16)][2] >= by_key[("baseline", 16)][2] - 0.02
