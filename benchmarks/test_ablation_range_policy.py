"""Ablation A3: common-range selection policy.

The paper selects the common upper bound by iterating candidates and
keeping the accuracy-best (with our largest-on-tie refinement).  This
ablation compares, on an aged array, the post-mapping accuracy of:

* ``fresh``     — ignore aging, map into the nominal window (baseline);
* ``min``       — most conservative traced bound (reachable everywhere);
* ``max``       — least conservative traced bound;
* ``iterative`` — the paper's accuracy-scored selection.

The iterative policy must match or beat the fixed heuristics.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import Sweep
from repro.device import DeviceConfig
from repro.mapping import AgingAwareMapper, MappedNetwork
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import clone_model

POLICIES = ("fresh", "min", "max", "iterative")


def age_network(net, rng, rounds=60):
    """Heterogeneous aging: hot subset of devices pulsed repeatedly."""
    for layer in net.layers:
        hot = rng.random(layer.matrix_shape) < 0.3
        for _ in range(rounds):
            layer.tiles.step_conductance(hot.astype(int))


def run(lab, workers=1):
    x = lab.dataset.x_train[:192]
    y = lab.dataset.y_train[:192]
    model = lab.framework.trained_model(True)  # trained before fan-out

    def evaluate(policy, rng):
        cfg = DeviceConfig(pulses_to_collapse=80, write_noise=0.1)
        net = MappedNetwork(clone_model(model), cfg, seed=55)
        net.map_network(FreshMapper())
        # Every policy sees the identical aged array: the aging history
        # is seeded per point, not drawn from a shared stream.
        age_network(net, np.random.default_rng(5))
        if policy == "fresh":
            net.map_network(FreshMapper())
        elif policy == "iterative":
            net.map_network(AgingAwareMapper(), selection_data=(x, y))
        else:
            pick = np.min if policy == "min" else np.max
            for layer in net.layers:
                uppers = layer.traced_upper_bounds()
                layer.set_range(net.device_config.r_min, float(pick(uppers)))
                layer.program()
        return {"accuracy": net.score(x, y)}

    sweep = Sweep("policy", evaluate, seed=2024)
    result = sweep.run(POLICIES, fail_fast=True, workers=workers)
    return [(p.value, p.metrics["accuracy"]) for p in result.points]


def test_ablation_range_policy(benchmark, lenet_lab, report, bench_workers):
    rows = benchmark.pedantic(
        lambda: run(lenet_lab, workers=bench_workers), rounds=1, iterations=1
    )
    report(
        "ablation_range_policy",
        render_table(
            ["policy", "post-map accuracy (aged array)"],
            [[name, f"{acc:.3f}"] for name, acc in rows],
            title="Ablation A3 — common-range selection policy",
        ),
    )
    accs = dict(rows)
    # The paper's iterative selection must not lose to the fixed
    # heuristics, and must beat aging-oblivious fresh mapping.
    assert accs["iterative"] >= max(accs["min"], accs["max"]) - 0.03
    assert accs["iterative"] >= accs["fresh"] - 0.02
