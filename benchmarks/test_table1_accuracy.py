"""Table I (accuracy columns): classification accuracy without vs with
skewed-weight software training, on both workloads.

Paper numbers (Cifar10/LeNet-5 and Cifar100/VGG-16): the skewed accuracy
is *slightly lower* for the small network and *higher* for the deep one.
The reproduction checks the same shape: skewed accuracy within a couple
of points of baseline on the LeNet role, and not worse on the VGG role.
"""

from repro.analysis import render_table


def _accuracy_rows(lab):
    base = lab.framework.software_accuracy(False)
    skew = lab.framework.software_accuracy(True)
    return base, skew


def test_table1_accuracy_lenet(benchmark, lenet_lab, report):
    base, skew = benchmark.pedantic(
        lambda: _accuracy_rows(lenet_lab), rounds=1, iterations=1
    )
    report(
        "table1_accuracy_lenet",
        render_table(
            ["network", "dataset", "acc (baseline)", "acc (skewed)"],
            [["LeNet-role CNN", lenet_lab.dataset.name, f"{base:.3f}", f"{skew:.3f}"]],
            title="Table I (accuracy) — LeNet role",
        ),
    )
    # Paper shape: slightly lower is acceptable, collapse is not.
    assert skew > base - 0.05


def test_table1_accuracy_vgg(benchmark, vgg_lab, report):
    base, skew = benchmark.pedantic(
        lambda: _accuracy_rows(vgg_lab), rounds=1, iterations=1
    )
    report(
        "table1_accuracy_vgg",
        render_table(
            ["network", "dataset", "acc (baseline)", "acc (skewed)"],
            [["VGG-role CNN", vgg_lab.dataset.name, f"{base:.3f}", f"{skew:.3f}"]],
            title="Table I (accuracy) — VGG role",
        ),
    )
    # Paper shape: the deep network's skewed accuracy is not worse.
    assert skew >= base - 0.02
