"""Ablation A6: operating temperature.

Eq. (6)–(7) are Arrhenius-activated, so the paper's aging functions are
explicitly temperature-dependent — but its evaluation never varies T.
This ablation sweeps the operating temperature and reports, at a fixed
programming-traffic budget: the remaining usable levels and the
endurance (pulses until a device at worst-case stress dies).  Hotter
devices must age exponentially faster, with the exact Arrhenius ratio.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import Sweep
from repro.device import DeviceConfig, Memristor
from repro.device.aging import BOLTZMANN_EV

TEMPERATURES = (280.0, 300.0, 325.0, 350.0)
TRAFFIC = 400  # worst-case pulses applied before measuring


def _evaluate(temperature, rng):
    cfg = DeviceConfig(
        pulses_to_collapse=2000, temperature=temperature, write_noise=0.0
    )
    # NOTE: calibration is done *at* the configured temperature, so to
    # expose the T-dependence we calibrate once at 300 K and carry
    # those params to every temperature.
    ref = DeviceConfig(pulses_to_collapse=2000, temperature=300.0, write_noise=0.0)
    cfg.aging_params = ref.make_aging_model().params

    cell = Memristor(cfg, seed=1)
    endurance = 0
    levels_after_traffic = -1.0  # sentinel: dead before the budget
    while not cell.is_dead and endurance < 100_000:
        cell.program(cfg.r_min)
        endurance += 1
        if endurance == TRAFFIC:
            levels_after_traffic = float(len(cell.usable_levels()))
    return {"levels": levels_after_traffic, "endurance": float(endurance)}


def run(workers=1):
    sweep = Sweep("temperature", _evaluate, seed=2024)
    result = sweep.run(TEMPERATURES, fail_fast=True, workers=workers)
    return [
        (p.value, p.metrics["levels"], p.metrics["endurance"]) for p in result.points
    ]


def test_ablation_temperature(benchmark, report, bench_workers):
    rows = benchmark.pedantic(
        lambda: run(workers=bench_workers), rounds=1, iterations=1
    )
    report(
        "ablation_temperature",
        render_table(
            ["temperature (K)", f"levels after {TRAFFIC} pulses", "endurance (pulses)"],
            [
                [f"{t:.0f}", f"{lv:.0f}" if lv >= 0 else "dead", f"{e:.0f}"]
                for t, lv, e in rows
            ],
            title="Ablation A6 — operating temperature (calibrated at 300 K)",
        ),
    )
    by_t = {t: (lv, e) for t, lv, e in rows}
    # Monotone: hotter -> fewer surviving levels, shorter endurance.
    endurances = [by_t[t][1] for t in TEMPERATURES]
    assert endurances == sorted(endurances, reverse=True)
    # The endurance ratio between 300 K and 350 K matches Arrhenius
    # within discretization (endurance ∝ 1/rate for the linear-time
    # model).
    ea = DeviceConfig().activation_energy
    expected = np.exp(ea / BOLTZMANN_EV * (1 / 300.0 - 1 / 350.0))
    measured = by_t[300.0][1] / by_t[350.0][1]
    assert measured == pytest.approx(expected, rel=0.1)
