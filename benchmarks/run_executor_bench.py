"""Measure the execution engine: serial vs parallel vs cached.

Runs the full 4-scenario comparison (t+t, t+at, st+t, st+at) on the
miniature blobs workload three ways —

* serial       (``workers=1``, no cache): the reference;
* parallel     (``workers=4``, no cache): process-pool fan-out;
* cache warm+hit: one populating pass, then a fully cached pass;

— verifies all runs produce identical comparisons, and writes the
timings to ``BENCH_executor.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/run_executor_bench.py

Note on parallel speedup: fan-out pays off with the >= 2 physical cores
of any normal dev box / CI runner; on a single-core container the pool
only adds process overhead, and the recorded numbers will honestly say
so (``cpu_count`` is part of the output).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time

from bench_history import append_history
from repro.core import (
    AgingAwareFramework,
    FrameworkConfig,
    LifetimeConfig,
    ResultCache,
)
from repro.data import make_blobs
from repro.device import DeviceConfig
from repro.training import SkewedTrainingConfig, TrainConfig, build_mlp
from repro.tuning import TuningConfig

SCENARIOS = ("t+t", "t+at", "st+t", "st+at")


def make_framework() -> AgingAwareFramework:
    data = make_blobs(n_samples=400, n_classes=3, n_features=6, spread=0.4, seed=3)
    config = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=20, write_noise=0.1),
        train=TrainConfig(epochs=15),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=15),
            skew_epochs=8,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=60,
            tuning=TuningConfig(max_iterations=60),
        ),
        tune_samples=160,
        target_fraction=0.92,
    )
    return AgingAwareFramework(
        lambda seed: build_mlp(6, 3, hidden=(24,), seed=seed), data, config, seed=7
    )


def timed_compare(framework, **kwargs):
    start = time.perf_counter()
    comparison = framework.compare(SCENARIOS, **kwargs)
    return comparison, time.perf_counter() - start


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent

    # Each arm gets a fresh framework: same seed, no shared training
    # cache, so the timings include identical work.
    serial, t_serial = timed_compare(make_framework(), workers=1)
    parallel, t_parallel = timed_compare(make_framework(), workers=4)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        warm, t_warm = timed_compare(make_framework(), workers=4, cache=cache)
        cached, t_cached = timed_compare(make_framework(), workers=4, cache=cache)
        cache_stats = {"hits": cache.hits, "misses": cache.misses}

    identical = all(
        serial.results[k] == parallel.results[k] == warm.results[k] == cached.results[k]
        for k in SCENARIOS
    )
    payload = {
        "benchmark": "4-scenario compare (miniature blobs workload)",
        "scenarios": list(SCENARIOS),
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(t_serial, 3),
        "parallel_workers4_seconds": round(t_parallel, 3),
        "cache_populate_seconds": round(t_warm, 3),
        "cached_seconds": round(t_cached, 3),
        "speedup_parallel_vs_serial": round(t_serial / t_parallel, 2),
        "speedup_cached_vs_serial": round(t_serial / t_cached, 2),
        "results_identical_across_modes": identical,
        "cache": cache_stats,
        "lifetimes": {k: serial.results[k].lifetime_applications for k in SCENARIOS},
    }
    out = repo_root / "BENCH_executor.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    append_history(
        repo_root,
        "executor",
        {
            "speedup_parallel_vs_serial": payload["speedup_parallel_vs_serial"],
            "speedup_cached_vs_serial": payload["speedup_cached_vs_serial"],
            "results_identical": identical,
        },
    )
    if not identical:
        print("ERROR: modes disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
