"""Ablation A1: trace density (paper traces 1 of 9 devices).

How good is the aged-window estimate when tracing the centre of every
BxB block?  Denser tracing (B=1: every device) is exact but costs a
counter per device; sparser tracing (B=5: 1/25) is cheap but noisier.
Reported: mean absolute estimation error of the aged upper bound after
a heterogeneous aging history, per block size.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import Sweep
from repro.crossbar import BlockTracer, Crossbar
from repro.device import DeviceConfig

BLOCKS = (1, 3, 5)


def _one_history(seed, size, rounds):
    cfg = DeviceConfig(pulses_to_collapse=300, write_noise=0.0)
    xb = Crossbar(size, size, cfg, seed=seed)
    rng = np.random.default_rng(seed)
    xb.program(np.full((size, size), 5e4))
    # Heterogeneous stress: a persistent random subset of hot devices,
    # the pattern tuning traffic produces (gradient-hot devices repeat).
    hot = rng.random((size, size)) < 0.3
    for _ in range(rounds):
        extra = (rng.random((size, size)) < 0.1)
        xb.step_conductance((hot | extra).astype(int))
    return xb


def _evaluate(seed, rng, size=30, rounds=40):
    """All block sizes on one aging history (the history is shared so
    block errors are comparable within a point)."""
    xb = _one_history(seed, size, rounds)
    return {
        f"err_b{block}": BlockTracer(xb, block).estimation_error()
        for block in BLOCKS
    }


def run(size=30, rounds=40, seeds=(0, 1, 2, 3, 4), workers=1):
    """Estimation error per block size, averaged over aging histories
    (a single history can accidentally align with block boundaries)."""
    sweep = Sweep(
        "history_seed", lambda s, rng: _evaluate(s, rng, size, rounds), seed=2024
    )
    result = sweep.run(seeds, fail_fast=True, workers=workers)
    return [
        (b, 1.0 / (b * b), float(np.mean(result.metric(f"err_b{b}"))))
        for b in BLOCKS
    ]


def test_ablation_trace_density(benchmark, report, bench_workers):
    rows = benchmark.pedantic(
        lambda: run(workers=bench_workers), rounds=1, iterations=1
    )
    window = DeviceConfig().r_max - DeviceConfig().r_min
    report(
        "ablation_trace_density",
        render_table(
            ["block", "traced fraction", "mean |est - true| of R_aged_max", "% of window"],
            [
                [b, f"1/{b*b}", f"{e:.0f} Ohm", f"{100*e/window:.2f}%"]
                for b, _f, e in rows
            ],
            title="Ablation A1 — tracing density vs estimation error",
        ),
    )
    errors = {b: e for b, _f, e in rows}
    # Full tracing is exact; sparser tracing degrades gracefully.
    assert errors[1] == 0.0
    assert errors[3] > 0.0
    assert errors[5] >= errors[3] * 0.5
    # The paper's 1-of-9 choice stays accurate: within a few % of the
    # window, i.e. ~one quantization level.
    assert errors[3] < 0.1 * window
