"""Fig. 11: aging of convolutional vs fully-connected layers.

The paper: "the aging effect in convolutional layers is stronger than
fully-connected layers, because convolutional layers ... are programmed
more often."  Measured as the average aged upper resistance bound per
layer type over the T+T lifetime of the VGG-role network.
"""

from repro.analysis import ascii_series, layer_type_aging, render_table
from repro.mapping import MappedNetwork
from repro.mapping.network import clone_model
from repro.core.lifetime import LifetimeSimulator


def compute(lab):
    """Re-run a short T+T lifetime keeping a handle on the network so
    the per-layer kinds are available for grouping."""
    cfg = lab.preset.framework_config
    model = clone_model(lab.framework.trained_model(False))
    network = MappedNetwork(
        model,
        device_config=cfg.device,
        tile_rows=cfg.tile_rows,
        tile_cols=cfg.tile_cols,
        trace_block=cfg.trace_block,
        seed=1234,
    )
    x = lab.dataset.x_train[: cfg.tune_samples]
    y = lab.dataset.y_train[: cfg.tune_samples]
    cfg.lifetime.tuning.target_accuracy = 0.93 * lab.framework.software_accuracy(False)
    sim = LifetimeSimulator(network, x, y, config=cfg.lifetime, seed=99)
    result = sim.run("t+t")
    return result, network


def test_fig11_layer_aging(benchmark, vgg_lab, report):
    result, network = benchmark.pedantic(lambda: compute(vgg_lab), rounds=1, iterations=1)
    grouped = layer_type_aging(result, network)
    r_max = network.device_config.r_max
    parts = []
    rows = []
    for kind in ("conv", "dense"):
        series = grouped[kind]
        parts.append(
            ascii_series(series, height=8, label=f"{kind} layers — mean aged R_max")
        )
        parts.append("")
        rows.append([kind, f"{series[0]:.0f}", f"{series[-1]:.0f}",
                     f"{r_max - series[-1]:.0f}"])
    parts.append(
        render_table(["layer type", "initial R_max", "final R_max", "total drop"], rows)
    )
    report("fig11_layer_aging", "\n".join(parts))

    # Shape: conv layers age faster (larger drop of the upper bound).
    conv_drop = r_max - grouped["conv"][-1]
    dense_drop = r_max - grouped["dense"][-1]
    assert conv_drop > dense_drop
    # Both decline monotonically (aging is irreversible).
    for kind in ("conv", "dense"):
        series = grouped[kind]
        assert all(b <= a + 1e-6 for a, b in zip(series, series[1:]))
