"""Env-driven chaos drive: one blobs-mini campaign under ``REPRO_CHAOS``.

CI's executable counterpart to ``tests/service/test_chaos.py``: where
the test battery configures the chaos controller in-process, this
driver exercises the *environment* path (``ChaosConfig.from_env``) the
way an operator would arm it — the whole service stack in one process,
faults injected at every layer the env selects:

* a real :class:`~repro.service.server.CampaignService` (HTTP);
* a :class:`~repro.service.client.ServiceClient` submitting and
  polling over the wire (``drop-response`` bites here);
* two in-process workers draining the shared jobs directory
  (``crash-point`` and ``clock-skew`` bite here, ``corrupt-write``
  bites the lease/state saves underneath them).

Exit status is 0 iff the job reaches a terminal state with every chunk
resolved (done or quarantined, no hung leases) and — when any mode is
armed — the controller actually injected something.  A crash-doomed
grid ends ``completed_with_failures`` with a partial report; that is
containment working, not a failure.

Usage::

    REPRO_CHAOS=crash-point,corrupt-write REPRO_CHAOS_SEED=11 \
        PYTHONPATH=src python benchmarks/run_chaos_drive.py
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.service import (
    CampaignJobSpec,
    CampaignService,
    ServiceClient,
    ServiceWorker,
    chaos,
)
from repro.service.jobs import TERMINAL_STATES


def main() -> int:
    ctrl = chaos.controller()  # parses REPRO_CHAOS* on first touch
    print(f"chaos modes armed: {list(ctrl.config.modes) or 'none'}")

    spec = CampaignJobSpec(
        preset="blobs-mini",
        fast=True,
        kinds=("stuck_at",),
        rates=(0.01,),
        chunk_points=1,
    )
    root = tempfile.mkdtemp(prefix="repro-chaos-drive-")
    with CampaignService(root, workers=0) as svc:
        client = ServiceClient(svc.url, timeout=30.0)
        job_id = client.submit(spec)
        workers = [
            ServiceWorker(svc.store, worker_id=f"chaos-w{i}") for i in range(2)
        ]
        progressed = True
        while progressed:
            progressed = False
            for worker in workers:
                progressed = worker.run_once() or progressed
        status = client.status(job_id)
        board = svc.store.leases(job_id)
        snapshot = board.snapshot()
        recoveries = svc.store.recoveries
        print(json.dumps(status, indent=2, sort_keys=True))
        print(f"leases: {snapshot}")
        print(f"healthz: {client.healthz()}")
        print(f"injected: {ctrl.injected}  store recoveries: {recoveries}")

    problems = []
    if status["status"] not in TERMINAL_STATES:
        problems.append(f"non-terminal job state {status['status']!r}")
    if not board.all_resolved():
        problems.append(f"unresolved chunks after drain: {snapshot}")
    if snapshot["leased"] or snapshot["expired"]:
        problems.append(f"hung leases after drain: {snapshot}")
    if ctrl.enabled and not ctrl.injected:
        problems.append("chaos armed but nothing injected — raise rates or seed")
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print(f"chaos drive survived: terminal state {status['status']!r}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
