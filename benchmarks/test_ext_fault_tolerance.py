"""Extension: stuck-at fault tolerance of the mapped network.

Fabrication defects pin devices at LRS/HRS.  This bench sweeps the
fault rate and reports post-mapping accuracy and whether online tuning
can compensate — quantifying how much slack the tuning loop has, which
is also the slack aging eats into.
"""

from repro.analysis import render_table
from repro.device.faults import FaultModel, inject_faults_network
from repro.mapping.network import MappedNetwork, clone_model
from repro.tuning import OnlineTuner, TuningConfig

RATES = (0.0, 0.01, 0.03, 0.1)


def run(lab):
    cfg = lab.preset.framework_config
    x = lab.dataset.x_train[: cfg.tune_samples]
    y = lab.dataset.y_train[: cfg.tune_samples]
    model = lab.baseline_model()
    target = 0.9 * lab.framework.software_accuracy(False)
    rows = []
    for rate in RATES:
        network = MappedNetwork(clone_model(model), cfg.device, seed=31)
        inject_faults_network(
            network, FaultModel(rate_lrs=rate / 2, rate_hrs=rate / 2), seed=32
        )
        network.map_network()
        premap = network.score(x, y)
        tuner = OnlineTuner(
            TuningConfig(target_accuracy=target, max_iterations=100), seed=33
        )
        result = tuner.tune(network, x, y)
        rows.append((rate, premap, result.final_accuracy, result.converged))
    return rows, target


def test_ext_fault_tolerance(benchmark, lenet_lab, report):
    rows, target = benchmark.pedantic(lambda: run(lenet_lab), rounds=1, iterations=1)
    report(
        "ext_fault_tolerance",
        render_table(
            ["fault rate", "post-map acc", "post-tune acc", "reached target"],
            [[f"{r:.0%}", f"{p:.3f}", f"{t:.3f}", c] for r, p, t, c in rows],
            title=f"Extension — stuck-at fault sweep (tuning target {target:.3f})",
        ),
    )
    by_rate = {r: (p, t, c) for r, p, t, c in rows}
    # Tuning absorbs low fault rates.
    assert by_rate[0.0][2]
    assert by_rate[0.01][1] >= target - 0.05 or by_rate[0.01][2]
    # Post-tune accuracy degrades monotonically-ish with fault rate.
    assert by_rate[0.1][1] <= by_rate[0.0][1] + 0.02
