"""Extension: programming/read energy of baseline vs skewed mapping.

The paper's entire Section IV-A argument is about currents; the energy
model makes it quantitative.  Skewed mapping targets larger resistances,
so one full reprogram and one inference pass should both dissipate less.
"""

import numpy as np

from repro.analysis import render_table
from repro.crossbar.energy import EnergyParams, network_programming_energy, vmm_read_energy
from repro.device import DeviceConfig
from repro.mapping import MappedNetwork
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import clone_model


def run(lab):
    params = EnergyParams()
    x = lab.dataset.x_train[:64]
    rows = []
    for skewed in (False, True):
        model = lab.framework.trained_model(skewed)
        network = MappedNetwork(clone_model(model), DeviceConfig(), seed=21)
        network.map_network(FreshMapper())
        prog = network_programming_energy(network, params)
        read = 0.0
        batch = x.reshape(len(x), -1)
        for layer in network.layers:
            # Drive each layer with unit-scale activations as a proxy
            # for the real intermediate signals.
            v = np.clip(batch[:, : layer.matrix_shape[0]], -1, 1)
            if v.shape[1] < layer.matrix_shape[0]:
                v = np.pad(v, ((0, 0), (0, layer.matrix_shape[0] - v.shape[1])))
            read += vmm_read_energy(layer.tiles.conductances(), v, params)
        rows.append(("skewed" if skewed else "baseline", prog, read))
    return rows


def test_ext_energy(benchmark, lenet_lab, report):
    rows = benchmark.pedantic(lambda: run(lenet_lab), rounds=1, iterations=1)
    report(
        "ext_energy",
        render_table(
            ["training", "reprogram energy (J)", "64-sample read energy (J)"],
            [[name, f"{p:.3e}", f"{r:.3e}"] for name, p, r in rows],
            title="Extension — energy of one reprogram / one read batch",
        ),
    )
    by_name = {name: (p, r) for name, p, r in rows}
    # The skewed network programs AND reads with less energy.
    assert by_name["skewed"][0] < by_name["baseline"][0]
    assert by_name["skewed"][1] < by_name["baseline"][1]
