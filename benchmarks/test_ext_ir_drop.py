"""Extension: IR-drop sensitivity of mapped inference.

Wire parasitics attenuate the analog VMM, and the attenuation grows
with array size and with *conductance* (high-conductance cells pull
more current through the wires).  Consequence: the skewed network —
whose mass sits at low conductance — should also be **more robust to IR
drop** than the baseline.  This bench quantifies both effects.
"""

import numpy as np

from repro.analysis import render_table
from repro.crossbar.parasitics import ParasiticModel, ir_drop_factors
from repro.device import DeviceConfig
from repro.mapping import MappedNetwork
from repro.mapping.fresh import FreshMapper
from repro.mapping.network import clone_model

R_WIRES = (0.0, 2.0, 10.0)


def run(lab):
    x = lab.dataset.x_test
    y = lab.dataset.y_test
    rows = []
    for skewed in (False, True):
        model = lab.framework.trained_model(skewed)
        net = MappedNetwork(clone_model(model), DeviceConfig(), seed=17)
        net.map_network(FreshMapper())
        for r_wire in R_WIRES:
            pmodel = ParasiticModel(r_wire)
            # Apply the first-order attenuation to every layer's
            # effective weights via the conductance-domain factors.
            matrices = {}
            mean_factor = []
            for layer in net.layers:
                g = layer.tiles.conductances()
                f = ir_drop_factors(g, pmodel)
                mean_factor.append(float(f.mean()))
                assert layer.mapping is not None
                matrices[layer.layer_index] = np.asarray(
                    layer.mapping.conductance_to_weight(g * f)
                )
            acc = net._accuracy_with_matrices(matrices, x, y)
            rows.append(
                ("skewed" if skewed else "baseline", r_wire, float(np.mean(mean_factor)), acc)
            )
    return rows


def test_ext_ir_drop(benchmark, lenet_lab, report):
    rows = benchmark.pedantic(lambda: run(lenet_lab), rounds=1, iterations=1)
    report(
        "ext_ir_drop",
        render_table(
            ["training", "r_wire (Ohm/seg)", "mean delivered fraction", "accuracy"],
            [[n, f"{r:g}", f"{f:.3f}", f"{a:.3f}"] for n, r, f, a in rows],
            title="Extension — IR-drop sensitivity (first-order model)",
        ),
    )
    by_key = {(n, r): (f, a) for n, r, f, a in rows}
    # Parasitics reduce the delivered signal...
    assert by_key[("baseline", 10.0)][0] < by_key[("baseline", 0.0)][0]
    # ...and the low-conductance (skewed) mapping delivers a larger
    # fraction of its signal at the same wire resistance.
    assert by_key[("skewed", 10.0)][0] > by_key[("baseline", 10.0)][0]
