"""Unit tests for the 1-of-9 block tracer (paper Section IV-B)."""

import numpy as np
import pytest

from repro.crossbar import BlockTracer, Crossbar
from repro.exceptions import ConfigurationError


class TestPositions:
    def test_default_3x3_blocks(self, small_crossbar):
        tracer = BlockTracer(small_crossbar, 3)
        rows, cols = tracer.traced_positions()
        np.testing.assert_array_equal(rows, [1, 4, 7])
        np.testing.assert_array_equal(cols, [1, 4, 7])
        assert tracer.trace_fraction == pytest.approx(1.0 / 9.0)

    def test_block_one_traces_everything(self, small_crossbar):
        tracer = BlockTracer(small_crossbar, 1)
        rows, cols = tracer.traced_positions()
        assert len(rows) == small_crossbar.rows
        assert len(cols) == small_crossbar.cols

    def test_partial_edge_blocks_get_representative(self, device_config):
        xb = Crossbar(10, 11, device_config, seed=1)
        tracer = BlockTracer(xb, 3)
        rows, cols = tracer.traced_positions()
        assert rows[-1] >= 7  # the 10th row belongs to a traced block
        assert cols[-1] >= 9

    def test_validation(self, small_crossbar):
        with pytest.raises(ConfigurationError):
            BlockTracer(small_crossbar, 0)


class TestEstimates:
    def test_fresh_estimate_is_exact(self, small_crossbar):
        tracer = BlockTracer(small_crossbar, 3)
        est_lo, est_hi = tracer.estimated_bounds()
        lo, hi = small_crossbar.aged_bounds()
        np.testing.assert_allclose(est_lo, lo)
        np.testing.assert_allclose(est_hi, hi)
        assert tracer.estimation_error() == 0.0

    def test_estimate_uses_block_representative(self, small_crossbar):
        """Age only the representative of block (0,0); its whole block
        inherits the aged estimate while other blocks stay fresh."""
        tracer = BlockTracer(small_crossbar, 3)
        directions = np.zeros(small_crossbar.shape, dtype=int)
        directions[1, 1] = -1  # the (0,0) block representative
        targets = np.full(small_crossbar.shape, small_crossbar.config.r_min)
        for _ in range(30):
            small_crossbar.program(targets, only_changed=False)
        # Reset: actually age everything equally is not what we want, so
        # rebuild a fresh crossbar and only pulse the representative.
        xb = Crossbar(9, 9, small_crossbar.config, seed=3)
        tracer = BlockTracer(xb, 3)
        d = np.zeros((9, 9), dtype=int)
        d[1, 1] = -1
        xb.program(np.full((9, 9), xb.config.r_max))
        for _ in range(30):
            xb.step_conductance(np.abs(d))
        est_lo, est_hi = tracer.estimated_bounds()
        # All 9 devices of block (0,0) share the representative's bound.
        assert np.all(est_hi[:3, :3] == est_hi[1, 1])
        _lo, true_hi = xb.aged_bounds()
        assert est_hi[1, 1] == pytest.approx(true_hi[1, 1])
        # Fresh blocks report fresh bounds.
        assert np.all(est_hi[3:, 3:] > est_hi[1, 1])

    def test_traced_upper_bounds_size(self, small_crossbar):
        tracer = BlockTracer(small_crossbar, 3)
        assert tracer.traced_upper_bounds().shape == (9,)

    def test_estimation_error_grows_with_block_size(self, device_config, rng):
        """Sparser tracing gives worse estimates once aging is
        heterogeneous (the A1 ablation's premise)."""
        xb = Crossbar(15, 15, device_config, seed=5)
        xb.program(np.full((15, 15), 5e4))
        for _ in range(25):
            directions = (rng.random((15, 15)) < 0.3).astype(int)
            xb.step_conductance(directions)
        errors = [BlockTracer(xb, b).estimation_error() for b in (1, 3, 5)]
        assert errors[0] == 0.0
        assert errors[1] <= errors[2] + 1e3  # generally increasing
        assert errors[2] > 0.0
