"""Hypothesis property tests for crossbar invariants.

These pin the contracts every other subsystem relies on: programmed
values live inside aged windows, aging is irreversible and monotone in
traffic, VMM is linear, and the scalar cell and array paths agree.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crossbar import Crossbar
from repro.device import DeviceConfig

TARGETS = st.floats(5e3, 2e5)


def make_crossbar(seed: int, noise: float = 0.0) -> Crossbar:
    cfg = DeviceConfig(pulses_to_collapse=500, write_noise=noise)
    return Crossbar(4, 4, cfg, seed=seed)


class TestProgrammingInvariants:
    @given(target=TARGETS, seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_programmed_value_in_window(self, target, seed):
        xb = make_crossbar(seed, noise=0.1)
        xb.program(np.full((4, 4), target))
        lo, hi = xb.aged_bounds()
        assert np.all(xb.resistance >= lo - 1e-9)
        assert np.all(xb.resistance <= hi + 1e-9)

    @given(
        targets=st.lists(TARGETS, min_size=3, max_size=8),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_stress_never_decreases(self, targets, seed):
        xb = make_crossbar(seed)
        previous = xb.stress_time.copy()
        for target in targets:
            xb.program(np.full((4, 4), target), only_changed=False)
            assert np.all(xb.stress_time >= previous)
            previous = xb.stress_time.copy()

    @given(target=TARGETS)
    @settings(max_examples=30, deadline=None)
    def test_window_never_grows(self, target):
        xb = make_crossbar(0)
        _lo0, hi0 = xb.aged_bounds()
        for _ in range(5):
            xb.program(np.full((4, 4), target), only_changed=False)
        _lo1, hi1 = xb.aged_bounds()
        assert np.all(hi1 <= hi0 + 1e-9)

    @given(seed=st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_identical_seeds_identical_state(self, seed):
        a, b = make_crossbar(seed, 0.1), make_crossbar(seed, 0.1)
        targets = np.full((4, 4), 5.3e4)
        a.program(targets)
        b.program(targets)
        np.testing.assert_array_equal(a.resistance, b.resistance)


class TestVmmInvariants:
    @given(
        scale=st.floats(-3.0, 3.0),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_homogeneity(self, scale, seed):
        xb = make_crossbar(seed)
        rng = np.random.default_rng(seed)
        xb.program(rng.uniform(2e4, 8e4, (4, 4)))
        v = rng.normal(size=4)
        np.testing.assert_allclose(
            xb.vmm(scale * v), scale * xb.vmm(v), rtol=1e-9, atol=1e-12
        )

    @given(seed=st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_additivity(self, seed):
        xb = make_crossbar(seed)
        rng = np.random.default_rng(seed + 100)
        xb.program(rng.uniform(2e4, 8e4, (4, 4)))
        a, b = rng.normal(size=4), rng.normal(size=4)
        np.testing.assert_allclose(
            xb.vmm(a + b), xb.vmm(a) + xb.vmm(b), rtol=1e-9, atol=1e-12
        )
