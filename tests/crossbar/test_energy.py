"""Unit tests for the energy model."""

import numpy as np
import pytest

from repro.crossbar.energy import (
    EnergyParams,
    network_programming_energy,
    programming_energy,
    vmm_read_energy,
)
from repro.exceptions import ConfigurationError, ShapeError


class TestParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyParams(read_voltage=0.0)
        with pytest.raises(ConfigurationError):
            EnergyParams(pulse_width=-1.0)


class TestReadEnergy:
    def test_single_device_hand_check(self):
        params = EnergyParams(read_voltage=1.0, read_time=1.0)
        g = np.array([[2.0]])
        # E = V^2 * g * t = 1 * 2 * 1
        assert vmm_read_energy(g, np.array([1.0]), params) == pytest.approx(2.0)

    def test_scales_with_conductance(self, rng):
        params = EnergyParams()
        g = rng.uniform(1e-5, 1e-4, (6, 4))
        v = rng.uniform(-1, 1, 6)
        assert vmm_read_energy(2 * g, v, params) == pytest.approx(
            2 * vmm_read_energy(g, v, params)
        )

    def test_batch_sums(self, rng):
        params = EnergyParams()
        g = rng.uniform(1e-5, 1e-4, (6, 4))
        v = rng.uniform(-1, 1, (3, 6))
        total = vmm_read_energy(g, v, params)
        parts = sum(vmm_read_energy(g, v[i], params) for i in range(3))
        assert total == pytest.approx(parts)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            vmm_read_energy(np.ones((4, 2)), np.ones(5))


class TestProgrammingEnergy:
    def test_hand_check(self):
        params = EnergyParams(program_voltage=2.0, pulse_width=1e-6)
        # E = V^2/R * t = 4/1e4 * 1e-6
        assert programming_energy(np.array([1e4]), params) == pytest.approx(4e-10)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            programming_energy(np.array([0.0]))

    def test_high_resistance_is_cheaper(self):
        """The paper's motivation: skewed (large-R) mappings program
        with less current, hence less energy."""
        low = programming_energy(np.full(100, 2e4))
        high = programming_energy(np.full(100, 8e4))
        assert high < low

    def test_network_energy(self, mapped_mlp):
        energy = network_programming_energy(mapped_mlp)
        assert energy > 0

    def test_network_requires_mapping(self, trained_mlp, device_config):
        from repro.mapping import MappedNetwork

        net = MappedNetwork(trained_mlp, device_config, seed=1)
        with pytest.raises(ConfigurationError):
            network_programming_energy(net)
