"""Unit tests for DAC/ADC peripheral models."""

import numpy as np
import pytest

from repro.crossbar.peripheral import InputDriver, OutputConverter
from repro.exceptions import ConfigurationError


class TestInputDriver:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InputDriver(bits=0)
        with pytest.raises(ConfigurationError):
            InputDriver(v_max=0.0)

    def test_n_codes(self):
        assert InputDriver(bits=8).n_codes == 256

    def test_saturation(self):
        dac = InputDriver(bits=8, v_max=1.0)
        out = dac.convert(np.array([-5.0, 5.0]))
        np.testing.assert_allclose(out, [-1.0, 1.0])

    def test_quantization_error_bounded(self, rng):
        dac = InputDriver(bits=6, v_max=1.0)
        x = rng.uniform(-1, 1, 500)
        out = dac.convert(x)
        step = 2.0 / (2**6 - 1)
        assert np.max(np.abs(out - x)) <= step / 2 + 1e-12

    def test_unipolar_mode(self):
        dac = InputDriver(bits=4, v_max=1.0, bipolar=False)
        out = dac.convert(np.array([-0.5, 0.5]))
        assert out[0] == 0.0
        assert 0.0 <= out[1] <= 1.0

    def test_one_bit(self):
        dac = InputDriver(bits=1, v_max=1.0)
        out = dac.convert(np.array([-0.9, 0.9]))
        np.testing.assert_allclose(out, [-1.0, 1.0])


class TestOutputConverter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OutputConverter(bits=0)
        with pytest.raises(ConfigurationError):
            OutputConverter(r_tia=0.0)

    def test_tia_gain(self):
        adc = OutputConverter(bits=12, r_tia=1e3, v_full_scale=1.0)
        out = adc.convert(np.array([5e-4]))
        assert out[0] == pytest.approx(0.5, abs=1e-3)

    def test_saturation(self):
        adc = OutputConverter(bits=8, r_tia=1e3, v_full_scale=1.0)
        out = adc.convert(np.array([-1.0, 1.0]))
        np.testing.assert_allclose(out, [-1.0, 1.0])

    def test_quantization_step(self, rng):
        adc = OutputConverter(bits=5, r_tia=1.0, v_full_scale=1.0)
        x = rng.uniform(-1, 1, 300)
        out = adc.convert(x)
        step = 2.0 / (2**5 - 1)
        assert np.max(np.abs(out - x)) <= step / 2 + 1e-12
