"""Unit tests for tiled logical matrices."""

import numpy as np
import pytest

from repro.crossbar import Crossbar, TiledMatrix
from repro.exceptions import ConfigurationError, ShapeError


@pytest.fixture()
def tiled(device_config):
    return TiledMatrix(10, 7, tile_rows=4, tile_cols=3, config=device_config, seed=1)


class TestGeometry:
    def test_validation(self, device_config):
        with pytest.raises(ConfigurationError):
            TiledMatrix(0, 5, config=device_config)
        with pytest.raises(ConfigurationError):
            TiledMatrix(5, 5, tile_rows=0, config=device_config)

    def test_grid_shape(self, tiled):
        assert tiled.grid_shape == (3, 3)
        assert tiled.shape == (10, 7)

    def test_edge_tiles_are_smaller(self, tiled):
        sizes = [(t.rows, t.cols) for _rs, _cs, t in tiled.iter_tiles()]
        assert (4, 3) in sizes
        assert (2, 1) in sizes  # bottom-right remainder

    def test_slices_cover_matrix(self, tiled):
        covered = np.zeros(tiled.shape, dtype=int)
        for rs, cs, _tile in tiled.iter_tiles():
            covered[rs, cs] += 1
        np.testing.assert_array_equal(covered, np.ones(tiled.shape, dtype=int))

    def test_single_tile_when_large_enough(self, device_config):
        tm = TiledMatrix(5, 5, tile_rows=128, tile_cols=128, config=device_config)
        assert tm.grid_shape == (1, 1)


class TestOperations:
    def test_program_and_read(self, tiled, rng):
        targets = rng.uniform(2e4, 8e4, tiled.shape)
        tiled.program(targets)
        achieved = tiled.resistances()
        assert np.max(np.abs(achieved - targets)) <= tiled.config.make_level_grid().step

    def test_program_shape_check(self, tiled):
        with pytest.raises(ShapeError):
            tiled.program(np.full((3, 3), 5e4))

    def test_vmm_matches_monolithic(self, device_config, rng):
        """Tiled VMM must equal a single-crossbar VMM with the same
        programmed matrix (digital partial-sum correctness)."""
        targets = rng.uniform(2e4, 8e4, (10, 7))
        tm = TiledMatrix(10, 7, tile_rows=4, tile_cols=3, config=device_config, seed=2)
        tm.program(targets)
        mono = Crossbar(10, 7, device_config, seed=3)
        mono.program(targets)
        v = rng.normal(size=(3, 10))
        np.testing.assert_allclose(tm.vmm(v), mono.vmm(v), rtol=1e-9)

    def test_vmm_width_check(self, tiled):
        with pytest.raises(ShapeError):
            tiled.vmm(np.ones(9))

    def test_step_levels_routes_to_tiles(self, tiled):
        tiled.program(np.full(tiled.shape, 5e4))
        directions = np.zeros(tiled.shape, dtype=int)
        directions[9, 6] = 1  # inside the bottom-right remainder tile
        before = tiled.resistances()[9, 6]
        tiled.step_levels(directions)
        step = tiled.config.make_level_grid().step
        assert tiled.resistances()[9, 6] == pytest.approx(before + step)

    def test_step_conductance_shape_check(self, tiled):
        with pytest.raises(ShapeError):
            tiled.step_conductance(np.zeros((2, 2), dtype=int))

    def test_pulse_totals_aggregate(self, tiled):
        tiled.program(np.full(tiled.shape, 5e4))
        assert tiled.pulse_totals() == 70

    def test_aged_bounds_shape(self, tiled):
        lo, hi = tiled.aged_bounds()
        assert lo.shape == hi.shape == tiled.shape

    def test_drift_applies_everywhere(self, tiled):
        tiled.program(np.full(tiled.shape, 5e4))
        before = tiled.resistances()
        tiled.apply_drift(0.1)
        after = tiled.resistances()
        assert (after != before).mean() > 0.9

    def test_dead_fraction_zero_fresh(self, tiled):
        assert tiled.dead_fraction() == 0.0
