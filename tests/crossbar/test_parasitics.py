"""Unit tests for the IR-drop parasitics models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import NodalSolver
from repro.crossbar.parasitics import (
    ParasiticModel,
    _assemble_nodal_system,
    _assemble_nodal_system_loop,
    ir_drop_factors,
    solve_crossbar_nodal,
    vmm_with_ir_drop,
)
from repro.exceptions import ConfigurationError, ShapeError


@pytest.fixture()
def small_g(rng):
    return rng.uniform(1e-5, 1e-4, size=(6, 5))


class TestModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParasiticModel(r_wire=-1.0)


class TestNodalSolver:
    def test_zero_wire_resistance_is_ideal(self, small_g, rng):
        v = rng.uniform(0, 1, 6)
        out = solve_crossbar_nodal(small_g, v, ParasiticModel(0.0))
        np.testing.assert_allclose(out, v @ small_g)

    def test_single_cell_divider(self):
        """One cell: the network is a plain voltage divider
        wire → cell → wire → ground; current = V / (R_cell + 2 R_wire)."""
        g = np.array([[1e-4]])
        model = ParasiticModel(100.0)
        out = solve_crossbar_nodal(g, np.array([1.0]), model)
        expected = 1.0 / (1e4 + 2 * 100.0)
        assert out[0] == pytest.approx(expected, rel=1e-9)

    def test_parasitics_reduce_current(self, small_g):
        v = np.ones(6)
        ideal = v @ small_g
        dropped = solve_crossbar_nodal(small_g, v, ParasiticModel(50.0))
        assert np.all(dropped < ideal)
        assert np.all(dropped > 0)

    def test_more_wire_resistance_more_drop(self, small_g):
        v = np.ones(6)
        mild = solve_crossbar_nodal(small_g, v, ParasiticModel(5.0))
        harsh = solve_crossbar_nodal(small_g, v, ParasiticModel(100.0))
        assert np.all(harsh < mild)

    def test_linearity_in_input(self, small_g, rng):
        """The network is linear: doubling V doubles I."""
        model = ParasiticModel(20.0)
        v = rng.uniform(0, 1, 6)
        out1 = solve_crossbar_nodal(small_g, v, model)
        out2 = solve_crossbar_nodal(small_g, 2 * v, model)
        np.testing.assert_allclose(out2, 2 * out1, rtol=1e-9)

    def test_shape_checks(self, small_g):
        with pytest.raises(ShapeError):
            solve_crossbar_nodal(small_g, np.ones(3), ParasiticModel())
        with pytest.raises(ShapeError):
            solve_crossbar_nodal(np.ones(4), np.ones(4), ParasiticModel())


class TestVectorizedAssembly:
    """The COO assembly must match the per-cell loop reference exactly."""

    @pytest.mark.parametrize(
        "shape", [(1, 1), (1, 5), (5, 1), (2, 2), (8, 6), (16, 16)]
    )
    def test_matches_loop_reference(self, shape, rng):
        g = rng.uniform(1e-5, 1e-4, size=shape)
        v_in = rng.uniform(0, 1, shape[0])
        g_wire = 1.0 / 20.0
        m_vec, rhs_vec = _assemble_nodal_system(g, v_in, g_wire)
        m_loop, rhs_loop = _assemble_nodal_system_loop(g, v_in, g_wire)
        np.testing.assert_array_equal(rhs_vec, rhs_loop)
        np.testing.assert_allclose(
            m_vec.toarray(), m_loop.toarray(), rtol=1e-14, atol=0.0
        )

    def test_solved_currents_match_loop_path(self, small_g, rng):
        """End to end: solving the loop-assembled system gives the same
        TIA currents as the production (vectorized) solver."""
        from scipy.sparse.linalg import spsolve

        v = rng.uniform(0, 1, small_g.shape[0])
        g_wire = 1.0 / 15.0
        currents = solve_crossbar_nodal(small_g, v, ParasiticModel(15.0))
        matrix, rhs = _assemble_nodal_system_loop(small_g, v, g_wire)
        solution = spsolve(matrix.tocsc(), rhs)
        rows, cols = small_g.shape
        bottom = solution[rows * cols + (rows - 1) * cols + np.arange(cols)]
        np.testing.assert_allclose(currents, bottom * g_wire, rtol=1e-10)


class TestApproximation:
    def test_factors_are_fractions(self, small_g):
        f = ir_drop_factors(small_g, ParasiticModel(10.0))
        assert np.all((0 < f) & (f <= 1))

    def test_far_corner_attenuates_most(self, small_g):
        """The cell far from driver AND far from TIA (row 0, last col)
        has the longest path."""
        g = np.full((6, 5), 5e-5)
        f = ir_drop_factors(g, ParasiticModel(50.0))
        assert f[0, -1] == f.min()
        assert f[-1, 0] == f.max()

    def test_zero_wire_gives_ones(self, small_g):
        np.testing.assert_array_equal(
            ir_drop_factors(small_g, ParasiticModel(0.0)), np.ones_like(small_g)
        )

    def test_approximation_tracks_exact(self, rng):
        """On a small array with modest parasitics, the first-order
        model stays within a few percent of the nodal solution."""
        g = rng.uniform(1e-5, 1e-4, size=(8, 8))
        v = rng.uniform(0.1, 1.0, 8)
        model = ParasiticModel(2.0)
        exact = solve_crossbar_nodal(g, v, model)
        approx = vmm_with_ir_drop(g, v, model)
        rel = np.abs(approx - exact) / np.abs(exact)
        assert rel.max() < 0.05


class TestApproximationConvergence:
    """Property: the first-order model converges to the exact nodal
    solution as the wire resistance vanishes (satellite of ISSUE 4)."""

    @given(seed=st.integers(0, 200), rows=st.integers(2, 7), cols=st.integers(2, 7))
    @settings(max_examples=30, deadline=None)
    def test_converges_to_exact_as_r_wire_vanishes(self, seed, rows, cols):
        gen = np.random.default_rng(seed)
        g = gen.uniform(1e-5, 1e-4, size=(rows, cols))
        v = gen.uniform(0.1, 1.0, rows)
        previous = None
        for r_wire in (1.0, 0.1, 0.01, 0.001):
            model = ParasiticModel(r_wire)
            exact = solve_crossbar_nodal(g, v, model)
            approx = vmm_with_ir_drop(g, v, model)
            err = float(np.max(np.abs(approx - exact) / np.abs(exact)))
            if previous is not None:
                assert err <= previous + 1e-12
            previous = err
        # At r_wire = 1 mΩ per segment both models are within 0.01 %.
        assert previous < 1e-4

    def test_exact_at_zero_wire_resistance(self, small_g, rng):
        v = rng.uniform(0.1, 1.0, 6)
        model = ParasiticModel(0.0)
        np.testing.assert_array_equal(
            vmm_with_ir_drop(small_g, v, model),
            solve_crossbar_nodal(small_g, v, model),
        )


class TestBatchedEquivalence:
    """Batched multi-RHS solves must match the per-vector reference —
    bit for bit, not just to tolerance (the einsum transfer product is
    row-stable; see repro.core.kernels)."""

    @given(seed=st.integers(0, 100), batch=st.integers(1, 9))
    @settings(max_examples=25, deadline=None)
    def test_batched_matches_per_vector_bitwise(self, seed, batch):
        gen = np.random.default_rng(seed)
        g = gen.uniform(1e-5, 1e-4, size=(6, 5))
        v_batch = gen.uniform(0.0, 1.0, size=(batch, 6))
        model = ParasiticModel(12.0)
        batched = vmm_with_ir_drop(g, v_batch, model, exact=True)
        solver = NodalSolver(g, model.r_wire)
        for k in range(batch):
            reference = solve_crossbar_nodal(g, v_batch[k], model)
            np.testing.assert_array_equal(batched[k], reference)
            np.testing.assert_array_equal(solver.solve(v_batch[k]), reference)

    def test_sub_batches_are_bitwise_stable(self, small_g, rng):
        """Splitting a batch must not change any output bit."""
        v_batch = rng.uniform(0.0, 1.0, size=(8, 6))
        model = ParasiticModel(7.0)
        whole = vmm_with_ir_drop(small_g, v_batch, model, exact=True)
        halves = np.vstack(
            [
                vmm_with_ir_drop(small_g, v_batch[:3], model, exact=True),
                vmm_with_ir_drop(small_g, v_batch[3:], model, exact=True),
            ]
        )
        np.testing.assert_array_equal(whole, halves)

    def test_prebuilt_solver_reuse_is_bitwise_identical(self, small_g, rng):
        v_batch = rng.uniform(0.0, 1.0, size=(4, 6))
        model = ParasiticModel(9.0)
        solver = NodalSolver(small_g, model.r_wire)
        np.testing.assert_array_equal(
            vmm_with_ir_drop(small_g, v_batch, model, exact=True, solver=solver),
            vmm_with_ir_drop(small_g, v_batch, model, exact=True),
        )


class TestVmmWrapper:
    def test_batched_shape(self, small_g, rng):
        v = rng.uniform(0, 1, (4, 6))
        out = vmm_with_ir_drop(small_g, v, ParasiticModel(5.0))
        assert out.shape == (4, 5)

    def test_exact_flag(self, small_g, rng):
        v = rng.uniform(0, 1, 6)
        model = ParasiticModel(5.0)
        exact = vmm_with_ir_drop(small_g, v, model, exact=True)
        np.testing.assert_allclose(exact, solve_crossbar_nodal(small_g, v, model))

    def test_width_check(self, small_g):
        with pytest.raises(ShapeError):
            vmm_with_ir_drop(small_g, np.ones(4), ParasiticModel())
