"""Unit tests for the array-vectorized crossbar."""

import numpy as np
import pytest

from repro.crossbar import Crossbar
from repro.device import DeviceConfig, DeviceVariability, Memristor
from repro.exceptions import ConfigurationError, ShapeError


@pytest.fixture()
def xb(device_config):
    return Crossbar(4, 5, device_config, seed=1)


class TestConstruction:
    def test_validation(self, device_config):
        with pytest.raises(ConfigurationError):
            Crossbar(0, 5, device_config)
        with pytest.raises(ConfigurationError):
            Crossbar(4, 5, device_config, r_tia=0.0)

    def test_starts_fresh(self, xb):
        assert xb.total_pulses() == 0
        assert xb.dead_fraction() == 0.0
        np.testing.assert_array_equal(xb.resistance, xb.r_fresh_max)

    def test_variability_spreads_bounds(self, device_config):
        device_config.variability = DeviceVariability(0.1, 0.1)
        xb = Crossbar(20, 20, device_config, seed=2)
        assert np.std(xb.r_fresh_max) > 0


class TestProgramming:
    def test_program_shape_check(self, xb):
        with pytest.raises(ShapeError):
            xb.program(np.full((2, 2), 5e4))

    def test_program_rejects_nonpositive(self, xb):
        targets = np.full(xb.shape, 5e4)
        targets[0, 0] = -1.0
        with pytest.raises(ConfigurationError):
            xb.program(targets)

    def test_program_quantizes(self, xb):
        achieved = xb.program(np.full(xb.shape, 5.47e4))
        levels = xb.grid.resistance_levels
        for value in achieved.ravel():
            assert np.min(np.abs(levels - value)) < 1e-9

    def test_only_changed_skips_pulses(self, xb):
        targets = np.full(xb.shape, 5e4)
        xb.program(targets)
        pulses = xb.total_pulses()
        xb.program(targets)  # nothing changed
        assert xb.total_pulses() == pulses

    def test_only_changed_false_pulses_everything(self, xb):
        targets = np.full(xb.shape, 5e4)
        xb.program(targets)
        pulses = xb.total_pulses()
        xb.program(targets, only_changed=False)
        assert xb.total_pulses() == pulses + xb.rows * xb.cols

    def test_stress_is_current_weighted(self, device_config):
        xb = Crossbar(1, 2, device_config, seed=3)
        targets = np.array([[device_config.r_min, device_config.r_max]])
        xb.program(targets)
        assert xb.stress_time[0, 0] > xb.stress_time[0, 1]

    def test_matches_scalar_memristor(self, device_config):
        """A crossbar entry and a Memristor with the same history agree
        on aged bounds and achieved value."""
        xb = Crossbar(1, 1, device_config, seed=4)
        cell = Memristor(device_config, seed=5)
        for target in (5e4, 2e4, 8e4):
            xb.program(np.array([[target]]), only_changed=False)
            cell.program(target)
        np.testing.assert_allclose(xb.resistance[0, 0], cell.resistance)
        lo_x, hi_x = xb.aged_bounds()
        lo_c, hi_c = cell.aged_bounds()
        assert lo_x[0, 0] == pytest.approx(lo_c)
        assert hi_x[0, 0] == pytest.approx(hi_c)


class TestStepping:
    def test_step_levels(self, xb):
        xb.program(np.full(xb.shape, 5e4))
        before = xb.resistance.copy()
        directions = np.zeros(xb.shape, dtype=int)
        directions[0, 0], directions[1, 1] = 1, -1
        xb.step_levels(directions)
        assert xb.resistance[0, 0] == pytest.approx(before[0, 0] + xb.grid.step)
        assert xb.resistance[1, 1] == pytest.approx(before[1, 1] - xb.grid.step)
        assert xb.resistance[2, 2] == before[2, 2]

    def test_step_levels_validation(self, xb):
        with pytest.raises(ShapeError):
            xb.step_levels(np.zeros((2, 2), dtype=int))
        bad = np.zeros(xb.shape, dtype=int)
        bad[0, 0] = 5
        with pytest.raises(ConfigurationError):
            xb.step_levels(bad)

    def test_step_conductance_moves_conductance(self, xb):
        xb.program(np.full(xb.shape, 5e4))
        g_before = xb.conductances().copy()
        directions = np.zeros(xb.shape, dtype=int)
        directions[0, 0] = 1
        xb.step_conductance(directions, fraction=0.5)
        g_after = xb.conductances()
        g_step = (xb.config.g_max - xb.config.g_min) / (xb.grid.n_levels - 1)
        assert g_after[0, 0] - g_before[0, 0] == pytest.approx(0.5 * g_step, rel=1e-6)

    def test_step_conductance_validation(self, xb):
        with pytest.raises(ConfigurationError):
            xb.step_conductance(np.zeros(xb.shape, dtype=int), fraction=0.0)

    def test_steps_age_devices(self, xb):
        xb.program(np.full(xb.shape, 5e4))
        pulses = xb.total_pulses()
        directions = np.ones(xb.shape, dtype=int)
        xb.step_conductance(directions)
        assert xb.total_pulses() == pulses + xb.rows * xb.cols


class TestAgingLifecycle:
    def test_heavy_programming_kills_devices(self, device_config):
        xb = Crossbar(3, 3, device_config, seed=6)
        low = np.full((3, 3), device_config.r_min)
        high = np.full((3, 3), device_config.r_max)
        for _ in range(200):
            xb.program(low, only_changed=False)
            if xb.dead_fraction() == 1.0:
                break
        assert xb.dead_fraction() == 1.0
        # Dead devices ignore further programming.
        frozen = xb.resistance.copy()
        xb.program(high, only_changed=False)
        np.testing.assert_array_equal(xb.resistance, frozen)

    def test_usable_level_counts_decrease(self, device_config):
        xb = Crossbar(2, 2, device_config, seed=7)
        n0 = xb.usable_level_counts().min()
        for _ in range(40):
            xb.program(np.full((2, 2), device_config.r_min), only_changed=False)
        assert xb.usable_level_counts().max() < n0


class TestDrift:
    def test_drift_moves_values_without_stress(self, xb):
        xb.program(np.full(xb.shape, 5e4))
        pulses = xb.total_pulses()
        before = xb.resistance.copy()
        xb.apply_drift(0.1)
        assert xb.total_pulses() == pulses
        assert not np.allclose(xb.resistance, before)

    def test_drift_zero_is_noop(self, xb):
        xb.program(np.full(xb.shape, 5e4))
        before = xb.resistance.copy()
        xb.apply_drift(0.0)
        np.testing.assert_array_equal(xb.resistance, before)

    def test_drift_stays_in_window(self, xb):
        xb.program(np.full(xb.shape, 5e4))
        xb.apply_drift(2.0)  # extreme drift
        lo, hi = xb.aged_bounds()
        assert np.all(xb.resistance >= lo) and np.all(xb.resistance <= hi)

    def test_drift_validates(self, xb):
        with pytest.raises(ConfigurationError):
            xb.apply_drift(-0.1)


class TestVmm:
    def test_matches_matrix_product(self, xb):
        xb.program(np.full(xb.shape, 2e4))
        v = np.ones(xb.rows)
        out = xb.vmm(v)
        expected = v @ (1.0 / xb.resistance) * xb.r_tia
        np.testing.assert_allclose(out, expected)

    def test_batched_input(self, xb, rng):
        xb.program(np.full(xb.shape, 3e4))
        v = rng.normal(size=(7, xb.rows))
        assert xb.vmm(v).shape == (7, xb.cols)

    def test_width_check(self, xb):
        with pytest.raises(ShapeError):
            xb.vmm(np.ones(xb.rows + 1))

    def test_linearity(self, xb, rng):
        """Column currents sum linearly — the property that forces a
        common conductance range in the mapping."""
        xb.program(rng.uniform(2e4, 8e4, xb.shape))
        a = rng.normal(size=xb.rows)
        b = rng.normal(size=xb.rows)
        np.testing.assert_allclose(xb.vmm(a + b), xb.vmm(a) + xb.vmm(b), atol=1e-9)


class TestReadout:
    def test_read_noise(self):
        cfg = DeviceConfig(write_noise=0.0, read_noise=0.05)
        xb = Crossbar(3, 3, cfg, seed=8)
        xb.program(np.full((3, 3), 5e4))
        stored = xb.resistance.copy()
        a = xb.read_resistances()
        b = xb.read_resistances()
        assert not np.allclose(a, b)
        # Reading never mutates the programmed state.
        np.testing.assert_array_equal(xb.resistance, stored)
