"""Unit tests for the deterministic RNG plumbing."""

import numpy as np

from repro.rng import derive_rng, ensure_rng, spawn_rng


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRng:
    def test_child_differs_from_parent_stream(self):
        parent = ensure_rng(7)
        child = spawn_rng(parent)
        assert not np.array_equal(child.random(4), ensure_rng(7).random(4))

    def test_keyed_children_decorrelated(self):
        parent = ensure_rng(7)
        a = spawn_rng(parent, "alpha").random(8)
        parent2 = ensure_rng(7)
        b = spawn_rng(parent2, "beta").random(8)
        assert not np.array_equal(a, b)

    def test_same_key_same_parent_state_reproducible(self):
        a = spawn_rng(ensure_rng(9), "x").random(4)
        b = spawn_rng(ensure_rng(9), "x").random(4)
        np.testing.assert_array_equal(a, b)


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(123, "hw-t+t").random(6)
        b = derive_rng(123, "hw-t+t").random(6)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = derive_rng(123, "hw-t+t").random(6)
        b = derive_rng(123, "hw-st+t").random(6)
        assert not np.array_equal(a, b)

    def test_different_entropy_differs(self):
        a = derive_rng(1, "k").random(6)
        b = derive_rng(2, "k").random(6)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        """The property the experiment framework relies on: deriving
        key B first must not change key A's stream."""
        a_first = derive_rng(55, "a").random(4)
        _ = derive_rng(55, "b").random(4)
        a_second = derive_rng(55, "a").random(4)
        np.testing.assert_array_equal(a_first, a_second)
