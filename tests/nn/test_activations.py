"""Unit tests for activation functions (values + analytic derivatives)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.activations import (
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)


def numeric_jacobian_diag(fn, x, eps=1e-6):
    """Diagonal of the Jacobian for elementwise activations."""
    return (fn.forward(x + eps) - fn.forward(x - eps)) / (2 * eps)


ELEMENTWISE = [Identity(), ReLU(), LeakyReLU(0.1), Sigmoid(), Tanh()]


class TestForwardValues:
    def test_relu_clamps_negative(self):
        out = ReLU().forward(np.array([-2.0, 0.0, 3.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 3.0])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1).forward(np.array([-10.0, 10.0]))
        np.testing.assert_allclose(out, [-1.0, 10.0])

    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ConfigurationError):
            LeakyReLU(-0.5)

    def test_sigmoid_extremes_are_stable(self):
        out = Sigmoid().forward(np.array([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_tanh_matches_numpy(self, rng):
        x = rng.normal(size=20)
        np.testing.assert_allclose(Tanh().forward(x), np.tanh(x))

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(8, 5)) * 50
        p = Softmax().forward(x)
        np.testing.assert_allclose(p.sum(axis=1), np.ones(8))
        assert np.all(p >= 0)


class TestBackwardMatchesNumeric:
    @pytest.mark.parametrize("fn", ELEMENTWISE, ids=lambda f: f.name)
    def test_elementwise_derivative(self, fn, rng):
        # Avoid the ReLU kink at exactly 0.
        x = rng.normal(size=50)
        x[np.abs(x) < 1e-3] = 0.1
        y = fn.forward(x)
        grad = fn.backward(x, y, np.ones_like(x))
        np.testing.assert_allclose(grad, numeric_jacobian_diag(fn, x), atol=1e-5)

    def test_softmax_full_jacobian(self, rng):
        fn = Softmax()
        x = rng.normal(size=(1, 4))
        upstream = rng.normal(size=(1, 4))
        y = fn.forward(x)
        analytic = fn.backward(x, y, upstream)
        eps = 1e-6
        numeric = np.zeros_like(x)
        for j in range(4):
            xp, xm = x.copy(), x.copy()
            xp[0, j] += eps
            xm[0, j] -= eps
            numeric[0, j] = np.sum(upstream * (fn.forward(xp) - fn.forward(xm))) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_activation("relu"), ReLU)
        assert isinstance(get_activation("linear"), Identity)

    def test_passthrough(self):
        fn = Tanh()
        assert get_activation(fn) is fn

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_activation("swish9000")
