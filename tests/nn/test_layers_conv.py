"""Unit tests for Conv2D and the im2col machinery."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers.conv import Conv2D, col2im, im2col


def reference_conv(x, w, b, stride=1, padding=0):
    """Naive direct convolution for cross-checking."""
    n, c, h, wd = x.shape
    oc, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wd + 2 * padding - kw) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for ni in range(n):
        for oi in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = x[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, oi, i, j] = np.sum(patch * w[oi]) + b[oi]
    return out


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, 3, 3)
        assert cols.shape == (2 * 4 * 4, 3 * 3 * 3)

    def test_roundtrip_counts_overlaps(self, rng):
        """col2im(im2col(x)) multiplies each pixel by its window count."""
        x = np.ones((1, 1, 4, 4))
        cols = im2col(x, 2, 2)
        back = col2im(cols, x.shape, 2, 2)
        # Corner pixels appear in 1 window, edges 2, interior 4.
        assert back[0, 0, 0, 0] == 1
        assert back[0, 0, 0, 1] == 2
        assert back[0, 0, 1, 1] == 4

    def test_stride_and_padding(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        cols = im2col(x, 3, 3, stride=2, padding=1)
        oh = (5 + 2 - 3) // 2 + 1
        assert cols.shape == (oh * oh, 2 * 9)


class TestConv2D:
    def test_validation(self):
        for bad in (dict(filters=0, kernel_size=3), dict(filters=2, kernel_size=0),
                    dict(filters=2, kernel_size=3, stride=0),
                    dict(filters=2, kernel_size=3, padding=-1)):
            with pytest.raises(ConfigurationError):
                Conv2D(**bad)

    def test_rejects_flat_input(self, rng):
        with pytest.raises(ShapeError):
            Conv2D(2, 3).build((10,), rng)

    def test_rejects_kernel_larger_than_input(self, rng):
        with pytest.raises(ShapeError):
            Conv2D(2, 7).build((1, 5, 5), rng)

    def test_output_shape_with_padding(self, rng):
        layer = Conv2D(4, 3, padding=1)
        layer.build((2, 8, 8), rng)
        assert layer.output_shape() == (4, 8, 8)

    def test_forward_matches_reference(self, rng):
        layer = Conv2D(3, 3, stride=2, padding=1)
        layer.build((2, 7, 7), rng)
        x = rng.normal(size=(2, 2, 7, 7))
        expected = reference_conv(x, layer.params["W"], layer.params["b"], 2, 1)
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-10)

    def test_backward_gradients_numeric(self, rng):
        layer = Conv2D(2, 3)
        layer.build((1, 5, 5), rng)
        x = rng.normal(size=(2, 1, 5, 5))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        dx = layer.backward(2.0 * out)
        analytic_w = layer.grads["W"].copy()

        eps = 1e-6
        w = layer.params["W"]
        numeric_w = np.zeros_like(w)
        it = np.nditer(w, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = w[idx]
            w[idx] = orig + eps
            plus = loss()
            w[idx] = orig - eps
            minus = loss()
            w[idx] = orig
            numeric_w[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(analytic_w, numeric_w, atol=1e-4)

        numeric_x = np.zeros_like(x)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x[idx]
            x[idx] = orig + eps
            plus = loss()
            x[idx] = orig - eps
            minus = loss()
            x[idx] = orig
            numeric_x[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(dx, numeric_x, atol=1e-4)

    def test_regularized_weights_only(self, rng):
        layer = Conv2D(2, 3)
        layer.build((1, 5, 5), rng)
        assert layer.regularized == ["W"]
