"""Unit tests for the Dense layer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers.dense import Dense


@pytest.fixture()
def built_layer(rng):
    layer = Dense(3)
    layer.build((5,), rng)
    return layer


class TestConstruction:
    def test_rejects_zero_units(self):
        with pytest.raises(ConfigurationError):
            Dense(0)

    def test_build_allocates_params(self, built_layer):
        assert built_layer.params["W"].shape == (5, 3)
        assert built_layer.params["b"].shape == (3,)
        assert built_layer.num_params() == 18

    def test_output_shape(self, built_layer):
        assert built_layer.output_shape() == (3,)

    def test_rejects_image_input(self, rng):
        with pytest.raises(ShapeError):
            Dense(3).build((1, 8, 8), rng)

    def test_regularized_is_weights_only(self, built_layer):
        assert built_layer.regularized == ["W"]

    def test_no_bias_variant(self, rng):
        layer = Dense(3, use_bias=False)
        layer.build((5,), rng)
        assert "b" not in layer.params


class TestForwardBackward:
    def test_forward_is_affine(self, built_layer, rng):
        x = rng.normal(size=(4, 5))
        expected = x @ built_layer.params["W"] + built_layer.params["b"]
        np.testing.assert_allclose(built_layer.forward(x), expected)

    def test_backward_input_gradient(self, built_layer, rng):
        x = rng.normal(size=(4, 5))
        built_layer.forward(x)
        upstream = rng.normal(size=(4, 3))
        dx = built_layer.backward(upstream)
        np.testing.assert_allclose(dx, upstream @ built_layer.params["W"].T)

    def test_backward_weight_gradient(self, built_layer, rng):
        x = rng.normal(size=(4, 5))
        built_layer.forward(x)
        upstream = rng.normal(size=(4, 3))
        built_layer.backward(upstream)
        np.testing.assert_allclose(built_layer.grads["W"], x.T @ upstream)
        np.testing.assert_allclose(built_layer.grads["b"], upstream.sum(axis=0))

    def test_set_param_shape_check(self, built_layer):
        with pytest.raises(ValueError):
            built_layer.set_param("W", np.zeros((2, 2)))

    def test_set_param_in_place(self, built_layer):
        ref = built_layer.params["W"]
        built_layer.set_param("W", np.ones((5, 3)))
        assert built_layer.params["W"] is ref
        np.testing.assert_array_equal(ref, np.ones((5, 3)))
