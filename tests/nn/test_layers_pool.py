"""Unit tests for pooling layers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers.pool import AvgPool2D, MaxPool2D


class TestValidation:
    def test_rejects_bad_pool_size(self):
        with pytest.raises(ConfigurationError):
            MaxPool2D(0)

    def test_rejects_flat_input(self, rng):
        with pytest.raises(ShapeError):
            MaxPool2D(2).build((10,), rng)

    def test_rejects_window_larger_than_input(self, rng):
        with pytest.raises(ShapeError):
            MaxPool2D(4).build((1, 3, 3), rng)

    def test_default_stride_equals_pool(self):
        assert MaxPool2D(3).stride == 3


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer = MaxPool2D(2)
        layer.build((1, 4, 4))
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2D(2)
        layer.build((1, 4, 4))
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer.forward(x)
        dx = layer.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((1, 1, 4, 4))
        for i, j in [(1, 1), (1, 3), (3, 1), (3, 3)]:
            expected[0, 0, i, j] = 1.0
        np.testing.assert_array_equal(dx, expected)

    def test_overlapping_windows_accumulate(self, rng):
        layer = MaxPool2D(2, stride=1)
        layer.build((1, 3, 3))
        x = np.zeros((1, 1, 3, 3))
        x[0, 0, 1, 1] = 5.0  # center wins every window
        layer.forward(x)
        dx = layer.backward(np.ones((1, 1, 2, 2)))
        assert dx[0, 0, 1, 1] == 4.0

    def test_gradient_numeric(self, rng):
        layer = MaxPool2D(2)
        layer.build((2, 4, 4))
        x = rng.normal(size=(2, 2, 4, 4))
        out = layer.forward(x)
        dx = layer.backward(2.0 * out)
        eps = 1e-6
        numeric = np.zeros_like(x)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x[idx]
            x[idx] = orig + eps
            plus = float(np.sum(layer.forward(x) ** 2))
            x[idx] = orig - eps
            minus = float(np.sum(layer.forward(x) ** 2))
            x[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(dx, numeric, atol=1e-4)


class TestAvgPool:
    def test_forward_values(self):
        layer = AvgPool2D(2)
        layer.build((1, 4, 4))
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_backward_spreads_uniformly(self):
        layer = AvgPool2D(2)
        layer.build((1, 4, 4))
        x = np.zeros((1, 1, 4, 4))
        layer.forward(x)
        dx = layer.backward(np.ones((1, 1, 2, 2)))
        np.testing.assert_allclose(dx, np.full((1, 1, 4, 4), 0.25))

    def test_mean_preserved(self, rng):
        layer = AvgPool2D(2)
        layer.build((3, 6, 6))
        x = rng.normal(size=(2, 3, 6, 6))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(), x.mean(), atol=1e-12)
