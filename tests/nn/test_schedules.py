"""Unit tests for learning-rate schedules."""

import pytest

from repro.exceptions import ConfigurationError
from repro.nn.schedules import ConstantLR, CosineLR, ExponentialLR, StepLR


class TestConstant:
    def test_constant(self):
        s = ConstantLR(0.01)
        assert s(0) == s(100) == 0.01

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ConstantLR(0.0)


class TestStep:
    def test_decays_every_step_size(self):
        s = StepLR(1.0, step_size=10, gamma=0.1)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StepLR(1.0, step_size=0)
        with pytest.raises(ConfigurationError):
            StepLR(1.0, step_size=5, gamma=0.0)


class TestExponential:
    def test_geometric_decay(self):
        s = ExponentialLR(1.0, gamma=0.5)
        assert s(3) == pytest.approx(0.125)

    def test_gamma_one_is_constant(self):
        s = ExponentialLR(0.2, gamma=1.0)
        assert s(50) == 0.2


class TestCosine:
    def test_endpoints(self):
        s = CosineLR(1.0, total_epochs=10, min_lr=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(10) == pytest.approx(0.1)

    def test_midpoint(self):
        s = CosineLR(1.0, total_epochs=10, min_lr=0.0)
        assert s(5) == pytest.approx(0.5)

    def test_clamps_beyond_horizon(self):
        s = CosineLR(1.0, total_epochs=10, min_lr=0.1)
        assert s(50) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CosineLR(1.0, total_epochs=0)
        with pytest.raises(ConfigurationError):
            CosineLR(0.1, total_epochs=5, min_lr=0.5)
