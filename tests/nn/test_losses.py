"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.losses import HingeLoss, MeanSquaredError, SoftmaxCrossEntropy


def numeric_grad(loss, pred, target, eps=1e-6):
    grad = np.zeros_like(pred)
    it = np.nditer(pred, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = pred[idx]
        pred[idx] = orig + eps
        plus = loss.value(pred, target)
        pred[idx] = orig - eps
        minus = loss.value(pred, target)
        pred[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


@pytest.fixture()
def classification_batch(rng):
    pred = rng.normal(size=(6, 4))
    target = np.eye(4)[rng.integers(0, 4, 6)]
    return pred, target


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        loss = SoftmaxCrossEntropy()
        target = np.eye(3)
        pred = 100.0 * target
        assert loss.value(pred, target) < 1e-6

    def test_uniform_prediction_is_log_classes(self):
        loss = SoftmaxCrossEntropy()
        pred = np.zeros((5, 4))
        target = np.eye(4)[np.zeros(5, dtype=int)]
        np.testing.assert_allclose(loss.value(pred, target), np.log(4), rtol=1e-6)

    def test_gradient_matches_numeric(self, classification_batch):
        loss = SoftmaxCrossEntropy()
        pred, target = classification_batch
        np.testing.assert_allclose(
            loss.gradient(pred, target), numeric_grad(loss, pred, target), atol=1e-6
        )

    def test_gradient_rows_sum_to_zero(self, classification_batch):
        loss = SoftmaxCrossEntropy()
        pred, target = classification_batch
        np.testing.assert_allclose(
            loss.gradient(pred, target).sum(axis=1), np.zeros(len(pred)), atol=1e-12
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            SoftmaxCrossEntropy().value(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_probabilities_stable_for_large_logits(self):
        p = SoftmaxCrossEntropy.probabilities(np.array([[1e5, 0.0]]))
        assert np.isfinite(p).all()
        np.testing.assert_allclose(p[0, 0], 1.0)


class TestMeanSquaredError:
    def test_zero_for_exact(self, rng):
        x = rng.normal(size=(3, 3))
        assert MeanSquaredError().value(x, x.copy()) == 0.0

    def test_known_value(self):
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        assert MeanSquaredError().value(pred, target) == pytest.approx(2.5)

    def test_gradient_matches_numeric(self, rng):
        loss = MeanSquaredError()
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            loss.gradient(pred, target), numeric_grad(loss, pred, target), atol=1e-6
        )


class TestHingeLoss:
    def test_zero_when_margin_satisfied(self):
        loss = HingeLoss(margin=1.0)
        pred = np.array([[5.0, 0.0, 0.0]])
        target = np.array([[1.0, 0.0, 0.0]])
        assert loss.value(pred, target) == 0.0

    def test_penalizes_violations(self):
        loss = HingeLoss(margin=1.0)
        pred = np.array([[0.0, 0.5, 0.0]])
        target = np.array([[1.0, 0.0, 0.0]])
        assert loss.value(pred, target) == pytest.approx(1.5 + 1.0)

    def test_gradient_matches_numeric(self, rng):
        loss = HingeLoss()
        pred = rng.normal(size=(5, 4))
        target = np.eye(4)[rng.integers(0, 4, 5)]
        np.testing.assert_allclose(
            loss.gradient(pred, target), numeric_grad(loss, pred, target), atol=1e-6
        )
