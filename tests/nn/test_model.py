"""Unit tests for the Sequential model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import (
    Activation,
    Adam,
    Dense,
    L2Regularizer,
    Sequential,
    SkewedL2Regularizer,
)
from repro.nn.schedules import StepLR


@pytest.fixture()
def tiny_model():
    return Sequential(
        [Dense(8), Activation("relu"), Dense(3)], optimizer=Adam(0.01), seed=7
    ).build((4,))


@pytest.fixture()
def batch(rng):
    x = rng.normal(size=(16, 4))
    y = np.eye(3)[rng.integers(0, 3, 16)]
    return x, y


class TestConstruction:
    def test_requires_layers(self):
        with pytest.raises(ConfigurationError):
            Sequential([])

    def test_forward_before_build_raises(self):
        model = Sequential([Dense(2)])
        with pytest.raises(ConfigurationError, match="not built"):
            model.forward(np.zeros((1, 4)))

    def test_summary_lists_layers(self, tiny_model):
        text = tiny_model.summary()
        assert "Dense" in text and "total params" in text

    def test_num_params(self, tiny_model):
        assert tiny_model.num_params() == (4 * 8 + 8) + (8 * 3 + 3)

    def test_weighted_layers(self, tiny_model):
        assert [i for i, _l in tiny_model.weighted_layers()] == [0, 2]


class TestRegularizers:
    def test_single_regularizer_applies_to_all(self, tiny_model):
        tiny_model.set_regularizers(L2Regularizer(0.1))
        assert tiny_model.regularizer_for(0) is not None
        assert tiny_model.regularizer_for(2) is not None
        assert tiny_model.regularization_penalty() > 0

    def test_per_layer_mapping(self, tiny_model):
        reg = SkewedL2Regularizer(0.0, 1.0, 0.1)
        tiny_model.set_regularizers({0: reg})
        assert tiny_model.regularizer_for(0) is reg
        assert tiny_model.regularizer_for(2) is None

    def test_rejects_non_weighted_index(self, tiny_model):
        with pytest.raises(ConfigurationError):
            tiny_model.set_regularizers({1: L2Regularizer()})

    def test_rejects_out_of_range_index(self, tiny_model):
        with pytest.raises(ConfigurationError):
            tiny_model.set_regularizers({99: L2Regularizer()})

    def test_clear(self, tiny_model):
        tiny_model.set_regularizers(L2Regularizer(0.1))
        tiny_model.set_regularizers(None)
        assert tiny_model.regularization_penalty() == 0.0


class TestTraining:
    def test_fit_reduces_loss(self, tiny_model, batch):
        x, y = batch
        history = tiny_model.fit(x, y, epochs=30, batch_size=8)
        assert history.loss[-1] < history.loss[0]
        assert len(history.loss) == 30

    def test_fit_validates_lengths(self, tiny_model, batch):
        x, y = batch
        with pytest.raises(ShapeError):
            tiny_model.fit(x, y[:-1], epochs=1)

    def test_schedule_sets_lr(self, tiny_model, batch):
        x, y = batch
        history = tiny_model.fit(
            x, y, epochs=4, schedule=StepLR(0.1, step_size=2, gamma=0.1)
        )
        assert history.lr == pytest.approx([0.1, 0.1, 0.01, 0.01])

    def test_validation_metrics_recorded(self, tiny_model, batch):
        x, y = batch
        history = tiny_model.fit(x, y, epochs=2, validation_data=(x, y))
        assert len(history.val_accuracy) == 2

    def test_history_last(self, tiny_model, batch):
        x, y = batch
        history = tiny_model.fit(x, y, epochs=2)
        last = history.last()
        assert set(last) >= {"loss", "accuracy", "lr"}


class TestPredictEvaluate:
    def test_predict_shape_and_batching(self, tiny_model, rng):
        x = rng.normal(size=(30, 4))
        out = tiny_model.predict(x, batch_size=7)
        assert out.shape == (30, 3)

    def test_predict_classes(self, tiny_model, rng):
        x = rng.normal(size=(5, 4))
        classes = tiny_model.predict_classes(x)
        assert classes.shape == (5,)
        assert set(classes) <= {0, 1, 2}

    def test_evaluate_consistency(self, tiny_model, batch):
        x, y = batch
        loss, acc = tiny_model.evaluate(x, y)
        assert 0.0 <= acc <= 1.0
        assert loss > 0
        assert tiny_model.score(x, y) == acc


class TestWeightSnapshots:
    def test_roundtrip(self, tiny_model, batch):
        x, y = batch
        snap = tiny_model.get_weights()
        before = tiny_model.predict(x)
        tiny_model.fit(x, y, epochs=3)
        assert not np.allclose(before, tiny_model.predict(x))
        tiny_model.set_weights(snap)
        np.testing.assert_allclose(tiny_model.predict(x), before)

    def test_snapshot_is_a_copy(self, tiny_model):
        snap = tiny_model.get_weights()
        snap[0]["W"][...] = 99.0
        assert not np.any(tiny_model.layers[0].params["W"] == 99.0)

    def test_set_weights_length_check(self, tiny_model):
        with pytest.raises(ShapeError):
            tiny_model.set_weights([])

    def test_all_weight_values_size(self, tiny_model):
        flat = tiny_model.all_weight_values()
        assert flat.size == 4 * 8 + 8 * 3  # weights only, no biases


class TestDeterminism:
    def test_same_seed_same_training(self, batch):
        x, y = batch

        def run():
            m = Sequential(
                [Dense(8), Activation("relu"), Dense(3)], optimizer=Adam(0.01), seed=3
            ).build((4,))
            m.fit(x, y, epochs=5, batch_size=4)
            return m.predict(x)

        np.testing.assert_array_equal(run(), run())
