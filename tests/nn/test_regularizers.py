"""Unit + property tests for the regularizers, especially the paper's
two-segment skewed penalty (Eq. 8-10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.nn.regularizers import (
    L2Regularizer,
    NoRegularizer,
    SkewedL2Regularizer,
    beta_from_std,
)

finite_floats = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


class TestNoRegularizer:
    def test_zero_everything(self, rng):
        w = rng.normal(size=(4, 4))
        reg = NoRegularizer()
        assert reg.penalty(w) == 0.0
        np.testing.assert_array_equal(reg.gradient(w), np.zeros_like(w))


class TestL2:
    def test_known_penalty(self):
        reg = L2Regularizer(lam=0.5)
        w = np.array([1.0, 2.0])
        assert reg.penalty(w) == pytest.approx(2.5)

    def test_gradient(self):
        reg = L2Regularizer(lam=0.5)
        w = np.array([1.0, -2.0])
        np.testing.assert_allclose(reg.gradient(w), [1.0, -2.0])

    def test_rejects_negative_lambda(self):
        with pytest.raises(ConfigurationError):
            L2Regularizer(-1.0)


class TestSkewedL2:
    def test_rejects_lambda1_below_lambda2(self):
        with pytest.raises(ConfigurationError, match="lambda1 >= lambda2"):
            SkewedL2Regularizer(beta=0.0, lambda1=0.1, lambda2=0.2)

    def test_rejects_negative_penalties(self):
        with pytest.raises(ConfigurationError):
            SkewedL2Regularizer(beta=0.0, lambda1=-0.1, lambda2=-0.2)

    def test_penalty_is_zero_at_beta(self):
        reg = SkewedL2Regularizer(beta=0.3, lambda1=1.0, lambda2=0.1)
        assert reg.penalty(np.array([0.3])) == 0.0

    def test_left_side_penalized_more(self):
        """Eq. (9)-(10): same distance, lambda1 applies left of beta."""
        reg = SkewedL2Regularizer(beta=0.0, lambda1=1.0, lambda2=0.1)
        left = reg.penalty(np.array([-0.5]))
        right = reg.penalty(np.array([0.5]))
        assert left == pytest.approx(10 * right)

    def test_gradient_points_towards_beta(self):
        reg = SkewedL2Regularizer(beta=0.2, lambda1=1.0, lambda2=0.5)
        g = reg.gradient(np.array([-1.0, 1.0]))
        assert g[0] < 0  # gradient descent moves -g: pushes -1.0 up
        assert g[1] > 0  # pushes 1.0 down

    def test_gradient_matches_numeric(self, rng):
        reg = SkewedL2Regularizer(beta=0.1, lambda1=2.0, lambda2=0.3)
        w = rng.normal(size=12)
        w[np.abs(w - 0.1) < 1e-3] += 0.01  # avoid the kink at beta
        eps = 1e-7
        numeric = np.zeros_like(w)
        for i in range(w.size):
            wp, wm = w.copy(), w.copy()
            wp[i] += eps
            wm[i] -= eps
            numeric[i] = (reg.penalty(wp) - reg.penalty(wm)) / (2 * eps)
        np.testing.assert_allclose(reg.gradient(w), numeric, atol=1e-5)

    def test_penalty_profile_shape(self):
        """The Fig. 7 profile: steep left branch, shallow right branch."""
        reg = SkewedL2Regularizer(beta=0.0, lambda1=5.0, lambda2=0.5)
        xs = np.linspace(-1, 1, 101)
        prof = reg.penalty_profile(xs)
        assert prof[0] > prof[-1]  # same |distance|, left costs more
        assert prof[50] == pytest.approx(0.0)  # zero at beta

    @given(
        beta=finite_floats,
        l1=st.floats(0.1, 10.0),
        ratio=st.floats(0.0, 1.0),
        w=st.lists(finite_floats, min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_penalty_nonnegative_and_consistent(self, beta, l1, ratio, w):
        """Property: penalty >= 0 and equals the sum of the two segments."""
        l2 = l1 * ratio
        reg = SkewedL2Regularizer(beta=beta, lambda1=l1, lambda2=l2)
        w = np.asarray(w)
        total = reg.penalty(w)
        assert total >= 0.0
        left = w[w < beta]
        right = w[w >= beta]
        manual = l1 * np.sum((left - beta) ** 2) + l2 * np.sum((right - beta) ** 2)
        assert total == pytest.approx(manual, rel=1e-9, abs=1e-12)

    @given(
        w=st.lists(finite_floats, min_size=2, max_size=30),
        l1=st.floats(0.5, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_gradient_step_reduces_penalty(self, w, l1):
        """Property: a small step against the gradient never increases
        the penalty (convexity of the two-segment quadratic)."""
        reg = SkewedL2Regularizer(beta=0.0, lambda1=l1, lambda2=l1 / 10)
        w = np.asarray(w)
        before = reg.penalty(w)
        after = reg.penalty(w - 1e-4 * reg.gradient(w))
        assert after <= before + 1e-9


class TestBetaFromStd:
    def test_scales_standard_deviation(self, rng):
        w = rng.normal(0.0, 2.0, size=10_000)
        assert beta_from_std(w, 0.5) == pytest.approx(1.0, rel=0.05)

    def test_negative_scale_gives_negative_beta(self, rng):
        w = rng.normal(size=1000)
        assert beta_from_std(w, -1.0) < 0
