"""Unit tests for weight initializers."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.initializers import (
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    LeCunNormal,
    NormalInit,
    UniformInit,
    ZerosInit,
    compute_fans,
    get_initializer,
)


class TestComputeFans:
    def test_dense_kernel(self):
        assert compute_fans((30, 20)) == (30, 20)

    def test_conv_kernel(self):
        # (out_ch, in_ch, kh, kw): fan_in = in_ch*kh*kw, fan_out = out_ch*kh*kw
        assert compute_fans((8, 3, 5, 5)) == (75, 200)

    def test_bias_vector(self):
        assert compute_fans((7,)) == (7, 7)

    def test_empty_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_fans(())


class TestBasicInitializers:
    def test_zeros(self):
        out = ZerosInit()((3, 4))
        assert out.shape == (3, 4)
        assert np.all(out == 0.0)

    def test_normal_statistics(self, rng):
        out = NormalInit(std=0.5, mean=2.0)((200, 200), rng)
        assert abs(out.mean() - 2.0) < 0.02
        assert abs(out.std() - 0.5) < 0.02

    def test_normal_rejects_negative_std(self):
        with pytest.raises(ConfigurationError):
            NormalInit(std=-1.0)

    def test_uniform_bounds(self, rng):
        out = UniformInit(-0.2, 0.3)((100, 100), rng)
        assert out.min() >= -0.2
        assert out.max() < 0.3

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformInit(1.0, -1.0)


class TestVarianceScaling:
    @pytest.mark.parametrize(
        "cls,expected_std_fn",
        [
            (GlorotNormal, lambda fi, fo: math.sqrt(2.0 / (fi + fo))),
            (HeNormal, lambda fi, fo: math.sqrt(2.0 / fi)),
            (LeCunNormal, lambda fi, fo: math.sqrt(1.0 / fi)),
        ],
    )
    def test_normal_family_std(self, cls, expected_std_fn, rng):
        shape = (400, 300)
        out = cls()(shape, rng)
        assert abs(out.std() - expected_std_fn(*shape)) < 0.01

    @pytest.mark.parametrize("cls", [GlorotUniform, HeUniform])
    def test_uniform_family_is_bounded_and_centered(self, cls, rng):
        out = cls()((300, 200), rng)
        assert abs(out.mean()) < 0.005
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = HeNormal()((5, 5), np.random.default_rng(9))
        b = HeNormal()((5, 5), np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_initializer("he_normal"), HeNormal)
        assert isinstance(get_initializer("GLOROT_UNIFORM"), GlorotUniform)

    def test_passthrough(self):
        init = HeNormal()
        assert get_initializer(init) is init

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown initializer"):
            get_initializer("nope")
