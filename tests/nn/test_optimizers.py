"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.optimizers import SGD, Adam, Momentum, RMSProp


def quadratic_descent(optimizer, steps=500, start=5.0):
    """Minimize f(x) = x^2 and return the final |x|."""
    x = np.array([start])
    for _ in range(steps):
        optimizer.begin_step()
        optimizer.update(x, 2.0 * x)
    return float(np.abs(x[0]))


class TestValidation:
    @pytest.mark.parametrize("cls", [SGD, Momentum, RMSProp, Adam])
    def test_rejects_nonpositive_lr(self, cls):
        with pytest.raises(ConfigurationError):
            cls(lr=0.0)

    def test_momentum_range(self):
        with pytest.raises(ConfigurationError):
            Momentum(momentum=1.0)

    def test_adam_beta_range(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)

    def test_rmsprop_rho_range(self):
        with pytest.raises(ConfigurationError):
            RMSProp(rho=-0.1)


class TestConvergence:
    @pytest.mark.parametrize(
        "optimizer",
        [SGD(0.1), Momentum(0.05, 0.9), Momentum(0.05, 0.9, nesterov=True),
         RMSProp(0.02), Adam(0.3)],
        ids=["sgd", "momentum", "nesterov", "rmsprop", "adam"],
    )
    def test_minimizes_quadratic(self, optimizer):
        assert quadratic_descent(optimizer) < 1e-2


class TestMechanics:
    def test_sgd_step_is_lr_times_grad(self):
        opt = SGD(0.5)
        x = np.array([1.0, 2.0])
        opt.update(x, np.array([1.0, -1.0]))
        np.testing.assert_allclose(x, [0.5, 2.5])

    def test_momentum_accumulates_velocity(self):
        opt = Momentum(lr=1.0, momentum=0.5)
        x = np.array([0.0])
        opt.update(x, np.array([1.0]))  # v=-1, x=-1
        opt.update(x, np.array([1.0]))  # v=-1.5, x=-2.5
        np.testing.assert_allclose(x, [-2.5])

    def test_adam_first_step_is_approximately_lr(self):
        opt = Adam(lr=0.1)
        x = np.array([1.0])
        opt.begin_step()
        opt.update(x, np.array([1e-4]))
        # Bias correction makes the first step ~lr regardless of grad scale.
        assert x[0] == pytest.approx(1.0 - 0.1, abs=1e-3)

    def test_state_is_per_parameter(self):
        opt = Adam(0.1)
        a, b = np.array([1.0]), np.array([1.0])
        opt.begin_step()
        opt.update(a, np.array([1.0]))
        assert opt.state_for(a) and not opt.state_for(b)

    def test_reset_clears_state(self):
        opt = Momentum(0.1)
        x = np.array([1.0])
        opt.begin_step()
        opt.update(x, np.array([1.0]))
        opt.reset()
        assert opt.iterations == 0
        assert opt.state_for(x) == {}
