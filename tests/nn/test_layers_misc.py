"""Unit tests for Flatten, Dropout, Activation and BatchNorm layers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers.activation import Activation
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.norm import BatchNorm
from repro.nn.layers.reshape import Flatten


class TestFlatten:
    def test_forward_shape(self, rng):
        layer = Flatten()
        layer.build((3, 4, 5))
        x = rng.normal(size=(2, 3, 4, 5))
        assert layer.forward(x).shape == (2, 60)
        assert layer.output_shape() == (60,)

    def test_backward_restores_shape(self, rng):
        layer = Flatten()
        layer.build((3, 4, 5))
        x = rng.normal(size=(2, 3, 4, 5))
        y = layer.forward(x)
        dx = layer.backward(y)
        np.testing.assert_array_equal(dx, x)


class TestDropout:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)

    def test_inference_is_identity(self, rng):
        layer = Dropout(0.5, seed=1)
        x = rng.normal(size=(10, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_preserves_expectation(self):
        layer = Dropout(0.3, seed=2)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.02

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=3)
        x = np.ones((20, 20))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_zero_rate_is_identity_in_training(self, rng):
        layer = Dropout(0.0)
        x = rng.normal(size=(5, 5))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)


class TestActivationLayer:
    def test_wraps_by_name(self, rng):
        layer = Activation("relu")
        layer.build((4,))
        x = rng.normal(size=(3, 4))
        np.testing.assert_array_equal(layer.forward(x), np.maximum(x, 0))

    def test_backward(self, rng):
        layer = Activation("tanh")
        layer.build((4,))
        x = rng.normal(size=(3, 4))
        y = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, 1 - y * y)


class TestBatchNorm:
    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            BatchNorm(momentum=1.0)

    def test_rejects_2d_samples(self, rng):
        with pytest.raises(ShapeError):
            BatchNorm().build((3, 4), rng)

    def test_training_normalizes_flat(self, rng):
        layer = BatchNorm()
        layer.build((6,), rng)
        x = rng.normal(3.0, 2.0, size=(64, 6))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(6), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), np.ones(6), atol=1e-3)

    def test_training_normalizes_channels(self, rng):
        layer = BatchNorm()
        layer.build((3, 4, 4), rng)
        x = rng.normal(1.0, 3.0, size=(16, 3, 4, 4))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-7)

    def test_running_stats_converge(self, rng):
        layer = BatchNorm(momentum=0.5)
        layer.build((4,), rng)
        for _ in range(30):
            layer.forward(rng.normal(2.0, 1.0, size=(256, 4)), training=True)
        np.testing.assert_allclose(layer.running_mean, np.full(4, 2.0), atol=0.2)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNorm(momentum=0.0)
        layer.build((4,), rng)
        layer.forward(rng.normal(5.0, 1.0, size=(512, 4)), training=True)
        out = layer.forward(np.full((2, 4), 5.0), training=False)
        np.testing.assert_allclose(out, np.zeros((2, 4)), atol=0.2)

    def test_gradient_numeric(self, rng):
        layer = BatchNorm()
        layer.build((3,), rng)
        x = rng.normal(size=(8, 3))

        def loss():
            return float(np.sum(layer.forward(x, training=True) ** 2))

        out = layer.forward(x, training=True)
        dx = layer.backward(2.0 * out)
        eps = 1e-6
        numeric = np.zeros_like(x)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x[idx]
            x[idx] = orig + eps
            plus = loss()
            x[idx] = orig - eps
            minus = loss()
            x[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(dx, numeric, atol=1e-4)
