"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy


class TestAccuracy:
    def test_perfect(self):
        pred = np.eye(3)
        assert accuracy(pred, pred) == 1.0

    def test_with_index_targets(self):
        pred = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(pred, np.array([0, 1])) == 1.0
        assert accuracy(pred, np.array([1, 1])) == 0.5

    def test_empty_is_zero(self):
        assert accuracy(np.empty((0, 3)), np.empty((0, 3))) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros((2, 3, 4)), np.zeros((2, 3, 4)))


class TestTopK:
    def test_top1_equals_accuracy(self, rng):
        pred = rng.normal(size=(20, 5))
        target = rng.integers(0, 5, 20)
        assert top_k_accuracy(pred, target, k=1) == accuracy(pred, target)

    def test_top_all_is_one(self, rng):
        pred = rng.normal(size=(10, 4))
        target = rng.integers(0, 4, 10)
        assert top_k_accuracy(pred, target, k=4) == 1.0

    def test_monotone_in_k(self, rng):
        pred = rng.normal(size=(50, 6))
        target = rng.integers(0, 6, 50)
        values = [top_k_accuracy(pred, target, k=k) for k in range(1, 7)]
        assert values == sorted(values)


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        pred = np.eye(3)
        cm = confusion_matrix(pred, pred, 3)
        np.testing.assert_array_equal(cm, np.eye(3, dtype=int))

    def test_counts_sum_to_samples(self, rng):
        pred = rng.normal(size=(40, 4))
        target = rng.integers(0, 4, 40)
        cm = confusion_matrix(pred, target, 4)
        assert cm.sum() == 40

    def test_rows_are_true_classes(self):
        pred = np.array([[0.0, 1.0]])  # predicted class 1
        target = np.array([0])  # true class 0
        cm = confusion_matrix(pred, target, 2)
        assert cm[0, 1] == 1
