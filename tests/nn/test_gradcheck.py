"""Whole-model gradient checking — validates the backprop engine
end-to-end, including conv/pool stacks and the skewed regularizer."""

import numpy as np

from repro.nn import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Sequential,
    SkewedL2Regularizer,
    check_gradients,
    numerical_gradient,
)
from repro.nn.losses import MeanSquaredError

TOL = 1e-4


def batch_for(model, n, n_classes, rng):
    x = rng.normal(size=(n,) + model.input_shape)
    y = np.eye(n_classes)[rng.integers(0, n_classes, n)]
    return x, y


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([3.0, -2.0])
        grad = numerical_gradient(lambda: float(np.sum(x**2)), x)
        np.testing.assert_allclose(grad, [6.0, -4.0], atol=1e-5)


class TestModelGradients:
    def test_mlp(self, rng):
        model = Sequential([Dense(6), Activation("tanh"), Dense(3)], seed=1).build((4,))
        x, y = batch_for(model, 4, 3, rng)
        errors = check_gradients(model, x, y)
        assert max(errors.values()) < TOL

    def test_mlp_with_skewed_regularizer(self, rng):
        model = Sequential([Dense(6), Activation("tanh"), Dense(3)], seed=2).build((4,))
        model.set_regularizers(SkewedL2Regularizer(beta=-0.05, lambda1=0.1, lambda2=0.01))
        x, y = batch_for(model, 4, 3, rng)
        errors = check_gradients(model, x, y)
        assert max(errors.values()) < TOL

    def test_conv_pool_stack(self, rng):
        model = Sequential(
            [
                Conv2D(3, 3),
                Activation("relu"),
                MaxPool2D(2),
                Flatten(),
                Dense(3),
            ],
            seed=3,
        ).build((1, 6, 6))
        x, y = batch_for(model, 3, 3, rng)
        errors = check_gradients(model, x, y)
        assert max(errors.values()) < 1e-3  # relu kinks allow slightly more

    def test_avgpool_and_padding(self, rng):
        model = Sequential(
            [Conv2D(2, 3, padding=1), Activation("tanh"), AvgPool2D(2), Flatten(), Dense(2)],
            seed=4,
        ).build((1, 4, 4))
        x, y = batch_for(model, 3, 2, rng)
        errors = check_gradients(model, x, y)
        assert max(errors.values()) < TOL

    def test_batchnorm_model(self, rng):
        model = Sequential(
            [Dense(5), BatchNorm(), Activation("tanh"), Dense(2)], seed=5
        ).build((3,))
        x, y = batch_for(model, 6, 2, rng)
        errors = check_gradients(model, x, y)
        assert max(errors.values()) < 1e-3

    def test_mse_head(self, rng):
        model = Sequential(
            [Dense(4), Activation("sigmoid"), Dense(2)], loss=MeanSquaredError(), seed=6
        ).build((3,))
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 2))
        errors = check_gradients(model, x, y)
        assert max(errors.values()) < TOL
