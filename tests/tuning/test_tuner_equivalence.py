"""Equivalence battery: vectorized tuning path vs scalar reference.

ISSUE 6's lock-down suite.  The vectorized lifetime hot loop
(DESIGN.md §11) — batched ``program_pulses`` sweeps, read-reuse
memoization, cached aged bounds — must be **bit-identical** to the
scalar reference path selected by ``REPRO_SCALAR_TUNER``: same
conductances, same pulse/stress bookkeeping, same RNG bit-generator
states, same :class:`TuningResult` down to the accuracy trace.

The property tests drive random configurations (network width, batch
sizes beyond the tuning-set length, amplitude-halving edges,
``pulse_miss``/stuck-at fault injections, dead-device masking, write
noise on/off) through both paths and diff the complete end state.

``HYPOTHESIS_PROFILE=smoke`` shrinks the example count for the CI
kernel-bench smoke job; the default profile runs in the tier-1 suite.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastpath
from repro.core.fastpath import set_vectorized_enabled, vectorized_enabled
from repro.data import make_blobs
from repro.device import DeviceConfig
from repro.device.faults import FaultModel, inject_faults_network
from repro.mapping import MappedNetwork
from repro.nn import Activation, Dense, Sequential
from repro.tuning import OnlineTuner, TuningConfig

MAX_EXAMPLES = 5 if os.environ.get("HYPOTHESIS_PROFILE") == "smoke" else 25

_DATA = make_blobs(n_samples=96, n_classes=3, n_features=4, spread=0.8, seed=3)
_X, _Y = _DATA.x_train[:64], _DATA.y_train[:64]

_MODELS: dict = {}


def _model(hidden: int):
    """Deterministic tiny MLP, cached per width (weights are never
    mutated by mapping/tuning — only the crossbar copies are)."""
    if hidden not in _MODELS:
        _MODELS[hidden] = Sequential(
            [Dense(hidden), Activation("relu"), Dense(3)], seed=50 + hidden
        ).build((4,))
    return _MODELS[hidden]


def _snapshot(network: MappedNetwork, tuner: OnlineTuner, result) -> dict:
    """The complete observable end state of a tuning session."""
    tiles = []
    for layer in network.layers:
        for _rs, _cs, tile in layer.tiles.iter_tiles():
            tiles.append(
                {
                    "resistance": tile.resistance.copy(),
                    "stress_time": tile.stress_time.copy(),
                    "pulse_counts": tile.pulse_counts.copy(),
                    "rng_state": tile._rng.bit_generator.state,
                }
            )
    return {
        "tiles": tiles,
        "tuner_rng_state": tuner._rng.bit_generator.state,
        "result": {
            "converged": result.converged,
            "iterations": result.iterations,
            "final_accuracy": result.final_accuracy,
            "initial_accuracy": result.initial_accuracy,
            "pulses_applied": result.pulses_applied,
            "accuracy_trace": list(result.accuracy_trace),
        },
        "total_pulses": network.total_pulses(),
        "state_version": sum(
            layer.tiles.state_version for layer in network.layers
        ),
    }


def _assert_snapshots_equal(a: dict, b: dict) -> None:
    assert a["result"] == b["result"]
    assert a["tuner_rng_state"] == b["tuner_rng_state"]
    assert a["total_pulses"] == b["total_pulses"]
    assert a["state_version"] == b["state_version"]
    assert len(a["tiles"]) == len(b["tiles"])
    for ta, tb in zip(a["tiles"], b["tiles"]):
        assert np.array_equal(ta["resistance"], tb["resistance"])
        assert np.array_equal(ta["stress_time"], tb["stress_time"])
        assert np.array_equal(ta["pulse_counts"], tb["pulse_counts"])
        assert ta["rng_state"] == tb["rng_state"]


def _run_session(vectorized: bool, params: dict) -> dict:
    """One full map → degrade → tune session under one path."""
    prior = set_vectorized_enabled(vectorized)
    try:
        device = DeviceConfig(
            n_levels=6,
            pulses_to_collapse=60,
            write_noise=params["write_noise"],
            read_noise=0.0,
        )
        network = MappedNetwork(
            _model(params["hidden"]),
            device,
            seed=params["seed"],
            tile_rows=4,
            tile_cols=4,
        )
        network.map_network()
        network.apply_drift(0.4)
        if params["stuck_rate"] > 0:
            inject_faults_network(
                network,
                FaultModel(
                    rate_lrs=params["stuck_rate"] / 2,
                    rate_hrs=params["stuck_rate"] / 2,
                ),
                seed=params["seed"] + 1,
            )
        if params["miss_rate"] > 0:
            for layer in network.layers:
                for _rs, _cs, tile in layer.tiles.iter_tiles():
                    tile.pulse_miss_rate = params["miss_rate"]
        tuner = OnlineTuner(
            TuningConfig(
                target_accuracy=0.999,
                max_iterations=6,
                batch_size=params["batch_size"],
                threshold=params["threshold"],
                decay_after=params["decay_after"],
                min_step_fraction=0.05,
                eval_every=params["eval_every"],
                mask_dead_devices=params["mask_dead"],
            ),
            seed=params["seed"] + 2,
        )
        result = tuner.tune(network, _X, _Y)
        return _snapshot(network, tuner, result)
    finally:
        set_vectorized_enabled(prior)


class TestPathEquivalence:
    """Vectorized and scalar paths end in bit-identical states."""

    @given(
        hidden=st.sampled_from([6, 10]),
        batch_size=st.sampled_from([4, 16, 300]),
        threshold=st.sampled_from([0.0, 0.05, 0.3]),
        decay_after=st.sampled_from([0, 1]),
        eval_every=st.sampled_from([1, 3]),
        write_noise=st.sampled_from([0.0, 0.1]),
        mask_dead=st.booleans(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_clean_array_equivalence(
        self, hidden, batch_size, threshold, decay_after, eval_every,
        write_noise, mask_dead, seed,
    ):
        params = dict(
            hidden=hidden,
            batch_size=batch_size,
            threshold=threshold,
            decay_after=decay_after,
            eval_every=eval_every,
            write_noise=write_noise,
            mask_dead=mask_dead,
            seed=seed,
            stuck_rate=0.0,
            miss_rate=0.0,
        )
        _assert_snapshots_equal(
            _run_session(True, params), _run_session(False, params)
        )

    @given(
        miss_rate=st.sampled_from([0.0, 0.3]),
        stuck_rate=st.sampled_from([0.0, 0.1]),
        write_noise=st.sampled_from([0.0, 0.1]),
        mask_dead=st.booleans(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_faulted_array_equivalence(
        self, miss_rate, stuck_rate, write_noise, mask_dead, seed
    ):
        """Pulse-miss and stuck-at hooks fold into the same masked
        update on both paths: RNG draws and skip decisions line up."""
        params = dict(
            hidden=6,
            batch_size=16,
            threshold=0.05,
            decay_after=2,
            eval_every=1,
            write_noise=write_noise,
            mask_dead=mask_dead,
            seed=seed,
            stuck_rate=stuck_rate,
            miss_rate=miss_rate,
        )
        _assert_snapshots_equal(
            _run_session(True, params), _run_session(False, params)
        )

    def test_amplitude_halving_edge(self):
        """decay_after=1 halves the amplitude on every stale eval all
        the way to the min_step_fraction floor on both paths."""
        params = dict(
            hidden=6,
            batch_size=8,
            threshold=0.0,
            decay_after=1,
            eval_every=1,
            write_noise=0.0,
            mask_dead=False,
            seed=99,
            stuck_rate=0.0,
            miss_rate=0.0,
        )
        _assert_snapshots_equal(
            _run_session(True, params), _run_session(False, params)
        )

    def test_batch_larger_than_tuning_set(self):
        """batch_size > len(x_tune) clamps to the set length; the
        rng.choice draw shape must match on both paths."""
        params = dict(
            hidden=6,
            batch_size=300,
            threshold=0.05,
            decay_after=0,
            eval_every=2,
            write_noise=0.1,
            mask_dead=True,
            seed=7,
            stuck_rate=0.0,
            miss_rate=0.0,
        )
        _assert_snapshots_equal(
            _run_session(True, params), _run_session(False, params)
        )


class TestEnvironmentSwitch:
    """The REPRO_SCALAR_TUNER env var selects the reference path."""

    @pytest.mark.parametrize(
        ("value", "expected"),
        [("1", False), ("true", False), ("0", True), ("", True)],
    )
    def test_env_resolution(self, value, expected, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_TUNER", value)
        prior = fastpath._VECTORIZED
        fastpath._VECTORIZED = None  # force a fresh env read
        try:
            assert vectorized_enabled() is expected
        finally:
            fastpath._VECTORIZED = prior

    def test_set_returns_previous(self):
        first = set_vectorized_enabled(False)
        try:
            assert vectorized_enabled() is False
            assert set_vectorized_enabled(first) is False
        finally:
            set_vectorized_enabled(first)
