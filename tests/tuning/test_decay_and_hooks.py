"""Tests for the tuner's amplitude decay and the lifetime engine's
maintenance-hook extension point."""

import numpy as np

from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
from repro.mapping import MappedNetwork
from repro.tuning import OnlineTuner, TuningConfig


class TestAmplitudeDecay:
    def _scrambled_network(self, trained_mlp, device_config, seed=19):
        network = MappedNetwork(trained_mlp, device_config, seed=seed)
        network.map_network()
        rng = np.random.default_rng(seed)
        for layer in network.layers:
            layer.tiles.program(rng.uniform(1e4, 1e5, layer.matrix_shape))
        return network

    def test_decay_disabled_keeps_amplitude(self, trained_mlp, device_config, blob_dataset):
        """With decay_after=0 the tuner never shrinks the step; the
        config knob must be honoured (behavioural check: both modes
        still run and report)."""
        x = blob_dataset.x_train[:64]
        y = blob_dataset.y_train[:64][np.random.default_rng(0).permutation(64)]
        network = self._scrambled_network(trained_mlp, device_config)
        tuner = OnlineTuner(
            TuningConfig(target_accuracy=0.999, max_iterations=8, decay_after=0),
            seed=1,
        )
        result = tuner.tune(network, x, y)
        assert result.iterations == 8
        assert not result.converged

    def test_decay_helps_convergence_near_target(
        self, trained_mlp, device_config, blob_dataset
    ):
        """Constant large steps orbit the target; decaying amplitude
        settles.  Statistically: with decay enabled the tuner should
        reach a tight target at least as often as without."""
        x, y = blob_dataset.x_train[:96], blob_dataset.y_train[:96]

        def final_accuracy(decay_after: int, seed: int) -> float:
            network = self._scrambled_network(trained_mlp, device_config, seed=seed)
            tuner = OnlineTuner(
                TuningConfig(
                    target_accuracy=0.99,
                    max_iterations=40,
                    step_fraction=1.0,
                    decay_after=decay_after,
                ),
                seed=seed,
            )
            return tuner.tune(network, x, y).final_accuracy

        with_decay = np.mean([final_accuracy(3, s) for s in (1, 2, 3)])
        without = np.mean([final_accuracy(0, s) for s in (1, 2, 3)])
        assert with_decay >= without - 0.02

    def test_min_step_fraction_floor(self):
        cfg = TuningConfig(step_fraction=0.4, min_step_fraction=0.1, decay_after=1)
        assert cfg.min_step_fraction == 0.1


class TestMaintenanceHooks:
    def test_hooks_called_once_per_window(self, trained_mlp, device_config, blob_dataset):
        network = MappedNetwork(trained_mlp, device_config, seed=21)
        network.map_network()
        calls = []

        def hook(net):
            calls.append(net)

        sim = LifetimeSimulator(
            network,
            blob_dataset.x_train[:64],
            blob_dataset.y_train[:64],
            config=LifetimeConfig(
                apps_per_window=100,
                max_windows=4,
                tuning=TuningConfig(target_accuracy=0.5, max_iterations=5),
            ),
            maintenance_hooks=[hook],
            seed=22,
        )
        result = sim.run("hooked")
        assert len(calls) == len(result.windows)
        assert all(c is network for c in calls)

    def test_row_swapper_as_hook(self, trained_mlp, device_config, blob_dataset):
        from repro.mitigation import RowSwapper

        network = MappedNetwork(trained_mlp, device_config, seed=23)
        network.map_network()
        swapper = RowSwapper(threshold=0.0)
        sim = LifetimeSimulator(
            network,
            blob_dataset.x_train[:64],
            blob_dataset.y_train[:64],
            config=LifetimeConfig(
                apps_per_window=100,
                max_windows=3,
                tuning=TuningConfig(target_accuracy=0.8, max_iterations=10),
            ),
            maintenance_hooks=[swapper.apply_to_network],
            seed=24,
        )
        result = sim.run("swapped")
        assert not result.failed or result.windows


class TestFrameworkRepeats:
    def test_repeats_differ_and_are_reproducible(self, blob_dataset):
        from repro.core import AgingAwareFramework, FrameworkConfig, LifetimeConfig
        from repro.device import DeviceConfig
        from repro.training import SkewedTrainingConfig, TrainConfig, build_mlp
        from repro.tuning import TuningConfig as TC

        config = FrameworkConfig(
            device=DeviceConfig(pulses_to_collapse=60, write_noise=0.1),
            train=TrainConfig(epochs=8),
            skewed=SkewedTrainingConfig(pretrain=TrainConfig(epochs=8), skew_epochs=4),
            lifetime=LifetimeConfig(
                apps_per_window=100, max_windows=6, tuning=TC(max_iterations=10)
            ),
            tune_samples=64,
            target_fraction=0.9,
        )
        fw = AgingAwareFramework(
            lambda seed: build_mlp(4, 3, hidden=(12,), seed=seed),
            blob_dataset,
            config,
            seed=31,
        )
        first = fw.run_scenario("t+t", repeat=0)
        again = fw.run_scenario("t+t", repeat=0)
        assert first.lifetime_applications == again.lifetime_applications
        results = fw.run_scenario_repeats("t+t", repeats=2)
        assert len(results) == 2
        assert results[0].lifetime_applications == first.lifetime_applications
