"""Unit tests for the sign-based online tuner (Eq. 5)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mapping import MappedNetwork
from repro.tuning import OnlineTuner, TuningConfig


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(target_accuracy=0.0),
            dict(target_accuracy=1.5),
            dict(max_iterations=0),
            dict(batch_size=0),
            dict(threshold=1.5),
            dict(eval_every=0),
            dict(step_fraction=0.0),
            dict(decay_after=-1),
            dict(min_step_fraction=0.9, step_fraction=0.5),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            TuningConfig(**kwargs)

    def test_defaults_valid(self):
        cfg = TuningConfig()
        assert cfg.max_iterations == 150


class TestTuning:
    def test_already_converged_is_free(self, mapped_mlp, blob_dataset):
        x, y = blob_dataset.x_train[:64], blob_dataset.y_train[:64]
        baseline = mapped_mlp.score(x, y)
        tuner = OnlineTuner(TuningConfig(target_accuracy=baseline - 0.01 or 0.01), seed=1)
        result = tuner.tune(mapped_mlp, x, y)
        assert result.converged
        assert result.iterations == 0
        assert result.pulses_applied == 0

    def test_recovers_after_degradation(self, mapped_mlp, blob_dataset):
        """Deliberately scrambled devices degrade accuracy; tuning
        pulls it back to target with real pulses."""
        x, y = blob_dataset.x_train[:96], blob_dataset.y_train[:96]
        target = min(0.95, mapped_mlp.score(x, y))
        # Scramble the programmed devices: accuracy collapses to chance.
        scramble = np.random.default_rng(17)
        for layer in mapped_mlp.layers:
            layer.tiles.program(scramble.uniform(1e4, 1e5, layer.matrix_shape))
        degraded = mapped_mlp.score(x, y)
        assert degraded < target
        tuner = OnlineTuner(TuningConfig(target_accuracy=target, max_iterations=100), seed=2)
        result = tuner.tune(mapped_mlp, x, y)
        assert result.converged
        assert result.final_accuracy >= target
        assert result.pulses_applied > 0
        assert result.iterations > 0

    def test_failure_reported_within_budget(self, mapped_mlp, blob_dataset, rng):
        """An unreachable target (shuffled labels) exhausts the budget
        and reports non-convergence (the lifetime engine's failure
        signal)."""
        x = blob_dataset.x_train[:64]
        y = blob_dataset.y_train[:64][rng.permutation(64)]
        tuner = OnlineTuner(TuningConfig(target_accuracy=0.99, max_iterations=5), seed=3)
        result = tuner.tune(mapped_mlp, x, y)
        assert not result.converged
        assert result.iterations == 5

    def test_accuracy_trace_recorded(self, mapped_mlp, blob_dataset):
        x, y = blob_dataset.x_train[:64], blob_dataset.y_train[:64]
        mapped_mlp.apply_drift(0.2)
        tuner = OnlineTuner(TuningConfig(target_accuracy=0.95, max_iterations=20), seed=4)
        result = tuner.tune(mapped_mlp, x, y)
        assert len(result.accuracy_trace) >= 1
        assert result.accuracy_trace[0] == result.initial_accuracy

    def test_length_mismatch(self, mapped_mlp, blob_dataset):
        tuner = OnlineTuner()
        with pytest.raises(ConfigurationError):
            tuner.tune(mapped_mlp, blob_dataset.x_train[:10], blob_dataset.y_train[:9])

    def test_tuning_applies_aging_stress(self, mapped_mlp, blob_dataset):
        x, y = blob_dataset.x_train[:64], blob_dataset.y_train[:64]
        mapped_mlp.apply_drift(0.3)
        pulses_before = mapped_mlp.total_pulses()
        tuner = OnlineTuner(TuningConfig(target_accuracy=0.99, max_iterations=10), seed=5)
        tuner.tune(mapped_mlp, x, y)
        assert mapped_mlp.total_pulses() > pulses_before

    def test_deterministic_given_seeds(self, trained_mlp, device_config, blob_dataset):
        x, y = blob_dataset.x_train[:64], blob_dataset.y_train[:64]

        def run():
            net = MappedNetwork(trained_mlp, device_config, seed=31)
            net.map_network()
            net.apply_drift(0.2)
            tuner = OnlineTuner(TuningConfig(target_accuracy=0.95, max_iterations=15), seed=32)
            return tuner.tune(net, x, y)

        a, b = run(), run()
        assert a.iterations == b.iterations
        assert a.final_accuracy == b.final_accuracy
