"""Unit + property tests for the Arrhenius aging model (Eq. 6-7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.aging import BOLTZMANN_EV, AgingParams, ArrheniusAging
from repro.exceptions import ConfigurationError


@pytest.fixture()
def calibrated():
    params = AgingParams.calibrated(1e4, 1e5, pulses_to_collapse=1e4)
    return ArrheniusAging(params)


class TestAgingParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AgingParams(prefactor_max=-1.0, prefactor_min=0.0)
        with pytest.raises(ConfigurationError):
            AgingParams(1.0, 1.0, activation_energy_max=-0.1)
        with pytest.raises(ConfigurationError):
            AgingParams(1.0, 1.0, time_exponent_max=0.0)

    def test_calibration_validation(self):
        with pytest.raises(ConfigurationError):
            AgingParams.calibrated(1e5, 1e4, pulses_to_collapse=100)
        with pytest.raises(ConfigurationError):
            AgingParams.calibrated(1e4, 1e5, pulses_to_collapse=0)
        with pytest.raises(ConfigurationError):
            AgingParams.calibrated(1e4, 1e5, 100, min_bound_fraction=1.0)

    def test_calibration_hits_target(self, calibrated):
        """At the calibration point the upper bound has dropped by the
        full fresh window."""
        t_collapse = 1e4 * 1e-6
        drop = calibrated.degradation_max(300.0, t_collapse)
        assert drop == pytest.approx(9e4, rel=1e-9)

    def test_min_bound_fraction(self):
        aging = ArrheniusAging(
            AgingParams.calibrated(1e4, 1e5, 1e4, min_bound_fraction=0.5)
        )
        t = 1e4 * 1e-6
        assert aging.degradation_min(300.0, t) == pytest.approx(4.5e4, rel=1e-9)


class TestDegradation:
    def test_zero_at_zero_time(self, calibrated):
        assert calibrated.degradation_max(300.0, 0.0) == 0.0
        assert calibrated.degradation_min(300.0, 0.0) == 0.0

    def test_monotone_in_time(self, calibrated):
        times = np.linspace(0, 1e-2, 20)
        drops = calibrated.degradation_max(300.0, times)
        assert np.all(np.diff(drops) > 0)

    def test_arrhenius_temperature_acceleration(self, calibrated):
        """Hotter devices age faster, with the exact Arrhenius ratio."""
        cold = calibrated.degradation_max(300.0, 1e-3)
        hot = calibrated.degradation_max(350.0, 1e-3)
        ea = calibrated.params.activation_energy_max
        expected = np.exp(ea / BOLTZMANN_EV * (1 / 300.0 - 1 / 350.0))
        assert hot / cold == pytest.approx(expected, rel=1e-9)

    def test_rejects_nonpositive_temperature(self, calibrated):
        with pytest.raises(ConfigurationError):
            calibrated.degradation_max(0.0, 1.0)

    def test_vectorized_matches_scalar(self, calibrated):
        times = np.array([1e-4, 2e-4, 3e-4])
        vec = calibrated.degradation_max(300.0, times)
        for t, v in zip(times, vec):
            assert calibrated.degradation_max(300.0, float(t)) == pytest.approx(v)

    def test_negative_time_clamped(self, calibrated):
        assert calibrated.degradation_max(300.0, -1.0) == 0.0


class TestAgedBounds:
    def test_fresh_at_zero(self, calibrated):
        lo, hi = calibrated.aged_bounds(1e4, 1e5, 300.0, 0.0)
        assert (lo, hi) == (1e4, 1e5)

    def test_window_shrinks_from_top(self, calibrated):
        """f > g so the upper bound falls faster: Fig. 4's scenario."""
        lo, hi = calibrated.aged_bounds(1e4, 1e5, 300.0, 5e-3)
        assert hi < 1e5
        assert lo < 1e4
        assert (1e5 - hi) > (1e4 - lo)

    def test_original_lower_bound_stays_inside(self, calibrated):
        """Paper Section IV-B: the original lower bounds usually remain
        in the aged range."""
        lo, hi = calibrated.aged_bounds(1e4, 1e5, 300.0, 2e-3)
        assert lo <= 1e4 <= hi

    def test_collapse_keeps_ordering(self, calibrated):
        lo, hi = calibrated.aged_bounds(1e4, 1e5, 300.0, 1.0)
        assert hi >= lo >= 1.0  # positive floor

    def test_array_bounds(self, calibrated):
        stress = np.array([[0.0, 1e-3], [2e-3, 3e-3]])
        lo, hi = calibrated.aged_bounds(
            np.full((2, 2), 1e4), np.full((2, 2), 1e5), 300.0, stress
        )
        assert lo.shape == hi.shape == (2, 2)
        assert np.all(np.diff(hi.ravel()) < 0)  # more stress, lower bound


class TestCollapseTime:
    def test_analytic_case(self, calibrated):
        t = calibrated.stress_time_to_collapse(1e4, 1e5, 300.0)
        lo, hi = calibrated.aged_bounds(1e4, 1e5, 300.0, t)
        assert hi - lo == pytest.approx(0.0, abs=1.0)

    def test_infinite_when_g_beats_f(self):
        params = AgingParams(prefactor_max=1.0, prefactor_min=2.0)
        aging = ArrheniusAging(params)
        assert aging.stress_time_to_collapse(1e4, 1e5, 300.0) == float("inf")

    def test_bisection_case(self):
        params = AgingParams(
            prefactor_max=1e10,
            prefactor_min=1e8,
            time_exponent_max=0.9,
            time_exponent_min=0.7,
        )
        aging = ArrheniusAging(params)
        t = aging.stress_time_to_collapse(1e4, 1e5, 300.0)
        assert np.isfinite(t)
        lo, hi = aging.aged_bounds(1e4, 1e5, 300.0, t)
        assert hi - lo == pytest.approx(0.0, abs=100.0)

    def test_zero_window(self, calibrated):
        assert calibrated.stress_time_to_collapse(1e4, 1e4, 300.0) == 0.0


class TestProperties:
    @given(
        t1=st.floats(0.0, 1e-2),
        t2=st.floats(0.0, 1e-2),
        temp=st.floats(250.0, 400.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotonicity_property(self, t1, t2, temp):
        """Aging is irreversible: more stress never enlarges the window."""
        aging = ArrheniusAging(AgingParams.calibrated(1e4, 1e5, 1e4))
        lo1, hi1 = aging.aged_bounds(1e4, 1e5, temp, min(t1, t2))
        lo2, hi2 = aging.aged_bounds(1e4, 1e5, temp, max(t1, t2))
        assert hi2 <= hi1 + 1e-9
        assert (hi2 - lo2) <= (hi1 - lo1) + 1e-9

    @given(
        ptc=st.floats(10.0, 1e6),
        frac=st.floats(0.0, 0.9),
        exp_max=st.floats(0.5, 2.0),
        exp_min=st.floats(0.5, 2.0),
        ea=st.floats(0.1, 1.0),
        temp=st.floats(250.0, 400.0),
        times=st.lists(st.floats(0.0, 1e3), min_size=2, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_nonincreasing_any_params(
        self, ptc, frac, exp_max, exp_min, ea, temp, times
    ):
        """Aging is irreversible for *any* calibration (endurance target,
        bound fraction, exponents, activation energy) and temperature:
        both aged bounds are monotonically non-increasing in accumulated
        stress and never exceed their fresh values.  (The *width* may
        transiently grow when ``g`` outpaces ``f`` — mismatched
        exponents — so monotonicity is asserted per bound, not on the
        width.)"""
        base = AgingParams.calibrated(
            1e4, 1e5, ptc, min_bound_fraction=frac, activation_energy=ea
        )
        aging = ArrheniusAging(
            AgingParams(
                prefactor_max=base.prefactor_max,
                prefactor_min=base.prefactor_min,
                activation_energy_max=ea,
                activation_energy_min=ea,
                time_exponent_max=exp_max,
                time_exponent_min=exp_min,
            )
        )
        stress = np.sort(np.asarray(times, dtype=np.float64))
        lo, hi = aging.aged_bounds(
            np.full_like(stress, 1e4), np.full_like(stress, 1e5), temp, stress
        )
        lo, hi = np.asarray(lo), np.asarray(hi)
        assert np.all(np.diff(hi) <= 1e-9)
        assert np.all(np.diff(lo) <= 1e-9)
        assert np.all(lo <= hi)
        assert np.all(hi <= 1e5) and np.all(lo <= 1e4)

    @given(
        r_min=st.floats(1.0, 1e5),
        window=st.floats(1e-3, 1e6),
        temp=st.floats(200.0, 500.0),
        stress=st.floats(0.0, 1e6),
        ptc=st.floats(1.0, 1e8),
        frac=st.floats(0.0, 0.99),
        exp_max=st.floats(0.3, 3.0),
        exp_min=st.floats(0.3, 3.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_bounds_never_invert(
        self, r_min, window, temp, stress, ptc, frac, exp_max, exp_min
    ):
        """``aged_bounds`` is a total function on its domain: whatever the
        stress, temperature or calibration, it returns ``1.0 <= lo <= hi``
        (conductance 1/R stays finite, the window never inverts)."""
        base = AgingParams.calibrated(
            r_min, r_min + window, ptc, min_bound_fraction=frac
        )
        aging = ArrheniusAging(
            AgingParams(
                prefactor_max=base.prefactor_max,
                prefactor_min=base.prefactor_min,
                time_exponent_max=exp_max,
                time_exponent_min=exp_min,
            )
        )
        lo, hi = aging.aged_bounds(r_min, r_min + window, temp, stress)
        assert 1.0 <= lo <= hi
        # Array path must agree with the scalar path bit-for-bit.
        lo_v, hi_v = aging.aged_bounds(
            np.array([r_min]), np.array([r_min + window]), temp, np.array([stress])
        )
        assert float(lo_v[0]) == lo and float(hi_v[0]) == hi

    @given(
        ptc=st.floats(10.0, 1e6),
        frac=st.floats(0.0, 0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_calibration_property(self, ptc, frac):
        """For any endurance target, the window width reaches zero at
        exactly the calibrated pulse count."""
        aging = ArrheniusAging(
            AgingParams.calibrated(1e4, 1e5, ptc, min_bound_fraction=frac)
        )
        t = ptc * 1e-6
        f = aging.degradation_max(300.0, t)
        g = aging.degradation_min(300.0, t)
        assert f - g == pytest.approx((1 - frac) * 9e4, rel=1e-9)
