"""Unit tests for DeviceConfig."""

import numpy as np
import pytest

from repro.device import DeviceConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        cfg = DeviceConfig()
        assert cfg.r_min < cfg.r_max
        assert cfg.g_min == pytest.approx(1.0 / cfg.r_max)
        assert cfg.g_max == pytest.approx(1.0 / cfg.r_min)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(r_min=0.0),
            dict(r_min=1e5, r_max=1e4),
            dict(n_levels=1),
            dict(pulse_width=0.0),
            dict(temperature=-1.0),
            dict(write_noise=-0.1),
            dict(current_aging_exponent=-1.0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeviceConfig(**kwargs)


class TestFactories:
    def test_level_grid(self):
        cfg = DeviceConfig(n_levels=16)
        grid = cfg.make_level_grid()
        assert grid.n_levels == 16
        assert grid.r_min == cfg.r_min

    def test_aging_model_calibrated(self):
        cfg = DeviceConfig(pulses_to_collapse=500)
        aging = cfg.make_aging_model()
        t = 500 * cfg.pulse_width
        f = aging.degradation_max(cfg.temperature, t)
        g = aging.degradation_min(cfg.temperature, t)
        assert f - g == pytest.approx(
            (1 - cfg.min_bound_fraction) * (cfg.r_max - cfg.r_min), rel=1e-9
        )

    def test_explicit_aging_params_win(self):
        from repro.device.aging import AgingParams

        params = AgingParams(prefactor_max=1.0, prefactor_min=0.5)
        cfg = DeviceConfig(aging_params=params)
        assert cfg.make_aging_model().params is params


class TestStressFactor:
    def test_unity_at_r_min(self):
        cfg = DeviceConfig(current_aging_exponent=2.0)
        assert cfg.stress_factor(cfg.r_min) == pytest.approx(1.0)

    def test_quadratic_falloff(self):
        cfg = DeviceConfig(current_aging_exponent=2.0)
        assert cfg.stress_factor(2 * cfg.r_min) == pytest.approx(0.25)

    def test_exponent_zero_is_uniform(self):
        cfg = DeviceConfig(current_aging_exponent=0.0)
        assert cfg.stress_factor(cfg.r_max) == 1.0

    def test_vectorized(self):
        cfg = DeviceConfig()
        out = cfg.stress_factor(np.array([cfg.r_min, cfg.r_max]))
        assert out.shape == (2,)
        assert out[0] > out[1]
