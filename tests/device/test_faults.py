"""Unit tests for stuck-at fault injection."""

import numpy as np
import pytest

from repro.crossbar import Crossbar
from repro.device.faults import FaultModel, inject_faults, inject_faults_network
from repro.exceptions import ConfigurationError


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultModel(rate_lrs=-0.1)
        with pytest.raises(ConfigurationError):
            FaultModel(rate_lrs=0.6, rate_hrs=0.5)

    def test_masks_disjoint(self):
        model = FaultModel(rate_lrs=0.2, rate_hrs=0.2)
        lrs, hrs = model.sample_masks((50, 50), seed=1)
        assert not np.any(lrs & hrs)

    def test_rates_approximately_met(self):
        model = FaultModel(rate_lrs=0.1, rate_hrs=0.05)
        lrs, hrs = model.sample_masks((200, 200), seed=2)
        assert lrs.mean() == pytest.approx(0.1, abs=0.02)
        assert hrs.mean() == pytest.approx(0.05, abs=0.02)

    def test_zero_rates(self):
        lrs, hrs = FaultModel().sample_masks((10, 10), seed=3)
        assert not lrs.any() and not hrs.any()


class TestDeterminism:
    """Same seed → identical fault maps, bit for bit."""

    def test_sample_masks_same_seed_identical(self):
        model = FaultModel(rate_lrs=0.07, rate_hrs=0.04)
        lrs_a, hrs_a = model.sample_masks((64, 64), seed=42)
        lrs_b, hrs_b = model.sample_masks((64, 64), seed=42)
        np.testing.assert_array_equal(lrs_a, lrs_b)
        np.testing.assert_array_equal(hrs_a, hrs_b)

    def test_sample_masks_different_seed_differs(self):
        model = FaultModel(rate_lrs=0.1, rate_hrs=0.1)
        lrs_a, _ = model.sample_masks((64, 64), seed=42)
        lrs_b, _ = model.sample_masks((64, 64), seed=43)
        assert not np.array_equal(lrs_a, lrs_b)

    def test_sample_masks_rates_within_binomial_tolerance(self):
        model = FaultModel(rate_lrs=0.08, rate_hrs=0.03)
        shape = (300, 300)
        n = shape[0] * shape[1]
        lrs, hrs = model.sample_masks(shape, seed=17)
        # 4-sigma binomial band around the expected count.
        for mask, rate in ((lrs, 0.08), (hrs, 0.03)):
            sigma = np.sqrt(n * rate * (1.0 - rate))
            assert abs(int(mask.sum()) - n * rate) <= 4.0 * sigma

    def test_sample_masks_disjoint_at_high_rates(self):
        model = FaultModel(rate_lrs=0.45, rate_hrs=0.45)
        lrs, hrs = model.sample_masks((100, 100), seed=19)
        assert not np.any(lrs & hrs)

    def test_inject_faults_network_same_seed_identical(
        self, trained_mlp, device_config
    ):
        from repro.mapping import MappedNetwork

        model = FaultModel(rate_lrs=0.05, rate_hrs=0.05)
        nets = []
        for _ in range(2):
            net = MappedNetwork(trained_mlp, device_config, seed=21)
            frac = inject_faults_network(net, model, seed=22)
            nets.append((net, frac))
        (net_a, frac_a), (net_b, frac_b) = nets
        assert frac_a == frac_b
        for layer_a, layer_b in zip(net_a.layers, net_b.layers):
            np.testing.assert_array_equal(
                layer_a.tiles.resistances(), layer_b.tiles.resistances()
            )
            np.testing.assert_array_equal(
                layer_a.tiles.dead_mask(), layer_b.tiles.dead_mask()
            )

    def test_inject_faults_network_differential(self, trained_mlp, device_config):
        from repro.mapping.differential import DifferentialMappedNetwork

        net = DifferentialMappedNetwork(trained_mlp, device_config, seed=23)
        net.map_network()
        frac = inject_faults_network(net, FaultModel(rate_lrs=0.1), seed=24)
        assert frac == pytest.approx(0.1, abs=0.05)
        assert any(
            layer.plus.dead_mask().any() or layer.minus.dead_mask().any()
            for layer in net.layers
        )


class TestInjectFaults:
    def test_stuck_values_pinned(self, device_config):
        xb = Crossbar(20, 20, device_config, seed=4)
        lrs, hrs = inject_faults(xb, FaultModel(rate_lrs=0.1, rate_hrs=0.1), seed=5)
        np.testing.assert_allclose(xb.resistance[lrs], xb.r_fresh_min[lrs])
        np.testing.assert_allclose(xb.resistance[hrs], xb.r_fresh_max[hrs])

    def test_stuck_devices_ignore_programming(self, device_config):
        xb = Crossbar(20, 20, device_config, seed=6)
        lrs, hrs = inject_faults(xb, FaultModel(rate_lrs=0.15), seed=7)
        before = xb.resistance.copy()
        xb.program(np.full(xb.shape, 5e4), only_changed=False)
        np.testing.assert_array_equal(xb.resistance[lrs], before[lrs])
        # Healthy devices did move.
        healthy = ~(lrs | hrs)
        assert not np.allclose(xb.resistance[healthy], before[healthy])

    def test_stuck_devices_count_as_dead(self, device_config):
        xb = Crossbar(10, 10, device_config, seed=8)
        lrs, hrs = inject_faults(xb, FaultModel(rate_lrs=0.2), seed=9)
        assert xb.dead_mask()[lrs].all()

    def test_network_injection_fraction(self, trained_mlp, device_config):
        from repro.mapping import MappedNetwork

        net = MappedNetwork(trained_mlp, device_config, seed=10)
        realized = inject_faults_network(net, FaultModel(rate_lrs=0.08), seed=11)
        assert realized == pytest.approx(0.08, abs=0.05)
        assert net.dead_fraction() >= realized - 1e-9

    def test_accuracy_degrades_with_faults(self, trained_mlp, device_config, blob_dataset):
        from repro.mapping import MappedNetwork

        clean = MappedNetwork(trained_mlp, device_config, seed=12)
        clean.map_network()
        acc_clean = clean.score(blob_dataset.x_test, blob_dataset.y_test)

        faulty = MappedNetwork(trained_mlp, device_config, seed=12)
        inject_faults_network(faulty, FaultModel(rate_lrs=0.3, rate_hrs=0.3), seed=13)
        faulty.map_network()
        acc_faulty = faulty.score(blob_dataset.x_test, blob_dataset.y_test)
        assert acc_faulty <= acc_clean
