"""Unit tests for stuck-at fault injection."""

import numpy as np
import pytest

from repro.crossbar import Crossbar
from repro.device.faults import FaultModel, inject_faults, inject_faults_network
from repro.exceptions import ConfigurationError


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultModel(rate_lrs=-0.1)
        with pytest.raises(ConfigurationError):
            FaultModel(rate_lrs=0.6, rate_hrs=0.5)

    def test_masks_disjoint(self):
        model = FaultModel(rate_lrs=0.2, rate_hrs=0.2)
        lrs, hrs = model.sample_masks((50, 50), seed=1)
        assert not np.any(lrs & hrs)

    def test_rates_approximately_met(self):
        model = FaultModel(rate_lrs=0.1, rate_hrs=0.05)
        lrs, hrs = model.sample_masks((200, 200), seed=2)
        assert lrs.mean() == pytest.approx(0.1, abs=0.02)
        assert hrs.mean() == pytest.approx(0.05, abs=0.02)

    def test_zero_rates(self):
        lrs, hrs = FaultModel().sample_masks((10, 10), seed=3)
        assert not lrs.any() and not hrs.any()


class TestInjectFaults:
    def test_stuck_values_pinned(self, device_config):
        xb = Crossbar(20, 20, device_config, seed=4)
        lrs, hrs = inject_faults(xb, FaultModel(rate_lrs=0.1, rate_hrs=0.1), seed=5)
        np.testing.assert_allclose(xb.resistance[lrs], xb.r_fresh_min[lrs])
        np.testing.assert_allclose(xb.resistance[hrs], xb.r_fresh_max[hrs])

    def test_stuck_devices_ignore_programming(self, device_config):
        xb = Crossbar(20, 20, device_config, seed=6)
        lrs, hrs = inject_faults(xb, FaultModel(rate_lrs=0.15), seed=7)
        before = xb.resistance.copy()
        xb.program(np.full(xb.shape, 5e4), only_changed=False)
        np.testing.assert_array_equal(xb.resistance[lrs], before[lrs])
        # Healthy devices did move.
        healthy = ~(lrs | hrs)
        assert not np.allclose(xb.resistance[healthy], before[healthy])

    def test_stuck_devices_count_as_dead(self, device_config):
        xb = Crossbar(10, 10, device_config, seed=8)
        lrs, hrs = inject_faults(xb, FaultModel(rate_lrs=0.2), seed=9)
        assert xb.dead_mask()[lrs].all()

    def test_network_injection_fraction(self, trained_mlp, device_config):
        from repro.mapping import MappedNetwork

        net = MappedNetwork(trained_mlp, device_config, seed=10)
        realized = inject_faults_network(net, FaultModel(rate_lrs=0.08), seed=11)
        assert realized == pytest.approx(0.08, abs=0.05)
        assert net.dead_fraction() >= realized - 1e-9

    def test_accuracy_degrades_with_faults(self, trained_mlp, device_config, blob_dataset):
        from repro.mapping import MappedNetwork

        clean = MappedNetwork(trained_mlp, device_config, seed=12)
        clean.map_network()
        acc_clean = clean.score(blob_dataset.x_test, blob_dataset.y_test)

        faulty = MappedNetwork(trained_mlp, device_config, seed=12)
        inject_faults_network(faulty, FaultModel(rate_lrs=0.3, rate_hrs=0.3), seed=13)
        faulty.map_network()
        acc_faulty = faulty.score(blob_dataset.x_test, blob_dataset.y_test)
        assert acc_faulty <= acc_clean
