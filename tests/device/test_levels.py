"""Unit + property tests for the quantized level grid (Fig. 3/4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.levels import LevelGrid
from repro.exceptions import ConfigurationError


@pytest.fixture()
def grid():
    return LevelGrid(1e4, 1e5, n_levels=32)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LevelGrid(0.0, 1e5)
        with pytest.raises(ConfigurationError):
            LevelGrid(1e5, 1e4)
        with pytest.raises(ConfigurationError):
            LevelGrid(1e4, 1e5, n_levels=1)

    def test_resistance_levels_uniform(self, grid):
        levels = grid.resistance_levels
        assert levels[0] == 1e4 and levels[-1] == 1e5
        np.testing.assert_allclose(np.diff(levels), grid.step)

    def test_conductance_levels_nonuniform_and_descending(self, grid):
        """Fig. 3(c): the reciprocal levels crowd at small conductance."""
        g = grid.conductance_levels
        assert np.all(np.diff(g) < 0)
        gaps = -np.diff(g)
        assert gaps[0] > 10 * gaps[-1]  # dense at the high-R end


class TestQuantization:
    def test_exact_levels_are_fixed_points(self, grid):
        for r in grid.resistance_levels:
            assert grid.quantize(float(r)) == pytest.approx(r)

    def test_rounds_to_nearest(self, grid):
        r = 1e4 + 0.4 * grid.step
        assert grid.quantize(r) == pytest.approx(1e4)
        r = 1e4 + 0.6 * grid.step
        assert grid.quantize(r) == pytest.approx(1e4 + grid.step)

    def test_clips_to_grid(self, grid):
        assert grid.quantize(1.0) == pytest.approx(1e4)
        assert grid.quantize(1e7) == pytest.approx(1e5)

    def test_index_value_roundtrip(self, grid):
        for i in (0, 7, 31):
            assert grid.index_of(grid.value_of(i)) == i

    def test_vectorized(self, grid, rng):
        r = rng.uniform(1e4, 1e5, size=(4, 5))
        q = grid.quantize(r)
        assert q.shape == (4, 5)
        assert np.all(np.abs(q - r) <= grid.step / 2 + 1e-9)


class TestAgedQuantization:
    def test_clipping_to_aged_window(self, grid):
        """Fig. 4: a target above the aged upper bound lands on the
        highest usable level below it."""
        aged_max = 1e4 + 5.4 * grid.step
        achieved = grid.quantize(9e4, aged_min=1e4, aged_max=aged_max)
        assert achieved == pytest.approx(1e4 + 5 * grid.step)

    def test_no_usable_level_falls_back_to_clipped(self, grid):
        lo = 1e4 + 0.2 * grid.step
        hi = 1e4 + 0.6 * grid.step  # window between two levels
        achieved = grid.quantize(9e4, aged_min=lo, aged_max=hi)
        assert lo <= achieved <= hi

    def test_snap_below_window_pushed_up(self, grid):
        lo = 1e4 + 0.8 * grid.step
        hi = 1e4 + 2.2 * grid.step
        achieved = grid.quantize(1e4, aged_min=lo, aged_max=hi)
        assert achieved == pytest.approx(1e4 + grid.step)


class TestUsableLevels:
    def test_full_window(self, grid):
        assert grid.usable_count(1e4, 1e5) == 32
        assert len(grid.usable_levels(1e4, 1e5)) == 32

    def test_shrinking_window_loses_top_levels(self, grid):
        """Fig. 4: as the window shrinks from the top, usable level
        count decreases stepwise."""
        counts = [
            grid.usable_count(1e4, 1e5 - (k - 0.5) * grid.step) for k in range(1, 10)
        ]
        assert counts == [32 - k for k in range(1, 10)]

    def test_collapsed_window(self, grid):
        assert grid.usable_count(5e4, 4e4) == 0

    def test_vectorized_counts(self, grid):
        his = np.array([1e5, 5e4, 1e4])
        counts = grid.usable_count(np.full(3, 1e4), his)
        assert counts.tolist() == [32, grid.usable_count(1e4, 5e4), 1]


class TestProperties:
    @given(
        r=st.floats(1e3, 2e5),
        n=st.integers(2, 128),
    )
    @settings(max_examples=80, deadline=None)
    def test_quantize_within_half_step(self, r, n):
        grid = LevelGrid(1e4, 1e5, n)
        q = grid.quantize(r)
        clipped = min(max(r, 1e4), 1e5)
        assert abs(q - clipped) <= grid.step / 2 + 1e-6

    @given(
        lo_steps=st.floats(0.0, 15.0),
        hi_steps=st.floats(16.0, 31.0),
        target=st.floats(1e4, 1e5),
    )
    @settings(max_examples=80, deadline=None)
    def test_aged_quantize_stays_in_window(self, lo_steps, hi_steps, target):
        grid = LevelGrid(1e4, 1e5, 32)
        lo = 1e4 + lo_steps * grid.step
        hi = 1e4 + hi_steps * grid.step
        q = grid.quantize(target, aged_min=lo, aged_max=hi)
        assert lo - 1e-6 <= q <= hi + 1e-6
