"""Unit tests for the scalar memristor cell."""

import numpy as np
import pytest

from repro.device import DeviceConfig, Memristor
from repro.exceptions import ConfigurationError, DeviceError


@pytest.fixture()
def cell(device_config):
    return Memristor(device_config, seed=1)


class TestConstruction:
    def test_starts_fresh_in_hrs(self, cell):
        assert cell.resistance == cell.r_fresh_max
        assert cell.pulse_count == 0
        assert not cell.is_dead

    def test_rejects_bad_bounds(self, device_config):
        with pytest.raises(ConfigurationError):
            Memristor(device_config, r_fresh_min=1e5, r_fresh_max=1e4)


class TestProgramming:
    def test_program_snaps_to_level(self, cell):
        achieved = cell.program(5.47e4)
        level_values = cell.grid.resistance_levels
        assert np.min(np.abs(level_values - achieved)) < 1e-9
        assert cell.pulse_count == 1

    def test_program_validates(self, cell):
        with pytest.raises(ConfigurationError):
            cell.program(-5.0)
        with pytest.raises(ConfigurationError):
            cell.program(5e4, pulses=0)

    def test_stress_accumulates_with_current_weighting(self, device_config):
        """A pulse at low resistance stresses more than at high
        resistance (the skewed-training lever)."""
        low = Memristor(device_config, seed=1)
        high = Memristor(device_config, seed=1)
        low.program(device_config.r_min)
        high.program(device_config.r_max)
        assert low.stress_time > high.stress_time

    def test_aging_shrinks_window(self, cell):
        lo0, hi0 = cell.aged_bounds()
        for _ in range(50):
            cell.program(2e4)
        lo1, hi1 = cell.aged_bounds()
        assert hi1 < hi0
        assert (hi1 - lo1) < (hi0 - lo0)

    def test_aged_cell_clips_high_targets(self, device_config):
        cell = Memristor(device_config, seed=2)
        # Age heavily at max stress.
        for _ in range(60):
            cell.program(device_config.r_min)
        achieved = cell.program(device_config.r_max)
        _lo, hi = cell.aged_bounds()
        assert achieved <= hi

    def test_dead_cell_raises(self, device_config):
        cell = Memristor(device_config, seed=3)
        with pytest.raises(DeviceError):
            for _ in range(10_000):
                cell.program(device_config.r_min)
        assert cell.is_dead

    def test_usable_levels_decrease(self, device_config):
        cell = Memristor(device_config, seed=4)
        n0 = len(cell.usable_levels())
        for _ in range(80):
            cell.program(device_config.r_min)
        assert len(cell.usable_levels()) < n0


class TestStepping:
    def test_step_level_moves_one_step(self, cell):
        cell.program(5e4)
        before = cell.resistance
        cell.step_level(+1)
        assert cell.resistance == pytest.approx(before + cell.grid.step)
        cell.step_level(-1)
        assert cell.resistance == pytest.approx(before)

    def test_step_level_zero_is_free(self, cell):
        pulses = cell.pulse_count
        cell.step_level(0)
        assert cell.pulse_count == pulses

    def test_step_level_validates(self, cell):
        with pytest.raises(ConfigurationError):
            cell.step_level(2)

    def test_step_conductance_direction(self, cell):
        cell.program(5e4)
        before_g = cell.conductance
        cell.step_conductance(+1)
        assert cell.conductance > before_g
        cell.step_conductance(-1)

    def test_step_conductance_magnitude(self, cell):
        cell.program(5e4)
        g0 = cell.conductance
        cell.step_conductance(+1, fraction=0.5)
        g_step = (cell.config.g_max - cell.config.g_min) / (cell.grid.n_levels - 1)
        assert cell.conductance - g0 == pytest.approx(0.5 * g_step, rel=1e-6)

    def test_step_conductance_validates(self, cell):
        with pytest.raises(ConfigurationError):
            cell.step_conductance(3)
        with pytest.raises(ConfigurationError):
            cell.step_conductance(1, fraction=0.0)


class TestReadout:
    def test_noise_free_read(self, cell):
        cell.program(3e4)
        assert cell.read() == cell.resistance

    def test_read_noise(self):
        cfg = DeviceConfig(read_noise=0.05, write_noise=0.0)
        cell = Memristor(cfg, seed=5)
        cell.program(5e4)
        reads = [cell.read() for _ in range(200)]
        assert np.std(reads) > 0
        assert abs(np.mean(reads) - cell.resistance) < 0.02 * cell.resistance

    def test_conductance_is_reciprocal(self, cell):
        cell.program(2.5e4)
        assert cell.conductance == pytest.approx(1.0 / cell.resistance)

    def test_write_noise_perturbs(self):
        cfg = DeviceConfig(write_noise=0.2)
        a = Memristor(cfg, seed=6)
        b = Memristor(cfg, seed=7)
        assert a.program(5e4) != b.program(5e4)
