"""Unit tests for device-to-device variability."""

import numpy as np
import pytest

from repro.device.variability import DeviceVariability
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            DeviceVariability(sigma_min=-0.1)

    def test_rejects_bad_window_ratio(self):
        with pytest.raises(ConfigurationError):
            DeviceVariability(min_window_ratio=0.0)
        with pytest.raises(ConfigurationError):
            DeviceVariability(min_window_ratio=1.5)


class TestSampling:
    def test_shapes(self):
        var = DeviceVariability(0.05, 0.05)
        lo, hi = var.sample_bounds(1e4, 1e5, (6, 7), seed=1)
        assert lo.shape == hi.shape == (6, 7)

    def test_spread_matches_sigma(self):
        var = DeviceVariability(sigma_min=0.1, sigma_max=0.1)
        lo, _hi = var.sample_bounds(1e4, 1e5, (200, 200), seed=2)
        assert np.std(np.log(lo)) == pytest.approx(0.1, rel=0.05)

    def test_zero_sigma_is_nominal(self):
        var = DeviceVariability(0.0, 0.0)
        lo, hi = var.sample_bounds(1e4, 1e5, (3, 3), seed=3)
        np.testing.assert_allclose(lo, 1e4)
        np.testing.assert_allclose(hi, 1e5)

    def test_window_floor_enforced(self):
        var = DeviceVariability(sigma_min=0.5, sigma_max=0.5, min_window_ratio=0.3)
        lo, hi = var.sample_bounds(1e4, 1e5, (100, 100), seed=4)
        assert np.all(hi - lo >= 0.3 * 9e4 - 1e-9)

    def test_deterministic(self):
        var = DeviceVariability()
        a = var.sample_bounds(1e4, 1e5, (4, 4), seed=9)
        b = var.sample_bounds(1e4, 1e5, (4, 4), seed=9)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
