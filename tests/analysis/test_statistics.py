"""Unit tests for bootstrap statistics."""

import numpy as np
import pytest

from repro.analysis.statistics import BootstrapResult, bootstrap_ci, bootstrap_ratio_ci
from repro.exceptions import ConfigurationError


class TestBootstrapCi:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0, 2.0], confidence=1.0)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0, 2.0], n_boot=10)

    def test_interval_contains_estimate(self, rng):
        sample = rng.normal(10.0, 2.0, 40)
        result = bootstrap_ci(sample, seed=1)
        assert result.low <= result.estimate <= result.high

    def test_interval_covers_true_median(self, rng):
        sample = rng.normal(5.0, 1.0, 200)
        result = bootstrap_ci(sample, seed=2)
        assert result.contains(5.0)

    def test_wider_at_higher_confidence(self, rng):
        sample = rng.lognormal(0.0, 1.0, 30)
        narrow = bootstrap_ci(sample, confidence=0.8, seed=3)
        wide = bootstrap_ci(sample, confidence=0.99, seed=3)
        assert (wide.high - wide.low) >= (narrow.high - narrow.low)

    def test_deterministic_given_seed(self, rng):
        sample = rng.normal(size=20)
        a = bootstrap_ci(sample, seed=7)
        b = bootstrap_ci(sample, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_custom_statistic(self, rng):
        sample = rng.normal(3.0, 1.0, 100)
        result = bootstrap_ci(sample, statistic=np.mean, seed=4)
        assert result.estimate == pytest.approx(sample.mean())


class TestBootstrapRatioCi:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ratio_ci([1.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bootstrap_ratio_ci([1.0, 2.0], [0.0, 0.0])

    def test_clear_separation_excludes_one(self, rng):
        """Two clearly separated lifetime samples: the ratio interval
        must exclude 1 — this is the statistical form of 'ST+T beats
        T+T'."""
        tt = rng.normal(100.0, 10.0, 12)
        stt = rng.normal(300.0, 30.0, 12)
        result = bootstrap_ratio_ci(stt, tt, seed=5)
        assert result.low > 1.0
        assert result.estimate == pytest.approx(3.0, rel=0.3)

    def test_identical_samples_cover_one(self, rng):
        sample = rng.lognormal(0.0, 0.3, 25)
        result = bootstrap_ratio_ci(sample, sample.copy(), seed=6)
        assert result.contains(1.0)

    def test_str_format(self):
        assert "@95%" in str(BootstrapResult(2.0, 1.5, 2.5, 0.95))
