"""Unit tests for distribution analyses."""

import numpy as np
import pytest

from repro.analysis import (
    conductance_histogram,
    resistance_histogram,
    summarize_distribution,
    weight_histogram,
)
from repro.exceptions import ConfigurationError
from repro.mapping import LinearWeightMapping


@pytest.fixture()
def mapping():
    return LinearWeightMapping(-1.0, 1.0, 1e-5, 1e-4)


class TestSummary:
    def test_moments(self, rng):
        v = rng.normal(2.0, 0.5, 10_000)
        s = summarize_distribution(v)
        assert s.mean == pytest.approx(2.0, abs=0.05)
        assert s.std == pytest.approx(0.5, abs=0.05)
        assert s.n == 10_000
        assert abs(s.skewness) < 0.1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_distribution(np.array([]))


class TestHistograms:
    def test_weight_histogram_counts(self, rng):
        w = rng.normal(size=500)
        edges, counts = weight_histogram(w, bins=20)
        assert len(edges) == 21
        assert counts.sum() == 500

    def test_resistance_histogram_in_range(self, mapping, rng):
        w = rng.uniform(-1, 1, 300)
        edges, counts = resistance_histogram(w, mapping, bins=10)
        assert counts.sum() == 300
        assert edges[0] >= 1e4 - 1e-6
        assert edges[-1] <= 1e5 + 1e-6

    def test_conductance_histogram_in_range(self, mapping, rng):
        w = rng.uniform(-1, 1, 300)
        edges, counts = conductance_histogram(w, mapping, bins=10)
        assert counts.sum() == 300
        assert edges[0] >= 1e-5 - 1e-12

    def test_fig3_reciprocal_shape(self, mapping, rng):
        """A symmetric weight distribution produces a resistance
        distribution skewed towards low resistance — the Fig. 3(b)
        shape."""
        w = np.clip(rng.normal(0.0, 0.3, 5000), -1, 1)
        edges, counts = resistance_histogram(w, mapping, bins=20)
        centers = 0.5 * (edges[:-1] + edges[1:])
        mean_r = np.average(centers, weights=counts)
        midpoint = 0.5 * (edges[0] + edges[-1])
        assert mean_r < midpoint
