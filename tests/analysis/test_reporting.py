"""Unit tests for Markdown report generation."""

import pytest

from repro.analysis.reporting import comparison_report, scenario_section
from repro.core.results import LifetimeResult, ScenarioComparison, WindowRecord
from repro.exceptions import ConfigurationError


def make_result(key="st+at", lifetime=120_000, failed=True):
    result = LifetimeResult(
        scenario_key=key,
        lifetime_applications=lifetime,
        failed=failed,
        software_accuracy=0.9,
        target_accuracy=0.84,
    )
    for i, iters in enumerate([3, 5, 150] if failed else [3, 5]):
        result.windows.append(
            WindowRecord(
                window_index=i,
                applications_total=(i + 1) * 10_000,
                tuning_iterations=iters,
                converged=iters < 150,
                accuracy_after=0.85,
                pulses_total=(i + 1) * 500,
                dead_fraction=0.02 * i,
                aged_upper_by_layer={0: 9e4},
            )
        )
    return result


class TestScenarioSection:
    def test_contains_key_facts(self):
        text = scenario_section(make_result())
        assert "ST+AT" in text
        assert "120,000 applications" in text
        assert "failed" in text
        assert "knee" in text

    def test_no_knee_case(self):
        text = scenario_section(make_result(failed=False))
        assert "no failure knee" in text


class TestComparisonReport:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            comparison_report(ScenarioComparison(workload="x"))

    def test_full_report(self):
        cmp = ScenarioComparison(workload="glyphs")
        cmp.add(make_result("t+t", 100_000))
        cmp.add(make_result("st+at", 250_000))
        text = comparison_report(cmp)
        assert text.startswith("# Lifetime comparison — glyphs")
        assert "| scenario |" in text
        assert "2.5x" in text
        assert text.count("### Scenario") == 2

    def test_custom_title(self):
        cmp = ScenarioComparison(workload="glyphs")
        cmp.add(make_result("t+t"))
        assert comparison_report(cmp, title="Custom").startswith("# Custom")
