"""Unit tests for trajectory analyses (Fig. 10/11 helpers)."""

from repro.analysis import iteration_knee, layer_type_aging


class TestIterationKnee:
    def test_flat_series_has_no_knee(self):
        assert iteration_knee([5, 5, 6, 5, 5]) == 5

    def test_sudden_jump_detected(self):
        series = [5, 6, 5, 5, 40, 150]
        assert iteration_knee(series) == 4

    def test_knee_at_budget_spike(self):
        assert iteration_knee([0, 0, 0, 150]) == 3

    def test_empty_and_immediate_blowout(self):
        assert iteration_knee([]) == 0
        assert iteration_knee([150]) == 0  # failure in the first window

    def test_small_noise_below_floor_is_not_a_knee(self):
        # A 10-iteration window after zeros is maintenance, not failure.
        assert iteration_knee([0, 0, 10, 0, 0]) == 5

    def test_floor_configurable(self):
        assert iteration_knee([0, 0, 10, 0], floor=5.0) == 2


class TestLayerTypeAging:
    def test_grouping(self, trained_mlp, device_config, blob_dataset):
        from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
        from repro.mapping import MappedNetwork
        from repro.tuning import TuningConfig

        network = MappedNetwork(trained_mlp, device_config, seed=61)
        network.map_network()
        sim = LifetimeSimulator(
            network,
            blob_dataset.x_train[:64],
            blob_dataset.y_train[:64],
            config=LifetimeConfig(
                apps_per_window=100,
                max_windows=3,
                tuning=TuningConfig(target_accuracy=0.9, max_iterations=10),
            ),
            seed=62,
        )
        result = sim.run("t+t")
        grouped = layer_type_aging(result, network)
        # The MLP has only dense layers.
        assert set(grouped) == {"dense"}
        assert len(grouped["dense"]) == 3

    def test_conv_and_dense_grouped(self, device_config, glyph_dataset):
        from repro.core.lifetime import LifetimeConfig, LifetimeSimulator
        from repro.mapping import MappedNetwork
        from repro.training import TrainConfig, build_lenet, train_baseline
        from repro.tuning import TuningConfig

        model = build_lenet(seed=63)
        train_baseline(model, glyph_dataset, TrainConfig(epochs=2))
        network = MappedNetwork(model, device_config, seed=64)
        network.map_network()
        sim = LifetimeSimulator(
            network,
            glyph_dataset.x_train[:48],
            glyph_dataset.y_train[:48],
            config=LifetimeConfig(
                apps_per_window=100,
                max_windows=2,
                tuning=TuningConfig(target_accuracy=0.2, max_iterations=5),
            ),
            seed=65,
        )
        result = sim.run("t+t")
        grouped = layer_type_aging(result, network)
        assert set(grouped) == {"conv", "dense"}
