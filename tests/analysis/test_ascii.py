"""Unit tests for the ASCII renderers."""

import numpy as np
import pytest

from repro.analysis import ascii_histogram, ascii_series, render_table
from repro.exceptions import ConfigurationError


class TestHistogram:
    def test_basic_render(self):
        out = ascii_histogram(np.array([0.0, 1.0, 2.0]), np.array([2, 4]), width=4)
        lines = out.splitlines()
        assert len(lines) == 2
        assert "##" in lines[0] and "####" in lines[1]

    def test_label(self):
        out = ascii_histogram(np.array([0.0, 1.0]), np.array([1]), label="weights")
        assert out.splitlines()[0] == "weights"

    def test_edge_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram(np.array([0.0, 1.0]), np.array([1, 2]))

    def test_zero_counts_ok(self):
        out = ascii_histogram(np.array([0.0, 1.0, 2.0]), np.array([0, 0]))
        assert "(0)" in out


class TestSeries:
    def test_render_includes_extremes(self):
        out = ascii_series([1.0, 5.0, 3.0], height=5, width=10)
        assert "max=5" in out
        assert "min=1" in out
        assert "n=3" in out

    def test_constant_series(self):
        out = ascii_series([2.0, 2.0, 2.0])
        assert "*" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_series([])

    def test_downsamples_long_series(self):
        out = ascii_series(list(range(1000)), width=40)
        grid_lines = [l for l in out.splitlines() if l.startswith("|")]
        assert all(len(l) <= 41 for l in grid_lines)


class TestTable:
    def test_alignment(self):
        out = render_table(["name", "v"], [["aa", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out
