"""Fault schedules composed with the lifetime simulation.

The ISSUE acceptance property: a lifetime run with a mid-life stuck-at
burst at rate 0.01 completes without raising and reports a strictly
lower lifetime than the fault-free golden run of the same framework.
"""

from repro.robustness import FaultSchedule


class TestLifetimeWithFaults:
    def test_midlife_stuck_at_shortens_lifetime(self, fragile_framework):
        schedule = FaultSchedule.stuck_at_midlife(0.01, window=1)
        base = fragile_framework.run_scenario("st+at")
        faulty = fragile_framework.run_scenario("st+at", fault_schedule=schedule)
        # The fault-free golden run reaches the horizon...
        assert not base.failed
        # ...and the faulted run completes (no exception) but dies early.
        assert faulty.lifetime_applications < base.lifetime_applications
        assert faulty.failed

    def test_fault_free_run_unchanged_by_feature(self, fragile_framework):
        """Passing no schedule is bit-identical to the pre-feature path.

        The fault hooks must not consume RNG when idle; two runs (one
        plain, one with an *empty* concept of faults, i.e. None) agree
        window for window.
        """
        a = fragile_framework.run_scenario("st+at")
        b = fragile_framework.run_scenario("st+at", fault_schedule=None)
        assert a.lifetime_applications == b.lifetime_applications
        assert [w.accuracy_after for w in a.windows] == [
            w.accuracy_after for w in b.windows
        ]

    def test_faulted_run_is_deterministic(self, fragile_framework):
        schedule = FaultSchedule.stuck_at_midlife(0.01, window=1)
        a = fragile_framework.run_scenario("st+at", fault_schedule=schedule)
        b = fragile_framework.run_scenario("st+at", fault_schedule=schedule)
        assert a.lifetime_applications == b.lifetime_applications
        assert [w.accuracy_after for w in a.windows] == [
            w.accuracy_after for w in b.windows
        ]

    def test_drift_schedule_runs_to_completion(self, mini_framework):
        schedule = FaultSchedule.single("drift", 0.15, window=1)
        result = mini_framework.run_scenario("st+at", fault_schedule=schedule)
        assert result.lifetime_applications >= 0
        assert len(result.windows) >= 1
