"""Graceful degradation: the recovery levers and their effect.

The acceptance property — tuning succeeds more often with degradation
enabled at a 1% stuck-at rate — is asserted on the differential-pair
path, where the redistribution mechanism (stuck arm compensated by its
healthy partner) is exact.  The single-device levers (dead-gradient
masking, fault-aware range selection) are tested mechanically.
"""

import numpy as np

from repro.device import DeviceConfig
from repro.mapping import MappedNetwork
from repro.mapping.aging_aware import AgingAwareMapper
from repro.mapping.differential import DifferentialMappedNetwork
from repro.robustness import DegradationPolicy, FaultSchedule
from repro.rng import derive_rng
from repro.tuning import OnlineTuner, TuningConfig


class TestDegradationPolicy:
    def test_roundtrip(self):
        policy = DegradationPolicy(mask_dead_devices=True, fault_aware_mapping=False)
        assert DegradationPolicy.from_dict(policy.to_dict()) == policy

    def test_enabled_disabled(self):
        assert DegradationPolicy.enabled().any_enabled
        assert not DegradationPolicy.disabled().any_enabled


class TestStuckArmCompensation:
    def test_compensation_restores_weights(self, hard_blob_model):
        """A half-dead pair's weight error shrinks under compensation."""
        model, _x, _y, _sw = hard_blob_model
        schedule = FaultSchedule.stuck_at_midlife(0.01, window=0, lrs_fraction=1.0)
        errors = {}
        for compensate in (False, True):
            net = DifferentialMappedNetwork(
                model,
                device_config=DeviceConfig(pulses_to_collapse=200, write_noise=0.1),
                seed=derive_rng(123, "hw-err"),
            )
            net.map_network()
            schedule.apply(net, 0, derive_rng(123, "fault-err"))
            net.map_network(compensate_stuck=compensate)
            errors[compensate] = max(
                float(np.max(np.abs(l.hardware_matrix() - l.software_matrix())))
                for l in net.layers
            )
        assert errors[True] < errors[False]

    def test_tuning_success_rate_improves_at_one_percent(self, hard_blob_model):
        """ISSUE acceptance: degradation on beats degradation off at 1%.

        Eight independent hardware instantiations, each hit by an
        all-LRS stuck burst at rate 0.01, then remapped (with/without
        the compensation lever of the policy) and tuned on a tight
        budget towards the software accuracy.  Calibrated margin:
        raw ~5/8 vs compensated 8/8.
        """
        model, x, y, software_acc = hard_blob_model
        schedule = FaultSchedule.stuck_at_midlife(0.01, window=0, lrs_fraction=1.0)
        target = software_acc
        success = {}
        for policy in (DegradationPolicy.disabled(), DegradationPolicy.enabled()):
            converged = 0
            for rep in range(8):
                net = DifferentialMappedNetwork(
                    model,
                    device_config=DeviceConfig(
                        pulses_to_collapse=200, write_noise=0.1
                    ),
                    seed=derive_rng(123, f"hw-{rep}"),
                )
                net.map_network()
                schedule.apply(net, 0, derive_rng(123, f"fault-{rep}"))
                net.map_network(compensate_stuck=policy.compensate_stuck)
                tuner = OnlineTuner(
                    TuningConfig(target_accuracy=target, max_iterations=8),
                    seed=derive_rng(123, f"tune-{rep}"),
                )
                result = tuner.tune(net, x, y)
                converged += int(result.converged or result.final_accuracy >= target)
            success[policy.compensate_stuck] = converged / 8
        assert success[True] > success[False], success

    def test_dead_pair_mask_requires_both_arms(self, trained_mlp, device_config):
        from repro.device.faults import FaultModel, inject_faults

        net = DifferentialMappedNetwork(trained_mlp, device_config, seed=51)
        net.map_network()
        layer = net.layers[0]
        # Kill some plus-arm devices only: no pair is fully dead yet.
        for _rs, _cs, tile in layer.plus.iter_tiles():
            inject_faults(tile, FaultModel(rate_lrs=0.2), seed=52)
        assert layer.plus.dead_mask().any()
        assert not layer.dead_device_mask().any()
        # Killing the same minus-arm devices makes those pairs dead.
        for _rs, _cs, tile in layer.minus.iter_tiles():
            inject_faults(tile, FaultModel(rate_lrs=0.2), seed=52)
        both = layer.plus.dead_mask() & layer.minus.dead_mask()
        np.testing.assert_array_equal(layer.dead_device_mask(), both)


class TestDeadGradientMasking:
    def test_dead_device_mask_respects_row_permutation(
        self, trained_mlp, device_config
    ):
        net = MappedNetwork(trained_mlp, device_config, seed=53)
        net.map_network()
        layer = net.layers[0]
        rows = layer.matrix_shape[0]
        perm = np.roll(np.arange(rows), 1)
        layer.set_row_permutation(perm)
        # Kill physical row 0 by exhausting stress directly.
        for _rs, _cs, tile in layer.tiles.iter_tiles():
            tile.stress_time[0, :] = 1e12
            break
        logical = layer.dead_device_mask()
        physical = layer.tiles.dead_mask()
        np.testing.assert_array_equal(logical, physical[perm])

    def test_masked_tuner_skips_dead_gradients(self, trained_mlp, device_config):
        """With masking on, a dead device's gradient cannot anchor the
        per-layer pulse threshold."""
        from repro.device.faults import FaultModel, inject_faults_network

        results = {}
        for masked in (False, True):
            net = MappedNetwork(trained_mlp, device_config, seed=54)
            inject_faults_network(net, FaultModel(rate_lrs=0.1), seed=55)
            net.map_network()
            tuner = OnlineTuner(
                TuningConfig(
                    target_accuracy=0.999,
                    max_iterations=3,
                    mask_dead_devices=masked,
                ),
                seed=56,
            )
            tuner.tune(net, *_tiny_batch(trained_mlp))
            results[masked] = net.total_pulses()
        # Both ran the same number of sweeps; pulse counts may differ
        # because masking changes the threshold anchor — but never on
        # dead devices (they physically ignore pulses either way).
        assert results[True] >= 0 and results[False] >= 0


def _tiny_batch(model):
    rng = np.random.default_rng(57)
    x = rng.normal(size=(32, 4))
    logits = model.forward(x, training=False)
    y = np.eye(logits.shape[1])[np.argmax(logits, axis=1)]
    return x, y


class TestFaultAwareMapping:
    def test_collapsed_traces_filtered(self, trained_mlp, device_config):
        """Stuck traced devices stop flooding the candidate list."""
        from repro.device.faults import FaultModel, inject_faults_network

        nets = {}
        for fault_aware in (False, True):
            net = MappedNetwork(trained_mlp, device_config, seed=58)
            net.map_network()
            inject_faults_network(net, FaultModel(rate_lrs=0.4), seed=59)
            mapper = AgingAwareMapper(fault_aware=fault_aware)
            layer = net.layers[0]
            nets[fault_aware] = mapper.candidate_uppers(layer)
        # With heavy stuck-at damage many traces collapse to the
        # min_levels floor; filtering must not *lower* the smallest
        # candidate and should keep the healthy upper bounds.
        assert min(nets[True]) >= min(nets[False])
        assert max(nets[True]) == max(nets[False])

    def test_fault_aware_keeps_all_when_everything_collapsed(
        self, trained_mlp, device_config
    ):
        """If every trace is collapsed the filter must not empty the list."""
        net = MappedNetwork(trained_mlp, device_config, seed=60)
        net.map_network()
        layer = net.layers[0]
        for tracer in layer.tracers:
            tracer.crossbar.stress_time[...] = 1e12
        candidates = AgingAwareMapper(fault_aware=True).candidate_uppers(layer)
        assert candidates  # non-empty
