"""Fixtures for the robustness (fault campaign) tests.

The lifetime-level fixtures are deliberately miniature: the acceptance
properties under test (fault injection shortens lifetime, compensation
improves tuning success) are about *mechanisms*, which show up at any
scale; the exact workloads here were calibrated so the assertions hold
with a comfortable margin while the whole module stays fast.
"""

from __future__ import annotations

import pytest

from repro.core import AgingAwareFramework, FrameworkConfig, LifetimeConfig
from repro.data import make_blobs
from repro.device import DeviceConfig
from repro.training import SkewedTrainingConfig, TrainConfig, build_mlp, train_baseline
from repro.tuning import TuningConfig


@pytest.fixture(scope="session")
def hard_blob_model():
    """A trained MLP on a non-separable workload (thin accuracy margin).

    Returns ``(model, x_tune, y_tune, software_accuracy)``; the thin
    margin is what makes stuck-at damage visible in accuracy.
    """
    data = make_blobs(n_samples=500, n_classes=4, n_features=8, spread=2.2, seed=5)
    from repro.rng import derive_rng

    model = build_mlp(8, 4, hidden=(16,), seed=derive_rng(123, "train"))
    train_baseline(model, data, TrainConfig(epochs=20))
    x, y = data.x_train[:200], data.y_train[:200]
    return model, x, y, model.score(x, y)


def make_mini_framework(seed: int = 7, max_windows: int = 6) -> AgingAwareFramework:
    """A laptop-instant framework for campaign/lifetime tests."""
    data = make_blobs(n_samples=300, n_classes=3, n_features=6, spread=0.4, seed=3)
    config = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=30, write_noise=0.1),
        train=TrainConfig(epochs=10),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=10),
            skew_epochs=5,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=max_windows,
            tuning=TuningConfig(max_iterations=25),
        ),
        tune_samples=120,
        target_fraction=0.92,
    )
    return AgingAwareFramework(
        lambda s: build_mlp(6, 3, hidden=(16,), seed=s), data, config, seed=seed
    )


def make_fragile_framework() -> AgingAwareFramework:
    """Calibrated so a 1% mid-life stuck-at burst ends the lifetime early.

    High endurance (aging is not the binding constraint) and a tight
    tuning budget: the fault-free run survives the full horizon while
    the faulted run fails within a few windows.
    """
    data = make_blobs(n_samples=400, n_classes=3, n_features=6, spread=0.4, seed=3)
    config = FrameworkConfig(
        device=DeviceConfig(pulses_to_collapse=200, write_noise=0.1),
        train=TrainConfig(epochs=15),
        skewed=SkewedTrainingConfig(
            beta_scale=-1.0,
            lambda1=0.05,
            lambda2=1e-3,
            pretrain=TrainConfig(epochs=15),
            skew_epochs=8,
        ),
        lifetime=LifetimeConfig(
            apps_per_window=1000,
            max_windows=8,
            tuning=TuningConfig(max_iterations=30, threshold=0.4),
        ),
        tune_samples=160,
        target_fraction=0.95,
    )
    return AgingAwareFramework(
        lambda s: build_mlp(6, 3, hidden=(24,), seed=s), data, config, seed=11
    )


@pytest.fixture(scope="module")
def mini_framework() -> AgingAwareFramework:
    return make_mini_framework()


@pytest.fixture(scope="module")
def fragile_framework() -> AgingAwareFramework:
    return make_fragile_framework()
