"""Campaign runner, survivability report, and the CLI entry point."""

import json

import pytest

from repro.core import ResultCache
from repro.exceptions import ConfigurationError
from repro.robustness import (
    CampaignPoint,
    DegradationPolicy,
    FaultCampaign,
    SurvivabilityReport,
    build_grid,
)


class TestBuildGrid:
    def test_default_grid_shape(self):
        points = build_grid(kinds=("stuck_at",), rates=(0.005, 0.01))
        # baseline + 2 rates x {raw, deg}
        assert len(points) == 5
        assert points[0].name == "baseline"
        assert points[0].fault_kind == "none"
        names = {p.name for p in points}
        assert "stuck_at@0.005/raw" in names
        assert "stuck_at@0.01/deg" in names

    def test_no_degradation_halves_grid(self):
        points = build_grid(
            kinds=("stuck_at",), rates=(0.01,), with_degradation=False
        )
        assert [p.name for p in points] == ["baseline", "stuck_at@0.01/raw"]
        assert not points[1].degradation_enabled

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            build_grid(kinds=(), rates=(0.01,))
        with pytest.raises(ConfigurationError):
            build_grid(kinds=("stuck_at",), rates=(0.0,))

    def test_degradation_enabled_flag(self):
        point = CampaignPoint(
            name="x",
            fault_kind="stuck_at",
            fault_rate=0.01,
            degradation=DegradationPolicy.disabled(),
        )
        assert not point.degradation_enabled


class TestFaultCampaign:
    GRID = dict(kinds=("stuck_at",), rates=(0.02,), window=1)

    def test_duplicate_names_rejected(self, mini_framework):
        campaign = FaultCampaign(mini_framework, scenario="st+at")
        point = build_grid(**self.GRID)[0]
        with pytest.raises(ConfigurationError):
            campaign.run([point, point])

    def test_serial_parallel_and_cache_agree(self, mini_framework, tmp_path):
        points = build_grid(**self.GRID)
        serial = FaultCampaign(mini_framework, scenario="st+at").run(points)

        cache = ResultCache(tmp_path / "cache")
        par = FaultCampaign(
            mini_framework, scenario="st+at", workers=2, cache=cache
        ).run(points)
        assert [r.to_dict() for r in par.records] == [
            r.to_dict() for r in serial.records
        ]

        # Second run must be pure cache hits and still identical.
        assert len(cache) == len(points)
        warm = FaultCampaign(
            mini_framework, scenario="st+at", workers=2, cache=cache
        ).run(points)
        assert cache.hits >= len(points)
        assert [r.to_dict() for r in warm.records] == [
            r.to_dict() for r in serial.records
        ]

    def test_baseline_point_shares_plain_scenario_cache(
        self, mini_framework, tmp_path
    ):
        """The fault-free grid point and run_scenario use the same key."""
        cache = ResultCache(tmp_path / "cache")
        mini_framework.run_scenario("st+at", cache=cache)
        assert len(cache) == 1
        points = build_grid(
            kinds=("stuck_at",), rates=(0.02,), window=1, with_degradation=False
        )
        FaultCampaign(mini_framework, scenario="st+at", cache=cache).run(points)
        # baseline hit the pre-existing entry; only the fault point was new
        assert cache.hits >= 1
        assert len(cache) == 2

    def test_report_contents_and_roundtrip(self, mini_framework):
        points = build_grid(**self.GRID)
        report = FaultCampaign(mini_framework, scenario="st+at").run(points)
        assert report.scenario_key == "st+at"
        assert len(report.records) == len(points)

        base = report.baseline()
        assert base is not None and base.fault_kind == "none"
        assert report.fault_kinds() == ["stuck_at"]
        curve = report.lifetime_curve("stuck_at", degradation=False)
        assert len(curve) == 1
        ratios = report.lifetime_degradation("stuck_at", degradation=False)
        assert all(ratio <= 1.0 + 1e-9 for _rate, ratio in ratios)

        clone = SurvivabilityReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert [r.to_dict() for r in clone.records] == [
            r.to_dict() for r in report.records
        ]
        text = report.render_text()
        assert "baseline" in text and "stuck_at" in text

    def test_serial_run_captures_perf_per_point(self, mini_framework):
        """Satellite of ISSUE 4: serial campaigns attribute kernel-cache
        savings and vmm throughput to each grid point."""
        points = build_grid(**self.GRID)
        report = FaultCampaign(mini_framework, scenario="st+at").run(points)
        assert set(report.perf) == {p.name for p in points}
        for delta in report.perf.values():
            assert delta["elapsed_s"] > 0
            assert delta["counters"].get("crossbar.vmm_calls", 0) >= 0
            assert delta["counters"].get("network.hardware_reads", 0) > 0
        text = report.render_text()
        assert "perf (serial run):" in text
        assert "factorizations avoided" in text

    def test_perf_excluded_from_default_serialization(self, mini_framework):
        """Perf is serial-mode-only and wall-clock-noisy, so the default
        to_dict must not carry it — keeping serialized reports identical
        across execution modes."""
        points = build_grid(**self.GRID)
        report = FaultCampaign(mini_framework, scenario="st+at").run(points)
        assert "perf" not in report.to_dict()
        with_perf = report.to_dict(include_perf=True)
        assert set(with_perf["perf"]) == {p.name for p in points}
        clone = SurvivabilityReport.from_dict(
            json.loads(json.dumps(with_perf))
        )
        assert clone.perf == with_perf["perf"]


class TestCampaignCli:
    def test_help(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["campaign", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--kinds" in out and "--rates" in out

    def test_tiny_campaign_writes_report(self, tmp_path, capsys, monkeypatch):
        from tests.robustness.conftest import make_mini_framework

        from repro.cli import main
        from repro.core.presets import PRESETS, ExperimentPreset

        # Register a laptop-instant preset so the CLI path runs end to
        # end without the real (minutes-long) presets.
        template = make_mini_framework()

        def tiny_blobs(fast: bool = False) -> ExperimentPreset:
            return ExperimentPreset(
                name="tiny-blobs",
                make_dataset=lambda: template.dataset,
                build_network=template.network_builder,
                framework_config=template.config,
                seed=7,
            )

        monkeypatch.setitem(PRESETS, "tiny-blobs", tiny_blobs)
        out_path = tmp_path / "report.json"
        rc = main(
            [
                "campaign",
                "--preset",
                "tiny-blobs",
                "--scenario",
                "st+at",
                "--kinds",
                "stuck_at",
                "--rates",
                "0.02",
                "--no-degradation",
                "--no-cache",
                "--out",
                str(out_path),
            ]
        )
        assert rc == 0
        report = SurvivabilityReport.from_dict(json.loads(out_path.read_text()))
        assert {r.fault_kind for r in report.records} == {"none", "stuck_at"}
        assert "Survivability" in capsys.readouterr().out
