"""Unit tests for fault events and schedules."""

import numpy as np
import pytest

from repro.device import DeviceConfig
from repro.exceptions import ConfigurationError
from repro.mapping import MappedNetwork
from repro.robustness import FaultEvent, FaultSchedule
from repro.rng import ensure_rng


@pytest.fixture()
def mapped_net(trained_mlp, device_config):
    net = MappedNetwork(trained_mlp, device_config, seed=31)
    net.map_network()
    return net


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="meteor_strike")

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="drift", window=-1)

    def test_miss_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="pulse_miss", miss_rate=1.0)
        FaultEvent(kind="pulse_miss", miss_rate=0.99)  # ok

    def test_total_rate_by_kind(self):
        assert FaultEvent(kind="stuck_at", rate_lrs=0.01, rate_hrs=0.02).total_rate == pytest.approx(0.03)
        assert FaultEvent(kind="drift", magnitude=0.2).total_rate == 0.2
        assert FaultEvent(kind="read_noise", sigma=0.05).total_rate == 0.05
        assert FaultEvent(kind="pulse_miss", miss_rate=0.1).total_rate == 0.1

    def test_roundtrip(self):
        event = FaultEvent(kind="stuck_at", window=3, rate_lrs=0.01, rate_hrs=0.005)
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultSchedule:
    def test_events_at_filters_by_window(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(kind="drift", window=0, magnitude=0.1),
                FaultEvent(kind="stuck_at", window=2, rate_lrs=0.01),
                FaultEvent(kind="read_noise", window=2, sigma=0.02),
            )
        )
        assert len(schedule.events_at(0)) == 1
        assert len(schedule.events_at(1)) == 0
        assert len(schedule.events_at(2)) == 2
        assert schedule.last_window() == 2
        assert bool(schedule)
        assert not bool(FaultSchedule())

    def test_roundtrip(self):
        schedule = FaultSchedule.stuck_at_midlife(0.02, window=4)
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_single_constructor_kinds(self):
        for kind in ("stuck_at", "drift", "read_noise", "pulse_miss"):
            schedule = FaultSchedule.single(kind, 0.05, window=1)
            (event,) = schedule.events
            assert event.kind == kind
            assert event.window == 1
            assert event.total_rate == pytest.approx(0.05)
        with pytest.raises(ConfigurationError):
            FaultSchedule.single("bogus", 0.05)

    def test_stuck_at_apply_kills_devices(self, mapped_net):
        schedule = FaultSchedule.stuck_at_midlife(0.05, window=1)
        before_dead = mapped_net.dead_fraction()
        applied = schedule.apply(mapped_net, 1, ensure_rng(33))
        assert len(applied) == 1
        assert mapped_net.dead_fraction() > before_dead

    def test_apply_off_window_is_noop(self, mapped_net):
        schedule = FaultSchedule.stuck_at_midlife(0.05, window=1)
        before = [l.tiles.resistances().copy() for l in mapped_net.layers]
        applied = schedule.apply(mapped_net, 0, ensure_rng(33))
        assert applied == []
        for layer, res in zip(mapped_net.layers, before):
            np.testing.assert_array_equal(layer.tiles.resistances(), res)

    def test_read_noise_event_raises_sigma(self, mapped_net):
        schedule = FaultSchedule.single("read_noise", 0.08, window=0)
        schedule.apply(mapped_net, 0, ensure_rng(34))
        for layer in mapped_net.layers:
            for _rs, _cs, tile in layer.tiles.iter_tiles():
                assert tile.read_noise_extra == pytest.approx(0.08)
        # noise-free config + injected sigma => reads now fluctuate
        layer = mapped_net.layers[0]
        a = layer.tiles.read_resistances()
        b = layer.tiles.read_resistances()
        assert not np.array_equal(a, b)

    def test_pulse_miss_event_sets_rate_and_skips_pulses(self, trained_mlp):
        config = DeviceConfig(pulses_to_collapse=10_000, write_noise=0.0, read_noise=0.0)
        net = MappedNetwork(trained_mlp, config, seed=35)
        net.map_network()
        schedule = FaultSchedule.single("pulse_miss", 0.6, window=0)
        schedule.apply(net, 0, ensure_rng(36))
        layer = net.layers[0]
        for _rs, _cs, tile in layer.tiles.iter_tiles():
            assert tile.pulse_miss_rate == pytest.approx(0.6)
        # A full step sweep should leave a substantial fraction unmoved.
        before = layer.tiles.resistances().copy()
        layer.tiles.step_levels(np.ones(layer.matrix_shape, dtype=np.int64))
        moved = np.mean(~np.isclose(layer.tiles.resistances(), before))
        assert 0.05 < moved < 0.75

    def test_drift_event_moves_resistances(self, mapped_net):
        before = [l.tiles.resistances().copy() for l in mapped_net.layers]
        FaultSchedule.single("drift", 0.2, window=0).apply(
            mapped_net, 0, ensure_rng(37)
        )
        changed = any(
            not np.allclose(l.tiles.resistances(), res)
            for l, res in zip(mapped_net.layers, before)
        )
        assert changed

    def test_pulse_miss_preserves_stream_when_zero(self):
        """Fault-free arrays consume the same RNG stream as pre-feature."""
        from repro.crossbar import Crossbar

        config = DeviceConfig(pulses_to_collapse=100, write_noise=0.1)
        a = Crossbar(8, 8, config, seed=40)
        b = Crossbar(8, 8, config, seed=40)
        b.pulse_miss_rate = 0.0  # explicit no-op
        targets = np.full((8, 8), 5e4)
        np.testing.assert_array_equal(a.program(targets), b.program(targets))
