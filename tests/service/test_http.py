"""End-to-end HTTP API tests: submit over the wire, drain with 2 workers.

This is the ISSUE's acceptance demo in test form: a campaign submitted
through the HTTP API, drained by two real worker processes, must yield
a ``SurvivabilityReport`` bit-identical to the serial campaign.
"""

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.core.executor import RetryPolicy
from repro.exceptions import ServiceError, ServiceUnavailableError
from repro.service import CampaignJobSpec, CampaignService, ServiceClient, ServiceWorker


def _impatient_retry() -> RetryPolicy:
    return RetryPolicy(max_retries=1, backoff_base=0.01, jitter=0.5, jitter_seed=0)


@pytest.fixture()
def service(tmp_path):
    with CampaignService(tmp_path / "jobs", workers=0) as svc:
        yield svc


@pytest.fixture()
def client(service):
    return ServiceClient(service.url, timeout=10.0)


class TestAPI:
    def test_info_advertises_jobs_root(self, service, client):
        info = client.info()
        assert info["service"] == "repro-campaign-service"
        assert client.jobs_root() == str(service.store.root.resolve())

    def test_submit_status_and_ls(self, client, spec):
        assert client.jobs() == []
        job_id = client.submit(spec)
        status = client.status(job_id)
        assert (status["status"], status["done"], status["total"]) == ("queued", 0, 3)
        assert [j["job_id"] for j in client.jobs()] == [job_id]

    def test_submit_accepts_plain_dict(self, client, spec):
        assert client.submit(spec.to_dict()) == spec.job_id()

    def test_bad_spec_is_400(self, client, spec):
        with pytest.raises(ServiceError, match="400"):
            client.submit({**spec.to_dict(), "preset": "nope"})

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.status("job-doesnotexist")

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/api/bogus")

    def test_result_before_completion_is_409(self, client, spec):
        job_id = client.submit(spec)
        with pytest.raises(ServiceError, match="409"):
            client.result(job_id)

    def test_cancel(self, client, spec):
        job_id = client.submit(spec)
        assert client.cancel(job_id)["status"] == "cancelled"
        status = client.wait(job_id, timeout=5.0, poll_interval=0.05)
        assert status["status"] == "cancelled"

    def test_unreachable_server(self):
        client = ServiceClient(
            "http://127.0.0.1:9", timeout=0.5, retry=_impatient_retry()
        )
        with pytest.raises(ServiceError, match="cannot reach"):
            client.info()


class TestHealthAndMetrics:
    def test_healthz_snapshot(self, client, spec):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["jobs"] == {"total": 0, "active": 0}
        assert health["uptime_s"] >= 0
        client.submit(spec)
        health = client.healthz()
        assert health["jobs"] == {"total": 1, "active": 1}

    def test_metrics_count_requests_and_errors(self, client, spec):
        client.info()
        with pytest.raises(ServiceError):
            client.status("job-doesnotexist")
        metrics = client.metrics()
        requests = metrics["requests"]
        assert requests["requests_total"] >= 2
        assert requests["errors_total"] >= 1
        assert requests["routes"]["GET /api/info"] >= 1
        # Job ids are collapsed so the route table stays bounded.
        assert requests["routes"]["GET /api/jobs/<id>"] >= 1
        assert metrics["chaos"] == {"enabled": False, "modes": [], "injected": {}}
        assert metrics["store"]["recoveries"] == 0


class TestTypedErrors:
    def test_4xx_is_fatal_and_not_retried(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("job-doesnotexist")
        assert not isinstance(err.value, ServiceUnavailableError)
        assert err.value.retryable is False
        # Exactly one request hit the server: fatal errors skip retries.
        assert client.metrics()["requests"]["routes"]["GET /api/jobs/<id>"] == 1

    def test_unreachable_server_raises_typed_retryable(self):
        client = ServiceClient(
            "http://127.0.0.1:9", timeout=0.3, retry=_impatient_retry()
        )
        with pytest.raises(ServiceUnavailableError) as err:
            client.info()
        assert err.value.retryable is True

    def test_http_5xx_maps_to_service_unavailable(self):
        class AlwaysBroken(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                body = b'{"error": "meltdown"}'
                self.send_response(500)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), AlwaysBroken)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            client = ServiceClient(
                f"http://{host}:{port}", timeout=2.0, retry=_impatient_retry()
            )
            with pytest.raises(ServiceUnavailableError, match="HTTP 500"):
                client.info()
        finally:
            httpd.shutdown()
            thread.join(timeout=5.0)
            httpd.server_close()


class TestEndToEnd:
    def test_http_submit_drained_by_two_workers_matches_serial(
        self, tmp_path, spec, golden_report
    ):
        # Two real worker processes polling the shared jobs directory.
        with CampaignService(
            tmp_path / "jobs", workers=2, poll_interval=0.05, lease_ttl=30.0
        ) as svc:
            client = ServiceClient(svc.url, timeout=10.0)
            job_id = client.submit(
                CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1})
            )
            status = client.wait(job_id, timeout=240.0, poll_interval=0.1)
            assert status["status"] == "done"
            assert status["done"] == status["total"] == 3
            result = client.result(job_id)
        assert result == golden_report.to_dict()

    def test_watch_progress_callback_fires(self, tmp_path, spec, golden_report):
        with CampaignService(tmp_path / "jobs", workers=0) as svc:
            client = ServiceClient(svc.url, timeout=10.0)
            job_id = client.submit(spec)
            # Drain in-process (no subprocess spin-up) while polling.
            ServiceWorker(svc.store, worker_id="inline").drain()
            snapshots = []
            status = client.wait(
                job_id, timeout=30.0, poll_interval=0.05,
                on_progress=snapshots.append,
            )
            assert status["status"] == "done"
            assert snapshots and snapshots[-1]["done"] == 3
            assert client.result(job_id) == golden_report.to_dict()

    def test_wait_timeout_raises(self, tmp_path, spec):
        with CampaignService(tmp_path / "jobs", workers=0) as svc:
            client = ServiceClient(svc.url, timeout=10.0)
            job_id = client.submit(spec)  # nobody drains it
            with pytest.raises(ServiceError, match="timed out"):
                client.wait(job_id, timeout=0.2, poll_interval=0.05)
