"""End-to-end HTTP API tests: submit over the wire, drain with 2 workers.

This is the ISSUE's acceptance demo in test form: a campaign submitted
through the HTTP API, drained by two real worker processes, must yield
a ``SurvivabilityReport`` bit-identical to the serial campaign.
"""

import pytest

from repro.exceptions import ServiceError
from repro.service import CampaignJobSpec, CampaignService, ServiceClient, ServiceWorker


@pytest.fixture()
def service(tmp_path):
    with CampaignService(tmp_path / "jobs", workers=0) as svc:
        yield svc


@pytest.fixture()
def client(service):
    return ServiceClient(service.url, timeout=10.0)


class TestAPI:
    def test_info_advertises_jobs_root(self, service, client):
        info = client.info()
        assert info["service"] == "repro-campaign-service"
        assert client.jobs_root() == str(service.store.root.resolve())

    def test_submit_status_and_ls(self, client, spec):
        assert client.jobs() == []
        job_id = client.submit(spec)
        status = client.status(job_id)
        assert (status["status"], status["done"], status["total"]) == ("queued", 0, 3)
        assert [j["job_id"] for j in client.jobs()] == [job_id]

    def test_submit_accepts_plain_dict(self, client, spec):
        assert client.submit(spec.to_dict()) == spec.job_id()

    def test_bad_spec_is_400(self, client, spec):
        with pytest.raises(ServiceError, match="400"):
            client.submit({**spec.to_dict(), "preset": "nope"})

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.status("job-doesnotexist")

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/api/bogus")

    def test_result_before_completion_is_409(self, client, spec):
        job_id = client.submit(spec)
        with pytest.raises(ServiceError, match="409"):
            client.result(job_id)

    def test_cancel(self, client, spec):
        job_id = client.submit(spec)
        assert client.cancel(job_id)["status"] == "cancelled"
        status = client.wait(job_id, timeout=5.0, poll_interval=0.05)
        assert status["status"] == "cancelled"

    def test_unreachable_server(self):
        with pytest.raises(ServiceError, match="cannot reach"):
            ServiceClient("http://127.0.0.1:9", timeout=0.5).info()


class TestEndToEnd:
    def test_http_submit_drained_by_two_workers_matches_serial(
        self, tmp_path, spec, golden_report
    ):
        # Two real worker processes polling the shared jobs directory.
        with CampaignService(
            tmp_path / "jobs", workers=2, poll_interval=0.05, lease_ttl=30.0
        ) as svc:
            client = ServiceClient(svc.url, timeout=10.0)
            job_id = client.submit(
                CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1})
            )
            status = client.wait(job_id, timeout=240.0, poll_interval=0.1)
            assert status["status"] == "done"
            assert status["done"] == status["total"] == 3
            result = client.result(job_id)
        assert result == golden_report.to_dict()

    def test_watch_progress_callback_fires(self, tmp_path, spec, golden_report):
        with CampaignService(tmp_path / "jobs", workers=0) as svc:
            client = ServiceClient(svc.url, timeout=10.0)
            job_id = client.submit(spec)
            # Drain in-process (no subprocess spin-up) while polling.
            ServiceWorker(svc.store, worker_id="inline").drain()
            snapshots = []
            status = client.wait(
                job_id, timeout=30.0, poll_interval=0.05,
                on_progress=snapshots.append,
            )
            assert status["status"] == "done"
            assert snapshots and snapshots[-1]["done"] == 3
            assert client.result(job_id) == golden_report.to_dict()

    def test_wait_timeout_raises(self, tmp_path, spec):
        with CampaignService(tmp_path / "jobs", workers=0) as svc:
            client = ServiceClient(svc.url, timeout=10.0)
            job_id = client.submit(spec)  # nobody drains it
            with pytest.raises(ServiceError, match="timed out"):
                client.wait(job_id, timeout=0.2, poll_interval=0.05)
