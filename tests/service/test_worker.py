"""Worker drain tests: bit-identity, cooperation, crash recovery.

The acceptance bar from DESIGN.md §12: any worker interleaving —
including a worker dying mid-chunk and its lease being stolen — yields
a report bit-identical to the serial campaign, with every completed
point journaled exactly once and never re-executed.
"""

import json
import threading
import time

from repro.core.executor import RetryPolicy
from repro.core.results import LifetimeResult
from repro.service import CampaignJobSpec, JobStore, ServiceWorker
from repro.service.jobs import failure_key


def _journal_lines(store, job_id):
    path = store.job_dir(job_id) / "journal.jsonl"
    return [ln for ln in path.read_text().splitlines() if ln.strip()]


class TestSingleWorker:
    def test_drain_matches_serial_campaign(self, tmp_path, spec, golden_report):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        worker = ServiceWorker(store, worker_id="solo")
        executed = worker.drain()
        assert executed == 3
        assert store.status(job_id).status == "done"
        assert store.result(job_id) == golden_report.to_dict()
        # Exactly one journal line per grid point.
        assert len(_journal_lines(store, job_id)) == 3

    def test_redrain_executes_nothing(self, tmp_path, spec):
        store = JobStore(tmp_path)
        store.submit(spec)
        ServiceWorker(store, worker_id="first").drain()
        again = ServiceWorker(store, worker_id="second")
        assert again.drain() == 0

    def test_resubmit_after_drain_resumes_done_job(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        ServiceWorker(store, worker_id="w").drain()
        assert store.submit(spec) == job_id
        assert store.status(job_id).status == "done"

    def test_cancel_stops_execution(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        )
        store.cancel(job_id)
        worker = ServiceWorker(store, worker_id="w")
        assert worker.drain() == 0
        assert store.status(job_id).status == "cancelled"


class TestTwoWorkers:
    def test_cooperative_drain_is_bit_identical(self, tmp_path, spec, golden_report):
        store = JobStore(tmp_path)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1})
        )
        alice = ServiceWorker(store, worker_id="alice")
        bob = ServiceWorker(store, worker_id="bob")
        # Interleave chunk-by-chunk: each run_once claims one chunk.
        progressed = True
        while progressed:
            progressed = alice.run_once() | bob.run_once()
        assert alice.points_executed + bob.points_executed == 3
        assert alice.points_executed > 0 and bob.points_executed > 0
        assert len(_journal_lines(store, job_id)) == 3
        assert store.result(job_id) == golden_report.to_dict()

    def test_second_worker_skips_journaled_points(self, tmp_path, spec):
        store = JobStore(tmp_path)
        # One chunk spanning the whole grid: bob's stolen/receased chunk
        # must skip the point alice already journaled.
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        )
        document = store.load(job_id)
        speck = CampaignJobSpec.from_dict(document["spec"])
        framework = speck.build_framework()
        point = speck.build_points()[0]
        result = framework.run_scenario(
            speck.scenario, repeat=speck.repeat,
            fault_schedule=point.schedule, degradation=point.degradation,
        )
        store.journal(job_id).record(document["points"][0]["key"], result.to_dict())

        bob = ServiceWorker(store, worker_id="bob")
        assert bob.drain() == 2  # the journaled point is not re-executed


class TestCrashRecovery:
    def test_dead_workers_chunk_is_stolen_and_no_points_lost(
        self, tmp_path, spec, golden_report
    ):
        # Short TTL so the "dead" worker's lease expires quickly.
        store = JobStore(tmp_path, lease_ttl=0.05)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        )
        document = store.load(job_id)

        # Worker A claims the only chunk, completes ONE point, then
        # "dies": no renewals, no completion, lease left dangling.
        lease = store.leases(job_id).claim("doomed")
        assert lease is not None and not lease.stolen
        speck = CampaignJobSpec.from_dict(document["spec"])
        framework = speck.build_framework()
        point = speck.build_points()[0]
        result = framework.run_scenario(
            speck.scenario, repeat=speck.repeat,
            fault_schedule=point.schedule, degradation=point.degradation,
        )
        store.journal(job_id).record(document["points"][0]["key"], result.to_dict())

        time.sleep(0.1)  # let the lease expire

        rescuer = ServiceWorker(store, worker_id="rescuer")
        executed = rescuer.drain()
        # The journaled point survived the crash: only 2 re-executed.
        assert executed == 2
        assert store.leases(job_id).snapshot()["stolen"] == 1
        assert len(_journal_lines(store, job_id)) == 3
        assert store.result(job_id) == golden_report.to_dict()

    def test_unbuildable_job_is_failed_not_looped(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        # Corrupt the stored spec the way a bad deploy would: the
        # preset no longer exists on the worker.
        job_path = store.job_dir(job_id) / "job.json"
        document = json.loads(job_path.read_text())
        document["spec"]["preset"] = "removed-preset"
        job_path.write_text(json.dumps(document))

        worker = ServiceWorker(store, worker_id="w")
        worker.drain()
        status = store.status(job_id)
        assert status.status == "failed"
        assert "removed-preset" in (status.error or "")


def _fast_retry(seed: int = 1) -> RetryPolicy:
    return RetryPolicy(max_retries=2, backoff_base=0.001, jitter=0.5, jitter_seed=seed)


class _PoisonWorker(ServiceWorker):
    """Worker whose simulation deterministically crashes one point."""

    poison_name = "stuck_at@0.01/raw"

    def _run_point(self, framework, spec, point, key):
        if point.name == self.poison_name:
            raise RuntimeError(f"poison point {point.name}")
        return super()._run_point(framework, spec, point, key)


class TestPoisonPoints:
    def test_poison_point_quarantined_healthy_chunkmates_survive(
        self, tmp_path, spec, golden_report
    ):
        store = JobStore(tmp_path)
        # One chunk spanning the whole grid: the poison point must not
        # drag its two healthy chunk-mates down with it.
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        )
        worker = _PoisonWorker(store, worker_id="w", retry=_fast_retry())
        worker.drain()
        # Healthy points executed once each, never re-run across the
        # chunk's three attempts.
        assert worker.points_executed == 2

        status = store.status(job_id)
        assert status.status == "completed_with_failures"
        assert (status.done, status.failed) == (2, 1)
        snapshot = store.leases(job_id).snapshot()
        assert snapshot["quarantined"] == 1 and snapshot["leased"] == 0

        journal = store.journal(job_id)
        poison_key = next(
            p["key"]
            for p in store.load(job_id)["points"]
            if p["name"] == _PoisonWorker.poison_name
        )
        record = journal.get(failure_key(poison_key))
        assert record["attempts"] == store.max_chunk_attempts
        assert "poison point" in record["error"]

        result = store.result(job_id)
        golden = {r["point"]: r for r in golden_report.to_dict()["records"]}
        for rec in result["records"]:
            if rec["point"] == _PoisonWorker.poison_name:
                assert rec["failed"]
            else:
                assert rec == golden[rec["point"]]

    def test_two_workers_share_the_quarantine_verdict(
        self, tmp_path, spec, golden_report
    ):
        store = JobStore(tmp_path)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1})
        )
        workers = [
            _PoisonWorker(store, worker_id=f"w{i}", retry=_fast_retry(i))
            for i in range(2)
        ]
        progressed = True
        while progressed:
            progressed = False
            for worker in workers:
                progressed |= worker.run_once()
        status = store.status(job_id)
        assert status.status == "completed_with_failures"
        assert (status.done, status.failed) == (2, 1)
        result = store.result(job_id)
        golden = {r["point"]: r for r in golden_report.to_dict()["records"]}
        for rec in result["records"]:
            if not rec["failed"]:
                assert rec == golden[rec["point"]]


class TestDrainLoopResilience:
    def test_drain_retries_transient_loop_failures(self, tmp_path, spec):
        store = JobStore(tmp_path)
        store.submit(spec)
        worker = ServiceWorker(store, worker_id="w", retry=_fast_retry())
        real_run_once = worker.run_once
        calls = {"n": 0}

        def flaky_run_once():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("jobs directory unreachable")
            return real_run_once()

        worker.run_once = flaky_run_once
        assert worker.drain() == 3
        assert worker.consecutive_failures == 0  # reset by the recovery

    def test_drain_gives_up_after_consecutive_failures(self, tmp_path, spec):
        store = JobStore(tmp_path)
        store.submit(spec)
        worker = ServiceWorker(store, worker_id="w", retry=_fast_retry())

        def always_down():
            raise OSError("server unreachable")

        worker.run_once = always_down
        assert worker.drain() == 0
        assert worker.consecutive_failures == worker.max_consecutive_failures


class TestCancelRace:
    def test_cancel_mid_drain_admits_no_journal_writes(self, tmp_path, spec):
        """Cancel lands while two workers hold live leases mid-point.

        Both must exit cleanly, discard their in-flight results (no
        post-cancel journal writes), and hand their leases back.
        """
        store = JobStore(tmp_path)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1})
        )
        barrier = threading.Barrier(3, timeout=60)
        release = threading.Event()

        class BlockedWorker(ServiceWorker):
            def _run_point(self, framework, spec_, point, key):
                result = super()._run_point(framework, spec_, point, key)
                barrier.wait()  # signal: result computed, lease live
                release.wait(60)  # hold until the cancel has landed
                return result

        workers = [
            BlockedWorker(store, worker_id=f"w{i}", retry=_fast_retry(i))
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=worker.run_once) for worker in workers
        ]
        for thread in threads:
            thread.start()
        barrier.wait()  # both workers are mid-point on live leases
        assert store.leases(job_id).snapshot()["leased"] == 2
        store.cancel(job_id)
        release.set()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()

        journal_path = store.job_dir(job_id) / "journal.jsonl"
        assert not journal_path.exists() or not journal_path.read_text().strip()
        status = store.status(job_id)
        assert status.status == "cancelled"
        assert (status.done, status.failed, status.total) == (0, 0, 3)
        assert store.leases(job_id).snapshot() == {
            "pending": 3,
            "leased": 0,
            "expired": 0,
            "done": 0,
            "quarantined": 0,
            "stolen": 0,
        }
        assert ServiceWorker(store, worker_id="late").drain() == 0


class TestSharedCache:
    def test_workers_share_the_store_cache(self, tmp_path, spec, golden_report):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        ServiceWorker(store, worker_id="w").drain()
        # A second job with the same points is served from the cache:
        # drain executes them as cache hits (instant) with identical
        # results.
        other = CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        other_id = store.submit(other)
        assert other_id != job_id
        cache = store.cache()
        hits_before = cache.hits
        worker = ServiceWorker(store, worker_id="w2")
        worker.cache = cache  # observe this instance's hit counters
        worker.drain()
        assert cache.hits - hits_before == 3
        assert store.result(other_id) == golden_report.to_dict()

    def test_result_payload_roundtrips(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        ServiceWorker(store, worker_id="w").drain()
        journal = store.journal(job_id)
        for point in store.load(job_id)["points"]:
            LifetimeResult.from_dict(journal.get(point["key"]))  # must parse
