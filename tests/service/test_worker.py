"""Worker drain tests: bit-identity, cooperation, crash recovery.

The acceptance bar from DESIGN.md §12: any worker interleaving —
including a worker dying mid-chunk and its lease being stolen — yields
a report bit-identical to the serial campaign, with every completed
point journaled exactly once and never re-executed.
"""

import json
import time

from repro.core.results import LifetimeResult
from repro.service import CampaignJobSpec, JobStore, ServiceWorker


def _journal_lines(store, job_id):
    path = store.job_dir(job_id) / "journal.jsonl"
    return [ln for ln in path.read_text().splitlines() if ln.strip()]


class TestSingleWorker:
    def test_drain_matches_serial_campaign(self, tmp_path, spec, golden_report):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        worker = ServiceWorker(store, worker_id="solo")
        executed = worker.drain()
        assert executed == 3
        assert store.status(job_id).status == "done"
        assert store.result(job_id) == golden_report.to_dict()
        # Exactly one journal line per grid point.
        assert len(_journal_lines(store, job_id)) == 3

    def test_redrain_executes_nothing(self, tmp_path, spec):
        store = JobStore(tmp_path)
        store.submit(spec)
        ServiceWorker(store, worker_id="first").drain()
        again = ServiceWorker(store, worker_id="second")
        assert again.drain() == 0

    def test_resubmit_after_drain_resumes_done_job(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        ServiceWorker(store, worker_id="w").drain()
        assert store.submit(spec) == job_id
        assert store.status(job_id).status == "done"

    def test_cancel_stops_execution(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        )
        store.cancel(job_id)
        worker = ServiceWorker(store, worker_id="w")
        assert worker.drain() == 0
        assert store.status(job_id).status == "cancelled"


class TestTwoWorkers:
    def test_cooperative_drain_is_bit_identical(self, tmp_path, spec, golden_report):
        store = JobStore(tmp_path)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1})
        )
        alice = ServiceWorker(store, worker_id="alice")
        bob = ServiceWorker(store, worker_id="bob")
        # Interleave chunk-by-chunk: each run_once claims one chunk.
        progressed = True
        while progressed:
            progressed = alice.run_once() | bob.run_once()
        assert alice.points_executed + bob.points_executed == 3
        assert alice.points_executed > 0 and bob.points_executed > 0
        assert len(_journal_lines(store, job_id)) == 3
        assert store.result(job_id) == golden_report.to_dict()

    def test_second_worker_skips_journaled_points(self, tmp_path, spec):
        store = JobStore(tmp_path)
        # One chunk spanning the whole grid: bob's stolen/receased chunk
        # must skip the point alice already journaled.
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        )
        document = store.load(job_id)
        speck = CampaignJobSpec.from_dict(document["spec"])
        framework = speck.build_framework()
        point = speck.build_points()[0]
        result = framework.run_scenario(
            speck.scenario, repeat=speck.repeat,
            fault_schedule=point.schedule, degradation=point.degradation,
        )
        store.journal(job_id).record(document["points"][0]["key"], result.to_dict())

        bob = ServiceWorker(store, worker_id="bob")
        assert bob.drain() == 2  # the journaled point is not re-executed


class TestCrashRecovery:
    def test_dead_workers_chunk_is_stolen_and_no_points_lost(
        self, tmp_path, spec, golden_report
    ):
        # Short TTL so the "dead" worker's lease expires quickly.
        store = JobStore(tmp_path, lease_ttl=0.05)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        )
        document = store.load(job_id)

        # Worker A claims the only chunk, completes ONE point, then
        # "dies": no renewals, no completion, lease left dangling.
        lease = store.leases(job_id).claim("doomed")
        assert lease is not None and not lease.stolen
        speck = CampaignJobSpec.from_dict(document["spec"])
        framework = speck.build_framework()
        point = speck.build_points()[0]
        result = framework.run_scenario(
            speck.scenario, repeat=speck.repeat,
            fault_schedule=point.schedule, degradation=point.degradation,
        )
        store.journal(job_id).record(document["points"][0]["key"], result.to_dict())

        time.sleep(0.1)  # let the lease expire

        rescuer = ServiceWorker(store, worker_id="rescuer")
        executed = rescuer.drain()
        # The journaled point survived the crash: only 2 re-executed.
        assert executed == 2
        assert store.leases(job_id).snapshot()["stolen"] == 1
        assert len(_journal_lines(store, job_id)) == 3
        assert store.result(job_id) == golden_report.to_dict()

    def test_unbuildable_job_is_failed_not_looped(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        # Corrupt the stored spec the way a bad deploy would: the
        # preset no longer exists on the worker.
        job_path = store.job_dir(job_id) / "job.json"
        document = json.loads(job_path.read_text())
        document["spec"]["preset"] = "removed-preset"
        job_path.write_text(json.dumps(document))

        worker = ServiceWorker(store, worker_id="w")
        worker.drain()
        status = store.status(job_id)
        assert status.status == "failed"
        assert "removed-preset" in (status.error or "")


class TestSharedCache:
    def test_workers_share_the_store_cache(self, tmp_path, spec, golden_report):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        ServiceWorker(store, worker_id="w").drain()
        # A second job with the same points is served from the cache:
        # drain executes them as cache hits (instant) with identical
        # results.
        other = CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        other_id = store.submit(other)
        assert other_id != job_id
        cache = store.cache()
        hits_before = cache.hits
        worker = ServiceWorker(store, worker_id="w2")
        worker.cache = cache  # observe this instance's hit counters
        worker.drain()
        assert cache.hits - hits_before == 3
        assert store.result(other_id) == golden_report.to_dict()

    def test_result_payload_roundtrips(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        ServiceWorker(store, worker_id="w").drain()
        journal = store.journal(job_id)
        for point in store.load(job_id)["points"]:
            LifetimeResult.from_dict(journal.get(point["key"]))  # must parse
