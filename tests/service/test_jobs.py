"""Job spec + store unit tests: identity, idempotence, the state machine."""

import pytest

from repro.exceptions import ConfigurationError, ServiceError
from repro.service import CampaignJobSpec, JobStore, ServiceWorker
from repro.service.jobs import failure_key


class TestSpec:
    def test_roundtrip(self, spec):
        assert CampaignJobSpec.from_dict(spec.to_dict()) == spec

    def test_job_id_is_content_hash(self, spec):
        assert spec.job_id() == CampaignJobSpec.from_dict(spec.to_dict()).job_id()
        other = CampaignJobSpec(**{**spec.to_dict(), "rates": (0.02,)})
        assert other.job_id() != spec.job_id()

    def test_unknown_field_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            CampaignJobSpec.from_dict({**spec.to_dict(), "bogus": 1})

    @pytest.mark.parametrize(
        "bad",
        [
            {"preset": "nope"},
            {"scenario": "nope"},
            {"repeat": -1},
            {"chunk_points": 0},
            {"rates": ()},
            {"rates": (-0.1,)},
        ],
    )
    def test_validate_rejects(self, spec, bad):
        with pytest.raises(ConfigurationError):
            CampaignJobSpec(**{**spec.to_dict(), **bad}).validate()

    def test_build_points_matches_grid(self, spec):
        names = [p.name for p in spec.build_points()]
        assert names == ["baseline", "stuck_at@0.01/raw", "stuck_at@0.01/deg"]


class TestStore:
    def test_submit_creates_layout(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        job_dir = store.job_dir(job_id)
        assert (job_dir / "job.json").exists()
        assert (job_dir / "state.json").exists()
        assert (job_dir / "leases.json").exists()
        document = store.load(job_id)
        assert len(document["points"]) == 3
        assert len({p["key"] for p in document["points"]}) == 3
        assert sorted(i for c in document["chunks"] for i in c) == [0, 1, 2]

    def test_submit_is_idempotent(self, tmp_path, spec):
        store = JobStore(tmp_path)
        assert store.submit(spec) == store.submit(spec)
        assert len(store.list_ids()) == 1

    def test_unknown_job_raises(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ServiceError):
            store.load("job-doesnotexist")
        with pytest.raises(ServiceError):
            store.cancel("job-doesnotexist")

    def test_status_counts_journaled_points(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        status = store.status(job_id)
        assert (status.status, status.done, status.total) == ("queued", 0, 3)
        key = store.load(job_id)["points"][0]["key"]
        store.journal(job_id).record(key, {"fake": 1})
        assert store.status(job_id).done == 1

    def test_cancel_is_sticky(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        assert store.is_active(job_id)
        assert store.cancel(job_id).status == "cancelled"
        assert not store.is_active(job_id)
        store.mark_running(job_id)  # a late worker cannot resurrect it
        assert store.status(job_id).status == "cancelled"
        assert store.finalize_if_complete(job_id) is None

    def test_result_none_until_complete(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        assert store.result(job_id) is None

    def test_chunk_points_controls_chunking(self, tmp_path, spec):
        store = JobStore(tmp_path)
        wide = CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 3})
        job_id = store.submit(wide)
        assert store.load(job_id)["chunks"] == [[0, 1, 2]]

    def test_mark_failed_records_error(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        store.mark_failed(job_id, "kaboom")
        status = store.status(job_id)
        assert status.status == "failed"
        assert status.error == "kaboom"
        assert not store.is_active(job_id)


class TestGracefulDegradation:
    def test_journaled_failure_record_yields_partial_report(
        self, tmp_path, spec, golden_report
    ):
        store = JobStore(tmp_path)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1})
        )
        poison = store.load(job_id)["points"][1]
        store.journal(job_id).record(
            failure_key(poison["key"]),
            {
                "point": poison["name"],
                "error": "synthetic poison",
                "worker": "t",
                "attempts": 3,
            },
        )
        ServiceWorker(store, worker_id="w").drain()
        status = store.status(job_id)
        assert status.status == "completed_with_failures"
        assert (status.done, status.failed, status.total) == (2, 1, 3)

        result = store.result(job_id)
        golden = {r["point"]: r for r in golden_report.to_dict()["records"]}
        # Grid order is preserved, failures included as marker records.
        assert [r["point"] for r in result["records"]] == [
            p["name"] for p in store.load(job_id)["points"]
        ]
        for record in result["records"]:
            if record["point"] == poison["name"]:
                assert record["failed"]
                assert record["lifetime_applications"] == 0
            else:
                assert record == golden[record["point"]]
        assert result["failures"][poison["name"]]["error"] == "synthetic poison"

    def test_quarantined_chunk_without_record_synthesizes_failure(
        self, tmp_path, spec
    ):
        store = JobStore(tmp_path)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1})
        )
        board = store.leases(job_id)
        # Exhaust chunk 2's attempt budget as if its holders kept dying
        # before ever journaling a failure record.
        board.claim("t")
        board.claim("t")
        for _ in range(3):
            board.claim("t")  # chunk 2 each time (0 and 1 are held)
            assert board.fail(2, "t", error="host dies") or True
        board.release(0, "t")
        board.release(1, "t")
        ServiceWorker(store, worker_id="w").drain()
        status = store.status(job_id)
        assert status.status == "completed_with_failures"
        assert (status.done, status.failed) == (2, 1)
        result = store.result(job_id)
        doomed = store.load(job_id)["points"][2]["name"]
        assert result["failures"][doomed]["error"] == "host dies"
        assert result["failures"][doomed]["attempts"] == 3


class TestStateRecovery:
    def test_corrupt_state_rebuilt_from_evidence(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        state_path = store.job_dir(job_id) / "state.json"
        state_path.write_text("definitely not json")
        assert store.status(job_id).status == "queued"  # no evidence yet
        assert store.recoveries == 1
        key = store.load(job_id)["points"][0]["key"]
        store.journal(job_id).record(key, {"fake": 1})
        state_path.write_text("definitely not json")
        assert store.status(job_id).status == "running"

    def test_corrupt_state_after_completion_recovers_done(
        self, tmp_path, spec, golden_report
    ):
        store = JobStore(tmp_path)
        job_id = store.submit(spec)
        ServiceWorker(store, worker_id="w").drain()
        state_path = store.job_dir(job_id) / "state.json"
        state_path.write_text('{"sha256": "0000", "payload": {"bogus": 1}}')
        assert store.status(job_id).status == "done"
        assert store.recoveries >= 1
        assert store.result(job_id) == golden_report.to_dict()

    def test_corrupt_leases_rebuilt_from_journal(self, tmp_path, spec):
        store = JobStore(tmp_path)
        job_id = store.submit(
            CampaignJobSpec(**{**spec.to_dict(), "chunk_points": 1})
        )
        ServiceWorker(store, worker_id="w").drain()
        (store.job_dir(job_id) / "leases.json").write_text("torn{")
        status = store.status(job_id)  # triggers the rebuild
        assert status.leases["done"] == 3
        assert store.recoveries == 1
